//! Host crate for the workspace-level integration tests (see `tests/`).
//!
//! The library itself is intentionally empty: the value is in the
//! `tests/*.rs` integration binaries, which exercise the public APIs of
//! every crate together.
