//! Property and regression coverage for the bounded scan path: random
//! bounded/unbounded `DbIterator` scans (tombstones, overwrites, data
//! split across memtable / L0 / compacted levels) checked against a
//! `BTreeMap` shadow, partitioned-index round-trips at a sweep of
//! granularities, and the corrupt-bloom regression (decode failures are
//! counted and journaled, never silently treated as "no filter").

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use lsm::{Db, Options, ReadOptions};
use proptest::prelude::*;
use storage::{Env, MemEnv};

/// One mutation of the random workload, decoded from a raw tuple: the
/// roll picks the kind (weighted toward puts), `k`/`v` parameterize it.
#[derive(Debug, Clone)]
enum Mutation {
    Put(u8, u8),
    Delete(u8),
    Flush,
    Compact,
}

fn decode_mutation((roll, k, v): (u8, u8, u8)) -> Mutation {
    match roll % 13 {
        0..=7 => Mutation::Put(k, v),
        8..=10 => Mutation::Delete(k),
        11 => Mutation::Flush,
        _ => Mutation::Compact,
    }
}

fn key_of(k: u8) -> Vec<u8> {
    format!("pk{k:03}").into_bytes()
}

fn value_of(k: u8, v: u8) -> Vec<u8> {
    format!("val-{k}-{v}").into_bytes()
}

/// Small-file options so a few hundred mutations span several levels.
fn small_options(granularity: usize) -> Options {
    Options {
        write_buffer_size: 4 << 10,
        target_file_size: 4 << 10,
        block_size: 256,
        l0_compaction_trigger: 2,
        partitioned_index_granularity: granularity,
        ..Options::small_for_tests()
    }
}

/// Apply mutations to a store and a `BTreeMap` shadow in lockstep.
fn apply(db: &Db, shadow: &mut BTreeMap<Vec<u8>, Vec<u8>>, muts: &[Mutation]) {
    for m in muts {
        match m {
            Mutation::Put(k, v) => {
                db.put(&key_of(*k), &value_of(*k, *v)).unwrap();
                shadow.insert(key_of(*k), value_of(*k, *v));
            }
            Mutation::Delete(k) => {
                db.delete(&key_of(*k)).unwrap();
                shadow.remove(&key_of(*k));
            }
            Mutation::Flush => db.flush().unwrap(),
            Mutation::Compact => db.compact_range(None, None).unwrap(),
        }
    }
}

/// Collect every visible pair from an iterator built with `read_opts`,
/// seeking to `seek_to` first when set.
fn drain(db: &Db, read_opts: ReadOptions, seek_to: Option<&[u8]>) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut it = db.iter_with(read_opts).unwrap();
    match seek_to {
        Some(target) => it.seek(target).unwrap(),
        None => it.seek_to_first().unwrap(),
    }
    let mut out = Vec::new();
    while it.valid() {
        out.push((it.key().to_vec(), it.value().to_vec()));
        it.next().unwrap();
    }
    out
}

/// The shadow's view of `[lower, upper)` (either side unbounded).
fn shadow_range(
    shadow: &BTreeMap<Vec<u8>, Vec<u8>>,
    lower: Option<&[u8]>,
    upper: Option<&[u8]>,
) -> Vec<(Vec<u8>, Vec<u8>)> {
    if let (Some(l), Some(u)) = (lower, upper) {
        if l >= u {
            return Vec::new(); // BTreeMap::range panics on inverted bounds
        }
    }
    let lo = lower.map_or(Bound::Unbounded, |l| Bound::Included(l.to_vec()));
    let hi = upper.map_or(Bound::Unbounded, |u| Bound::Excluded(u.to_vec()));
    shadow.range((lo, hi)).map(|(k, v)| (k.clone(), v.clone())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bounded and unbounded scans agree with a `BTreeMap` shadow across
    /// random mutations (overwrites, tombstones) spanning memtable, L0,
    /// and compacted levels — under both index formats.
    #[test]
    fn bounded_scans_match_shadow(
        raw_muts in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>()), 20..200,
        ),
        lower in any::<u8>(),
        upper in any::<u8>(),
        granularity_sel in 0usize..2,
    ) {
        let granularity = granularity_sel * 2; // 0 = monolithic, 2 = partitioned
        let muts: Vec<Mutation> = raw_muts.into_iter().map(decode_mutation).collect();
        let env = Arc::new(MemEnv::new());
        let db = Db::open(env as Arc<dyn Env>, small_options(granularity)).unwrap();
        let mut shadow = BTreeMap::new();
        apply(&db, &mut shadow, &muts);

        // Unbounded full scan.
        let got = drain(&db, ReadOptions::default(), None);
        prop_assert_eq!(&got, &shadow_range(&shadow, None, None));

        // Upper bound only.
        let ub = key_of(upper);
        let got = drain(&db, ReadOptions::default().with_upper_bound(ub.clone()), None);
        prop_assert_eq!(&got, &shadow_range(&shadow, None, Some(&ub)));

        // Both bounds (empty when lower >= upper).
        let lb = key_of(lower);
        let opts = ReadOptions::default()
            .with_lower_bound(lb.clone())
            .with_upper_bound(ub.clone());
        let got = drain(&db, opts.clone(), None);
        prop_assert_eq!(&got, &shadow_range(&shadow, Some(&lb), Some(&ub)));

        // Seeking below the lower bound clamps to it.
        let got = drain(&db, opts, Some(b"pk"));
        prop_assert_eq!(&got, &shadow_range(&shadow, Some(&lb), Some(&ub)));
        db.close().unwrap();
    }

    /// Partitioned-index tables round-trip: every key readable by point
    /// get and by full scan at any granularity.
    #[test]
    fn partitioned_index_roundtrips(
        granularity in 1usize..=8,
        n in 50usize..300,
    ) {
        let env = Arc::new(MemEnv::new());
        let db = Db::open(env as Arc<dyn Env>, small_options(granularity)).unwrap();
        let mut shadow = BTreeMap::new();
        for i in 0..n {
            let k = format!("rt{i:05}").into_bytes();
            let v = format!("v{i}").into_bytes();
            db.put(&k, &v).unwrap();
            shadow.insert(k, v);
        }
        db.flush().unwrap();
        db.compact_range(None, None).unwrap();
        for (k, v) in &shadow {
            prop_assert_eq!(db.get(k).unwrap().as_deref(), Some(v.as_slice()));
        }
        let got = drain(&db, ReadOptions::default(), None);
        prop_assert_eq!(&got, &shadow_range(&shadow, None, None));
        db.close().unwrap();
    }
}

/// Regression: a corrupt bloom filter must be surfaced through the
/// `filter_decode_failures` counter and a `Corruption` journal event —
/// reads still work (the filter is just dropped), but never silently.
#[test]
fn corrupt_bloom_is_surfaced_at_db_level() {
    use lsm::sstable::{BlockHandle, Footer, TableBuilder, FOOTER_SIZE};
    use lsm::types::{make_internal_key, make_lookup_key, ValueType};
    use storage::Env as _;

    let env = MemEnv::new();
    let opts = Options { verify_checksums: false, ..Options::small_for_tests() };
    let mut b = TableBuilder::new(env.new_writable("t").unwrap(), opts.clone());
    for i in 0..100 {
        let k = make_internal_key(format!("ck{i:04}").as_bytes(), i as u64 + 1, ValueType::Value);
        b.add(&k, b"v").unwrap();
    }
    b.finish().unwrap();

    // Zero the trailing probe-count byte of the filter block: the bloom
    // payload is present but no longer decodes.
    let mut raw = env.read_all("t").unwrap();
    let footer = Footer::decode(&raw[raw.len() - FOOTER_SIZE..]).unwrap();
    let BlockHandle { offset, size } = footer.filter_handle;
    raw[(offset + size) as usize - 1] = 0;
    env.write_all("t", &raw).unwrap();

    let observer = Arc::new(obs::Observer::new());
    let opts = Options { observer: Some(Arc::clone(&observer)), ..opts };
    let table = lsm::sstable::Table::open(env.open_random("t").unwrap(), 1, opts, None).unwrap();
    assert_eq!(observer.filter_decode_failures(), 1, "decode failure not counted");
    assert!(
        observer
            .journal()
            .events()
            .iter()
            .any(|e| matches!(e.kind, obs::EventKind::Corruption { .. })),
        "no Corruption event journaled"
    );
    // Reads still work without the filter.
    let got = table.get(&make_lookup_key(b"ck0042", u64::MAX >> 9)).unwrap();
    assert!(got.is_some(), "key unreadable after filter drop");
}
