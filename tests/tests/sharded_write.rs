//! Sharded write path: group-commit batching, leader failure, cross-shard
//! read consistency, and replay equivalence.
//!
//! The write path shards batches by key hash across independent memtables
//! and WAL streams, with one group-commit queue per shard. These tests pin
//! the properties the refactor must preserve:
//!
//! * concurrent writers on one shard batch into shared commit rounds (one
//!   fsync per round, not per batch);
//! * a leader's failure reaches every member of its group, and the store
//!   keeps working once the fault clears;
//! * a multi-shard `WriteBatch` is never visible half-applied to readers
//!   (the visible-sequence watermark only advances over contiguous
//!   committed groups);
//! * replay of per-shard log streams reproduces exactly the state an
//!   unsharded shadow model predicts, for any shard count.
//!
//! Failpoints are process-global, so the failpoint-armed tests serialize
//! on one mutex and disarm everything on entry and exit.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use lsm::{Db, Options, WriteBatch};
use proptest::prelude::*;
use rocksmash::{TieredConfig, TieredDb};
use storage::failpoint::{self, FailAction};
use storage::{Env, MemEnv};

/// Serializes every failpoint-armed test in this binary.
static FAILPOINTS: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    let guard = FAILPOINTS.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    failpoint::disarm_all();
    guard
}

fn sharded_options(shards: usize) -> Options {
    Options { write_shards: shards, sync_writes: true, ..Options::small_for_tests() }
}

// ---- group-commit batching under concurrency --------------------------

/// Eight writers racing on a sharded store must amortize fsyncs: the
/// group-commit counters have to show fewer commit rounds (== fsync
/// passes) than committed batches, i.e. fsyncs per batch < 1.
#[test]
fn concurrent_writers_amortize_fsyncs_into_group_commits() {
    let _g = lock();
    let env = Arc::new(MemEnv::new());
    let db = Arc::new(Db::open(env as Arc<dyn Env>, sharded_options(4)).unwrap());

    // Hold every leader open briefly so racing writers pile up behind it
    // and the next round drains them as one group, deterministically.
    failpoint::arm("group_commit_lead", FailAction::Sleep(Duration::from_millis(2)));

    let writers = 8usize;
    let per = 60usize;
    std::thread::scope(|scope| {
        for w in 0..writers {
            let db = Arc::clone(&db);
            scope.spawn(move || {
                for i in 0..per {
                    let key = format!("w{w:02}-{i:04}");
                    db.put(key.as_bytes(), b"v").unwrap();
                }
            });
        }
    });
    failpoint::disarm_all();

    for w in 0..writers {
        for i in 0..per {
            let key = format!("w{w:02}-{i:04}");
            assert_eq!(db.get(key.as_bytes()).unwrap(), Some(b"v".to_vec()), "lost {key}");
        }
    }

    let stats = db.group_commit_stats();
    let rounds = stats.group_commits.load(Ordering::Relaxed);
    let batches = stats.group_commit_batches.load(Ordering::Relaxed);
    assert_eq!(batches, (writers * per) as u64, "every batch rides exactly one group");
    assert!(
        rounds < batches,
        "no grouping occurred: {rounds} commit rounds for {batches} batches \
         (fsyncs per batch must be < 1 under 8 concurrent writers)"
    );
    db.close().unwrap();
}

/// Same property through the tiered store's eWAL partition queues.
#[test]
fn ewal_writers_amortize_fsyncs_into_group_commits() {
    let _g = lock();
    let env = Arc::new(MemEnv::new());
    let config = TieredConfig {
        options: Options { write_shards: 4, sync_writes: true, ..Options::small_for_tests() },
        ..TieredConfig::small_for_tests()
    };
    let db = Arc::new(TieredDb::open(env as Arc<dyn Env>, config).unwrap());
    failpoint::arm("group_commit_lead", FailAction::Sleep(Duration::from_millis(2)));

    let writers = 8usize;
    let per = 60usize;
    std::thread::scope(|scope| {
        for w in 0..writers {
            let db = Arc::clone(&db);
            scope.spawn(move || {
                for i in 0..per {
                    let key = format!("e{w:02}-{i:04}");
                    db.put(key.as_bytes(), b"v").unwrap();
                }
            });
        }
    });
    failpoint::disarm_all();

    let stats = db.ewal_commit_stats().expect("eWAL enabled");
    let rounds = stats.group_commits.load(Ordering::Relaxed);
    let batches = stats.group_commit_batches.load(Ordering::Relaxed);
    assert_eq!(batches, (writers * per) as u64);
    assert!(rounds < batches, "eWAL grouping never formed: {rounds} rounds / {batches} batches");

    // The counters ride the scheme report and its JSON surface.
    let report = db.report().unwrap();
    assert_eq!(report.group_commit_batches, batches);
    assert!(report.group_commits >= rounds);
    let json = report.to_json();
    for field in ["\"group_commits\":", "\"group_commit_batches\":", "\"writer_shard_conflicts\":"]
    {
        assert!(json.contains(field), "stats JSON missing {field}");
    }
    db.close().unwrap();
}

// ---- leader failure ---------------------------------------------------

/// When the group leader's eWAL append fails, every member of the group
/// must see the error (their writes were not persisted), and the store
/// must keep accepting writes once the fault clears.
#[test]
fn ewal_leader_failure_reaches_every_group_member() {
    let _g = lock();
    let env = Arc::new(MemEnv::new());
    let config = TieredConfig {
        options: Options { write_shards: 4, sync_writes: true, ..Options::small_for_tests() },
        ..TieredConfig::small_for_tests()
    };
    let db = Arc::new(TieredDb::open(env as Arc<dyn Env>, config).unwrap());
    db.put(b"warm", b"up").unwrap();

    // Widen the leader window so a real multi-writer group forms, and fail
    // the append that commits it. The same key routes every writer to the
    // same partition queue.
    failpoint::arm("group_commit_lead", FailAction::Sleep(Duration::from_millis(5)));
    failpoint::arm("ewal_append", FailAction::ReturnErr);
    let failures = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let db = Arc::clone(&db);
            let failures = Arc::clone(&failures);
            scope.spawn(move || {
                if db.put(b"contended", b"never-lands").is_err() {
                    failures.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    failpoint::disarm_all();
    assert_eq!(
        failures.load(Ordering::Relaxed),
        6,
        "a failed group append must surface to every member of the group"
    );
    // The failed writes were never acknowledged and must not be visible.
    assert_eq!(db.get(b"contended").unwrap(), None);

    // Fault cleared: the path works again and the sequence watermark was
    // not wedged by the failed (published-empty) ranges.
    db.put(b"contended", b"lands").unwrap();
    assert_eq!(db.get(b"contended").unwrap(), Some(b"lands".to_vec()));
    assert_eq!(db.get(b"warm").unwrap(), Some(b"up".to_vec()));
    db.close().unwrap();
}

/// A failed group fsync must also fail the whole group and leave the
/// store usable afterwards.
#[test]
fn ewal_sync_failure_fails_group_and_store_recovers() {
    let _g = lock();
    let env = Arc::new(MemEnv::new());
    let config = TieredConfig {
        options: Options { write_shards: 4, sync_writes: true, ..Options::small_for_tests() },
        ..TieredConfig::small_for_tests()
    };
    let db = Arc::new(TieredDb::open(env as Arc<dyn Env>, config).unwrap());
    failpoint::arm("ewal_sync", FailAction::ReturnErr);
    assert!(db.put(b"unsynced", b"x").is_err(), "sync failure must fail the write");
    failpoint::disarm_all();
    db.put(b"synced", b"y").unwrap();
    assert_eq!(db.get(b"synced").unwrap(), Some(b"y".to_vec()));
    db.close().unwrap();
}

// ---- cross-shard atomicity for readers --------------------------------

/// A `WriteBatch` spanning every shard must be atomic to snapshots: a
/// reader racing the writer sees either the whole batch or none of it,
/// never a torn prefix. Regression test for the visible-sequence
/// watermark (it may only advance over contiguous committed groups).
#[test]
fn multi_shard_batch_is_never_torn_for_readers() {
    let _g = lock();
    let env = Arc::new(MemEnv::new());
    let db = Arc::new(Db::open(env as Arc<dyn Env>, sharded_options(4)).unwrap());
    let keys: Vec<Vec<u8>> = (0..8).map(|i| format!("atomic{i}").into_bytes()).collect();

    // Round 0 baseline so every key exists before the race starts.
    let mut batch = WriteBatch::new();
    for k in &keys {
        batch.put(k, b"r00000000");
    }
    db.write(batch).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = Arc::clone(&db);
        let keys = keys.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut round = 1u64;
            while !stop.load(Ordering::Relaxed) {
                let value = format!("r{round:08}");
                let mut batch = WriteBatch::new();
                for k in &keys {
                    batch.put(k, value.as_bytes());
                }
                db.write(batch).unwrap();
                round += 1;
            }
            round
        })
    };

    for _ in 0..600 {
        let snap = db.snapshot();
        let mut seen = Vec::with_capacity(keys.len());
        for k in &keys {
            let v = db.get_at(k, &snap).unwrap().expect("key always present after round 0");
            seen.push(String::from_utf8(v).unwrap());
        }
        let first = &seen[0];
        assert!(
            seen.iter().all(|v| v == first),
            "torn multi-shard batch visible at snapshot {}: {seen:?}",
            snap.sequence(),
        );
    }
    stop.store(true, Ordering::Relaxed);
    let rounds = writer.join().unwrap();
    assert!(rounds > 1, "writer made no progress while readers were checking");
    db.close().unwrap();
}

// ---- replay equivalence -----------------------------------------------

/// Apply one op list to a sharded store (per-shard WAL streams), close,
/// and reopen unsharded: the recovered state must match an unsharded
/// in-memory shadow model exactly. Sequence stamps — not file order —
/// carry the commit order, so the shard count must be invisible to
/// replay.
fn replay_round_trip(shards: usize, ops: &[(u16, bool, u32)]) {
    let env = Arc::new(MemEnv::new());
    let mut shadow: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    {
        let options = Options { write_shards: shards, ..Options::small_for_tests() };
        let db = Db::open(env.clone() as Arc<dyn Env>, options).unwrap();
        for (i, &(k, is_put, v)) in ops.iter().enumerate() {
            let key = format!("p{k:05}").into_bytes();
            if is_put {
                let value = format!("v{v:08}").into_bytes();
                // Mix single-op writes with occasional multi-op batches so
                // batches regularly span shards.
                if i % 7 == 0 {
                    let mut batch = WriteBatch::new();
                    batch.put(&key, &value);
                    let sibling = format!("p{:05}", k.wrapping_add(17) % 2048).into_bytes();
                    batch.put(&sibling, &value);
                    shadow.insert(sibling.clone(), value.clone());
                    db.write(batch).unwrap();
                } else {
                    db.put(&key, &value).unwrap();
                }
                shadow.insert(key, value);
            } else {
                db.delete(&key).unwrap();
                shadow.remove(&key);
            }
        }
        // Close without flushing: recovery must come from the WAL streams.
        db.close().unwrap();
    }
    let db = Db::open(env as Arc<dyn Env>, Options::small_for_tests()).unwrap();
    for i in 0..2048u16 {
        let key = format!("p{i:05}").into_bytes();
        assert_eq!(
            db.get(&key).unwrap(),
            shadow.get(&key).cloned(),
            "shards={shards} key p{i:05} diverged from shadow after replay"
        );
    }
    db.close().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_replay_reproduces_unsharded_shadow(
        ops in proptest::collection::vec((0u16..2048, any::<bool>(), 0u32..100_000), 1..160),
        shards in 1usize..=4,
    ) {
        replay_round_trip(shards, &ops);
    }
}
