//! End-to-end telemetry tests: the HTTP scrape endpoint over a real TCP
//! socket, heat attribution under a skewed read workload, residency
//! accounting across flush → upload → migration, and the no-deadlock
//! guarantee for scrapes racing a stalled write path.

use std::sync::Arc;
use std::time::{Duration, Instant};

use obs::http::http_get;
use rocksmash::{migrate_placement, PlacementPolicy, Scheme, TieredConfig, TieredDb};
use storage::failpoint::{self, FailAction};
use storage::{Env, MemEnv};
use workloads::microbench::{fillrandom, readrandom};
use workloads::{run_ops, KeyDistribution};

fn tiny() -> TieredConfig {
    TieredConfig {
        options: lsm::Options {
            write_buffer_size: 16 << 10,
            target_file_size: 16 << 10,
            max_bytes_for_level_base: 32 << 10,
            l0_compaction_trigger: 2,
            ..lsm::Options::small_for_tests()
        },
        cache_admission: false,
        ..TieredConfig::small_for_tests()
    }
}

fn key(i: usize) -> Vec<u8> {
    format!("met{i:06}").into_bytes()
}

fn fill(db: &TieredDb, n: usize) {
    for i in 0..n {
        db.put(&key(i), format!("v{i}-{}", "m".repeat(64)).as_bytes()).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
}

#[test]
fn metrics_scrape_over_tcp_is_valid_prometheus() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let config = TieredConfig { metrics_listen: Some("127.0.0.1:0".into()), ..tiny() };
    let db = TieredDb::open(env, Scheme::RocksMash.configure(config)).unwrap();
    fill(&db, 1000);
    // Two ring samples with traffic in between, so every rate window —
    // including the cache hit ratio, which needs lookups inside the
    // window — can answer.
    db.sample_metrics().unwrap();
    for i in (0..1000).step_by(7) {
        let _ = db.get(&key(i)).unwrap();
    }
    std::thread::sleep(Duration::from_millis(30));
    db.sample_metrics().unwrap();

    let addr = db.metrics_addr().expect("exporter enabled").to_string();
    let (status, body) = http_get(&addr, "/metrics").unwrap();
    assert_eq!(status, 200, "scrape failed: {body}");
    let families = obs::validate_prometheus(&body).unwrap_or_else(|e| panic!("lint: {e}"));
    assert!(families > 10, "suspiciously few families: {families}");

    // Tentpole families: heat, residency, windowed rates.
    for family in [
        "rocksmash_heat_sst_score",
        "rocksmash_heat_tick",
        "rocksmash_residency_bytes",
        "rocksmash_residency_files",
        "rocksmash_rate_ops_per_sec",
        "rocksmash_rate_cloud_get_bytes_per_sec",
        "rocksmash_rate_cache_hit_ratio",
    ] {
        assert!(body.contains(family), "family {family} missing from scrape:\n{body}");
    }
    // Write-path and scheduler counters must reach the exposition too.
    for family in [
        "rocksmash_group_commits_total",
        "rocksmash_group_commit_batches_total",
        "rocksmash_writer_shard_conflicts_total",
        "rocksmash_flush_retries_total",
        "rocksmash_subcompactions_total",
        "rocksmash_compaction_parallelism",
    ] {
        assert!(body.contains(family), "family {family} missing from scrape");
    }

    // The JSON endpoints parse and carry the same shape.
    let (status, stats) = http_get(&addr, "/stats.json").unwrap();
    assert_eq!(status, 200);
    let stats = obs::json::Json::parse(&stats).expect("stats.json parses");
    assert!(stats.get("heat").is_some(), "stats.json missing heat");
    let (status, heat) = http_get(&addr, "/heat.json").unwrap();
    assert_eq!(status, 200);
    let heat = obs::json::Json::parse(&heat).expect("heat.json parses");
    assert!(heat.get("entries").is_some());
    let (status, ts) = http_get(&addr, "/timeseries.json").unwrap();
    assert_eq!(status, 200);
    assert!(obs::json::Json::parse(&ts).is_ok(), "timeseries.json parses");
    let (status, _) = http_get(&addr, "/nope").unwrap();
    assert_eq!(status, 404);

    db.close().unwrap();
    // Closing must release the port and kill the accept loop.
    assert!(http_get(&addr, "/metrics").is_err(), "exporter survived close");
}

#[test]
fn zipf_reads_concentrate_heat_on_hot_ssts() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let db = TieredDb::open(env, Scheme::RocksMash.configure(tiny())).unwrap();
    const N: u64 = 2000;
    run_ops(&db, fillrandom(N, 96, 3)).unwrap();
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    run_ops(&db, readrandom(N, 6000, KeyDistribution::Zipfian { theta: 0.99 }, 11)).unwrap();

    let heat = db.report().unwrap().heat.expect("observability on");
    assert!(heat.entries.len() >= 3, "expected several tracked SSTs, got {}", heat.entries.len());
    // Ranking is hottest-first and every ranked table knows its tier.
    for pair in heat.entries.windows(2) {
        assert!(pair[0].score >= pair[1].score, "entries not sorted by score");
    }
    for e in &heat.entries {
        assert!(e.tier.is_some(), "table {} has no residency tier", e.file);
    }
    // Zipf skew concentrates score mass: the hottest table must clearly
    // dominate the median-ranked one.
    let median = heat.entries[heat.entries.len() / 2].score;
    assert!(
        heat.entries[0].score > 1.5 * median,
        "no skew visible: top {} vs median {median}",
        heat.entries[0].score
    );

    // One decay window halves every score but preserves the ranking.
    let top_before = heat.entries[0].score;
    let top_file = heat.entries[0].file;
    db.observer().heat().advance_ticks(1);
    let decayed = db.report().unwrap().heat.expect("heat");
    assert_eq!(decayed.entries[0].file, top_file, "decay reordered the ranking");
    let ratio = decayed.entries[0].score / top_before;
    assert!((0.49..=0.51).contains(&ratio), "one tick should halve the score, got {ratio}");
    db.close().unwrap();
}

#[test]
fn residency_tracks_flush_upload_and_migration() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let db = TieredDb::open(env, Scheme::RocksMash.configure(tiny())).unwrap();
    fill(&db, 1500);
    let heat = db.report().unwrap().heat.expect("observability on");
    let r = heat.residency;
    assert!(r.local_files > 0, "flushed tables must register local residency: {r:?}");
    assert!(r.cloud_files > 0, "uploaded tables must register cloud residency: {r:?}");
    assert!(r.local_bytes > 0 && r.cloud_bytes > 0, "{r:?}");

    // Migrating everything local must drain the cloud side of the ledger.
    migrate_placement(&db, PlacementPolicy::all_local()).unwrap();
    let r = db.report().unwrap().heat.expect("heat").residency;
    assert_eq!(r.cloud_files, 0, "cloud residency must drain after migration: {r:?}");
    assert!(r.local_files > 0);
    db.close().unwrap();
}

#[test]
fn scrape_during_write_stall_does_not_deadlock() {
    failpoint::disarm_all();
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let config = TieredConfig { metrics_listen: Some("127.0.0.1:0".into()), ..tiny() };
    let db = Arc::new(TieredDb::open(env, Scheme::RocksMash.configure(config)).unwrap());
    fill(&db, 200);
    let addr = db.metrics_addr().expect("exporter enabled").to_string();

    // Every flush now sleeps, so sustained writes pile up sealed
    // memtables and stall the write path while scrapes keep coming.
    failpoint::arm("flush_begin", FailAction::Sleep(Duration::from_millis(200)));
    let writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            for i in 0..4000usize {
                db.put(&key(i), format!("stall{i}-{}", "y".repeat(128)).as_bytes()).unwrap();
            }
        })
    };
    let mut slowest = Duration::ZERO;
    for _ in 0..5 {
        let started = Instant::now();
        let (status, body) = http_get(&addr, "/metrics").unwrap();
        let took = started.elapsed();
        slowest = slowest.max(took);
        assert_eq!(status, 200, "scrape failed mid-stall: {body}");
        assert!(obs::validate_prometheus(&body).is_ok());
        std::thread::sleep(Duration::from_millis(50));
    }
    failpoint::disarm_all();
    writer.join().unwrap();
    // A scrape that waited on the stalled engine would take flush-scale
    // time; off-lock collection stays far under the failpoint sleep.
    assert!(slowest < Duration::from_secs(4), "scrape blocked {slowest:?} during stall");
    db.close().unwrap();
}
