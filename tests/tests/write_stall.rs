//! Backpressure and background-scheduler tests.
//!
//! The background pool must (a) surface a failing flush to concurrent
//! writers promptly instead of hiding it, (b) retry the flush under
//! exponential backoff instead of busy-spinning on the failpoint, (c)
//! recover on its own once the fault clears, and (d) run compactions with
//! disjoint inputs in parallel — provably never claiming the same input
//! file twice.
//!
//! Failpoints are process-global, so the failpoint-driven tests serialize
//! on one mutex and disarm everything on entry and exit.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use lsm::compaction::pick_compaction;
use lsm::types::{make_internal_key, ValueType};
use lsm::version::{FileMetaData, Version};
use lsm::{Db, Options};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use storage::failpoint::{self, FailAction};
use storage::{Env, MemEnv};

/// Serializes every failpoint-armed test in this binary.
static FAILPOINTS: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    let guard = FAILPOINTS.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    failpoint::disarm_all();
    guard
}

fn key(i: usize) -> Vec<u8> {
    format!("w{i:06}").into_bytes()
}

fn value(i: usize) -> Vec<u8> {
    format!("v{i:06}-{}", "x".repeat(100)).into_bytes()
}

/// Options that flush after a few KiB but never compact: the only
/// background work is the flush whose failure is under test.
fn flush_only_options(observer: Arc<obs::Observer>) -> Options {
    Options {
        write_buffer_size: 8 << 10,
        l0_compaction_trigger: 10_000,
        l0_stall_trigger: 20_000,
        max_bytes_for_level_base: u64::MAX / 4,
        observer: Some(observer),
        ..Options::small_for_tests()
    }
}

#[test]
fn failed_flush_backs_off_and_recovers() {
    run_failed_flush_recovery(1);
}

/// The same backpressure contract must hold when the write path is
/// sharded: a failing flush of any shard's sealed memtable surfaces to
/// writers, backs off, and clears on its own.
#[test]
fn failed_flush_backs_off_and_recovers_sharded() {
    run_failed_flush_recovery(4);
}

fn run_failed_flush_recovery(write_shards: usize) {
    let _g = lock();
    let observer = Arc::new(obs::Observer::new());
    let env = Arc::new(MemEnv::new());
    let options = Options { write_shards, ..flush_only_options(observer.clone()) };
    let db = Db::open(env.clone() as Arc<dyn Env>, options).unwrap();

    failpoint::arm("flush_begin", FailAction::ReturnErr);

    // Write until the armed flush fails; the writer must observe the
    // background error within 500ms of the failpoint firing.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut first_hit: Option<Instant> = None;
    let mut error_at: Option<Instant> = None;
    let mut i = 0;
    while Instant::now() < deadline {
        if first_hit.is_none() && failpoint::hits("flush_begin") > 0 {
            first_hit = Some(Instant::now());
        }
        match db.put(&key(i), &value(i)) {
            Ok(()) => i += 1,
            Err(_) => {
                // The failpoint may fire and the error reach this writer
                // within one loop iteration; note the hit now.
                if first_hit.is_none() && failpoint::hits("flush_begin") > 0 {
                    first_hit = Some(Instant::now());
                }
                error_at = Some(Instant::now());
                break;
            }
        }
    }
    let first_hit = first_hit.expect("flush_begin never fired");
    let error_at = error_at.expect("writer never observed the background error");
    assert!(
        error_at.duration_since(first_hit) < Duration::from_millis(500),
        "bg error took {:?} to reach the writer",
        error_at.duration_since(first_hit)
    );

    // No busy-loop: with the failpoint still armed, retries are gated by
    // exponential backoff (10ms, 20ms, 40ms, ...), so a 300ms window can
    // hold only a handful of further attempts — not thousands.
    let hits_before = failpoint::hits("flush_begin");
    std::thread::sleep(Duration::from_millis(300));
    let retries = failpoint::hits("flush_begin") - hits_before;
    assert!(retries <= 8, "flush busy-looped: {retries} attempts in 300ms");
    assert!(db.stats().flush_retries.load(std::sync::atomic::Ordering::Relaxed) > 0);

    // The failure is journaled with its backoff.
    let events = observer.journal().events();
    let bg_error = events
        .iter()
        .filter_map(|e| match &e.kind {
            obs::EventKind::BgError { context, backoff_ms, .. } => Some((context, *backoff_ms)),
            _ => None,
        })
        .next_back()
        .expect("no BgError event in the journal");
    assert_eq!(bg_error.0, "flush");
    assert!(bg_error.1 >= 10, "backoff not recorded: {}ms", bg_error.1);

    // Once the fault clears, the backed-off retry succeeds on its own and
    // writers resume without any explicit intervention.
    failpoint::disarm_all();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut recovered = false;
    while Instant::now() < deadline {
        if db.put(&key(i), &value(i)).is_ok() {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(recovered, "writes never resumed after the fault cleared");
    db.flush().unwrap();
    // Nothing sealed before the fault was lost.
    for j in (0..i).step_by(13) {
        assert_eq!(db.get(&key(j)).unwrap(), Some(value(j)), "key {j} lost across flush retries");
    }
}

#[test]
fn disjoint_compactions_run_concurrently() {
    let _g = lock();
    let observer = Arc::new(obs::Observer::new());
    let env = Arc::new(MemEnv::new());
    let options = Options {
        write_buffer_size: 8 << 10,
        target_file_size: 8 << 10,
        max_bytes_for_level_base: 16 << 10,
        l0_compaction_trigger: 2,
        max_background_jobs: 4,
        observer: Some(observer.clone()),
        ..Options::small_for_tests()
    };
    let db = Db::open(env.clone() as Arc<dyn Env>, options).unwrap();

    // Hold every compaction open briefly so claim windows overlap.
    failpoint::arm("compaction_begin", FailAction::Sleep(Duration::from_millis(15)));

    let mut rng = StdRng::seed_from_u64(0x5ca1_ab1e);
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut shadow = std::collections::BTreeMap::new();
    let mut i = 0usize;
    let peak = loop {
        let k: usize = rng.gen_range(0..4096);
        db.put(&key(k), &value(i)).unwrap();
        shadow.insert(k, i);
        i += 1;
        let peak =
            db.stats().compaction_parallelism_peak.load(std::sync::atomic::Ordering::Relaxed);
        if peak >= 2 || Instant::now() >= deadline {
            break peak;
        }
    };
    failpoint::disarm_all();
    assert!(peak >= 2, "no two compactions ever ran concurrently (peak {peak})");

    // The trace journal must show the overlap too: a second CompactionStart
    // before the first one's CompactionEnd.
    let events = observer.journal().events();
    let mut depth = 0i64;
    let mut max_depth = 0i64;
    for e in &events {
        match e.kind {
            obs::EventKind::CompactionStart { .. } => {
                depth += 1;
                max_depth = max_depth.max(depth);
            }
            obs::EventKind::CompactionEnd { .. } => depth -= 1,
            _ => {}
        }
    }
    assert!(max_depth >= 2, "journal never shows overlapping compaction spans");

    // Parallel compactions must not have corrupted anything.
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    for (n, (&k, &v)) in shadow.iter().enumerate() {
        if n % 17 == 0 {
            assert_eq!(db.get(&key(k)).unwrap(), Some(value(v)), "key {k} wrong after overlap");
        }
    }
}

// ---- conflict-freedom of the picker, over random tree shapes ----------

fn meta(number: u64, small: u32, large: u32) -> Arc<FileMetaData> {
    Arc::new(FileMetaData {
        number,
        file_size: 1 << 20,
        smallest: make_internal_key(format!("k{small:05}").as_bytes(), 100, ValueType::Value),
        largest: make_internal_key(format!("k{large:05}").as_bytes(), 1, ValueType::Value),
    })
}

/// Build a version from per-level interval descriptions; deep levels are
/// made disjoint and sorted by construction.
fn build_version(l0: &[(u32, u32)], deep: &[Vec<(u32, u32)>]) -> Version {
    let mut version = Version::empty(7);
    let mut number = 1u64;
    for &(a, b) in l0 {
        version.levels[0].push(meta(number, a.min(b), a.max(b)));
        number += 1;
    }
    for (i, level) in deep.iter().enumerate() {
        // Sort by start and drop overlaps so the level is a valid shape.
        let mut spans: Vec<(u32, u32)> = level.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        spans.sort_unstable();
        let mut last_end: Option<u32> = None;
        for (a, b) in spans {
            if last_end.is_some_and(|e| a <= e) {
                continue;
            }
            version.levels[i + 1].push(meta(number, a, b));
            number += 1;
            last_end = Some(b);
        }
    }
    version
}

proptest! {
    /// Repeatedly picking compactions while previous picks are still
    /// "running" (their inputs claimed) must never yield two compactions
    /// sharing an input file.
    #[test]
    fn concurrent_picks_claim_disjoint_inputs(
        l0 in proptest::collection::vec((0u32..200, 0u32..200), 0..5),
        deep in proptest::collection::vec(
            proptest::collection::vec((0u32..200, 0u32..200), 0..8),
            1..4,
        ),
    ) {
        let version = build_version(&l0, &deep);
        let options = Options {
            // Tiny budgets so every non-empty level is over budget and
            // eligible: the picker has maximum freedom to conflict.
            max_bytes_for_level_base: 1,
            level_size_multiplier: 2,
            ..Options::default()
        };
        let mut pointer = vec![Vec::new(); 7];
        let mut busy: BTreeSet<u64> = BTreeSet::new();
        let mut claimed_sets: Vec<BTreeSet<u64>> = Vec::new();
        for _ in 0..8 {
            let Some(c) = pick_compaction(&version, &options, &mut pointer, &busy) else {
                break;
            };
            let inputs: BTreeSet<u64> = c.all_inputs().map(|(_, f)| f.number).collect();
            for prior in &claimed_sets {
                prop_assert!(
                    prior.is_disjoint(&inputs),
                    "overlapping concurrent picks: {prior:?} vs {inputs:?}"
                );
            }
            prop_assert!(busy.is_disjoint(&inputs));
            busy.extend(inputs.iter().copied());
            claimed_sets.push(inputs);
        }
    }
}
