//! End-to-end perf-context and trace-span coverage across the tiered
//! stack: a seeded slow cloud GET must emit a `SlowOp` whose stage
//! breakdown accounts for the whole operation and whose trace id links
//! to the cloud spans it caused; background work (flush → upload →
//! cloud PUT) must share one trace; `multi_get` workers must merge
//! their contexts back into the caller's.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use lsm::ReadOptions;
use obs::EventKind;
use rocksmash::{CacheKind, PlacementPolicy, TieredConfig, TieredDb};
use storage::failpoint::{self, FailAction};
use storage::{Env, MemEnv};

/// Serializes every test in this binary: failpoints are process-global,
/// and the armed test must not leak sleeps into its neighbours.
static FAILPOINTS: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    let guard = FAILPOINTS.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    failpoint::disarm_all();
    guard
}

fn key(i: usize) -> Vec<u8> {
    format!("trace{i:05}").into_bytes()
}

/// Everything on the cloud tier with no persistent cache, so every data
/// block read is a cloud GET the trace must attribute.
fn cloud_config() -> TieredConfig {
    TieredConfig {
        options: lsm::Options {
            write_buffer_size: 16 << 10,
            target_file_size: 16 << 10,
            max_bytes_for_level_base: 32 << 10,
            l0_compaction_trigger: 2,
            ..lsm::Options::small_for_tests()
        },
        placement: PlacementPolicy::all_cloud(),
        cache: CacheKind::None,
        slow_op_threshold: Duration::from_millis(10),
        ..TieredConfig::small_for_tests()
    }
}

fn worked_db(config: TieredConfig) -> TieredDb {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let db = TieredDb::open(env, config).unwrap();
    for i in 0..400usize {
        db.put(&key(i), format!("v{i}-{}", "x".repeat(64)).as_bytes()).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    db
}

/// The seeded acceptance scenario: a cloud GET made slow via the
/// `cloud_get` failpoint must surface as a `SlowOp` whose breakdown sums
/// to within 10% of the measured duration and whose trace id links the
/// root `get` span to the `cloud_get` child spans.
#[test]
fn slow_cloud_get_emits_slowop_with_breakdown_and_linked_spans() {
    let _guard = lock();
    let db = worked_db(cloud_config());

    failpoint::arm("cloud_get", FailAction::Sleep(Duration::from_millis(30)));
    let value = db.get_with(ReadOptions::default().with_perf_context(), &key(123)).unwrap();
    failpoint::disarm_all();
    assert!(value.is_some(), "seeded key must be readable through the slow path");

    let events = db.observer().journal().events();
    let (dur_ns, trace_id, breakdown) = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::SlowOp { op, dur_ns, trace_id, breakdown } if op == "get" => {
                Some((*dur_ns, *trace_id, breakdown.clone()))
            }
            _ => None,
        })
        .next_back()
        .expect("slow get must reach the journal");
    assert_ne!(trace_id, 0, "slow op must carry its trace id");
    let breakdown = *breakdown.expect("SlowOp must embed the active perf breakdown");
    assert!(breakdown.cloud_gets >= 1, "{breakdown:?}");
    assert!(
        breakdown.cloud_get_ns >= Duration::from_millis(30).as_nanos() as u64,
        "seeded sleep must be attributed to the cloud stage: {breakdown:?}"
    );
    let sum = breakdown.stage_sum_ns();
    assert!(sum <= dur_ns, "stages are sub-intervals of the op: {sum} > {dur_ns}");
    assert!(
        sum as f64 >= dur_ns as f64 * 0.9,
        "stage sum {sum} accounts for less than 90% of the op's {dur_ns} ns"
    );

    // The trace links the root `get` span to the cloud GETs it caused.
    let root = events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::SpanStart { trace_id: t, span_id, parent_span_id: 0, name }
                if *t == trace_id && name == "get" =>
            {
                Some(*span_id)
            }
            _ => None,
        })
        .expect("root get span");
    let cloud_child = events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::SpanStart { trace_id: t, span_id, parent_span_id, name }
                if *t == trace_id && *parent_span_id == root && name == "cloud_get" =>
            {
                Some(*span_id)
            }
            _ => None,
        })
        .expect("cloud_get child span under the root get span");
    for span in [root, cloud_child] {
        assert!(
            events.iter().any(|e| matches!(
                &e.kind,
                EventKind::SpanEnd { span_id, dur_ns, .. } if *span_id == span && *dur_ns > 0
            )),
            "span {span} never ended"
        );
    }
    db.close().unwrap();
}

/// Background causality: the table a flush produces is uploaded under
/// the flush's own trace, and the upload's cloud PUT nests beneath the
/// upload span.
#[test]
fn flush_upload_and_cloud_put_share_one_trace() {
    let _guard = lock();
    let db = worked_db(cloud_config());
    let events = db.observer().journal().events();

    // (trace_id, span_id) of every root flush span.
    let flush_roots: Vec<(u64, u64)> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::SpanStart { trace_id, span_id, parent_span_id: 0, name }
                if name == "flush" =>
            {
                Some((*trace_id, *span_id))
            }
            _ => None,
        })
        .collect();
    assert!(!flush_roots.is_empty(), "flushes must open root spans");

    let upload = events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::SpanStart { trace_id, span_id, parent_span_id, name }
                if name == "sst_upload" && flush_roots.contains(&(*trace_id, *parent_span_id)) =>
            {
                Some((*trace_id, *span_id))
            }
            _ => None,
        })
        .expect("an sst_upload span must nest under a flush root");
    assert!(
        events.iter().any(|e| matches!(
            &e.kind,
            EventKind::SpanStart { trace_id, parent_span_id, name, .. }
                if name == "cloud_put" && (*trace_id, *parent_span_id) == upload
        )),
        "the upload's cloud PUT must nest under the sst_upload span"
    );
    db.close().unwrap();
}

/// `with_perf_context` scopes a capture around arbitrary work: the eWAL
/// append/sync stages of a write land in the returned context and fold
/// into the observer's totals.
#[test]
fn with_perf_context_captures_wal_stages() {
    let _guard = lock();
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let db = TieredDb::open(env, cloud_config()).unwrap();
    let (result, ctx) = db.with_perf_context(|db| db.put(b"walkey", b"walvalue"));
    result.unwrap();
    assert!(ctx.wal_append_ns > 0, "eWAL append must be staged: {ctx:?}");
    assert!(db.observer().perf_ops() >= 1);
    assert!(db.observer().perf_totals().wal_append_ns >= ctx.wal_append_ns);
    db.close().unwrap();
}

/// The parallel `multi_get` fan-out hands the caller's context to its
/// pool workers and merges their stage counts back, so one breakdown
/// covers the whole batch.
#[test]
fn multi_get_merges_worker_perf_into_caller_context() {
    let _guard = lock();
    let db = worked_db(cloud_config());
    let keys: Vec<Vec<u8>> = (0..32).map(key).collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let (result, ctx) = db.with_perf_context(|db| db.multi_get(&refs));
    let values = result.unwrap();
    assert!(values.iter().all(|v| v.is_some()));
    // Every key crosses the block cache at least once, on whichever pool
    // thread served it; the merged context must see all of them.
    assert!(
        ctx.block_cache_hits + ctx.block_cache_misses >= keys.len() as u64,
        "worker stage counts missing from the merged context: {ctx:?}"
    );
    assert!(ctx.sst_read_ns > 0, "{ctx:?}");
    db.close().unwrap();
}

/// Flushes and compactions answer to the (much higher) background
/// threshold: a zero foreground threshold must not flood the journal
/// with flush SlowOps, and a zero background threshold must.
#[test]
fn background_ops_answer_to_their_own_threshold() {
    let _guard = lock();
    let foreground_only = TieredConfig {
        slow_op_threshold: Duration::ZERO,
        slow_background_threshold: Duration::from_secs(600),
        ..cloud_config()
    };
    let db = worked_db(foreground_only);
    db.get(&key(7)).unwrap();
    let slow_ops: Vec<String> = db
        .observer()
        .journal()
        .events()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::SlowOp { op, .. } => Some(op.clone()),
            _ => None,
        })
        .collect();
    assert!(slow_ops.iter().any(|op| op == "get"), "zero foreground threshold logs gets");
    assert!(
        !slow_ops.iter().any(|op| op == "flush" || op == "compaction"),
        "background ops must not answer to the foreground threshold: {slow_ops:?}"
    );
    db.close().unwrap();

    let background_only = TieredConfig {
        slow_op_threshold: Duration::from_secs(600),
        slow_background_threshold: Duration::ZERO,
        ..cloud_config()
    };
    let db = worked_db(background_only);
    let flush_slow = db
        .observer()
        .journal()
        .events()
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::SlowOp { op, trace_id, .. } if op == "flush" => Some(*trace_id),
            _ => None,
        })
        .expect("zero background threshold logs flushes");
    assert_ne!(flush_slow, 0, "a flush SlowOp must link to the flush's own trace");
    assert!(
        !db.observer().journal().events().iter().any(|e| matches!(
            &e.kind,
            EventKind::SlowOp { op, .. } if op == "get" || op == "write"
        )),
        "foreground ops must not answer to the background threshold"
    );
    db.close().unwrap();
}
