//! Cross-crate observability: the event journal must narrate a real
//! flush → upload → compaction lifecycle, and the stats snapshot must
//! round-trip through every export surface on a live tiered store.

use std::sync::Arc;

use lsm::Options;
use obs::{EventKind, MetricsSnapshot};
use rocksmash::{TieredConfig, TieredDb};
use storage::{Env, MemEnv};

fn key(i: usize) -> Vec<u8> {
    format!("key{i:06}").into_bytes()
}

fn tiny_config() -> TieredConfig {
    TieredConfig {
        options: Options {
            write_buffer_size: 16 << 10,
            target_file_size: 16 << 10,
            max_bytes_for_level_base: 32 << 10,
            l0_compaction_trigger: 2,
            ..Options::small_for_tests()
        },
        cache_admission: false,
        ..TieredConfig::small_for_tests()
    }
}

/// Open, load enough to flush + compact + upload, and return the store.
fn worked_db() -> TieredDb {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let db = TieredDb::open(env, tiny_config()).unwrap();
    for i in 0..2000 {
        db.put(&key(i), format!("value{i:06}-{}", "x".repeat(64)).as_bytes()).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    for i in (0..2000).step_by(7) {
        assert!(db.get(&key(i)).unwrap().is_some());
    }
    db
}

#[test]
fn journal_captures_flush_upload_compaction_lifecycle() {
    let db = worked_db();
    let events = db.observer().journal().events();

    // Timestamps are journal-relative and must be ordered as returned.
    for pair in events.windows(2) {
        assert!(pair[0].ts_ns <= pair[1].ts_ns, "journal out of order: {pair:?}");
    }

    let pos = |pred: &dyn Fn(&EventKind) -> bool| events.iter().position(|e| pred(&e.kind));
    let flush_start = pos(&|k| matches!(k, EventKind::FlushStart)).expect("FlushStart in journal");
    let flush_end = events
        .iter()
        .position(|e| match &e.kind {
            EventKind::FlushEnd { bytes, dur_ns } => {
                assert!(*dur_ns > 0, "flush duration must be measured");
                *bytes > 0
            }
            _ => false,
        })
        .expect("non-empty FlushEnd in journal");
    assert!(flush_start < flush_end, "flush must start before it ends");

    let upload = events
        .iter()
        .position(|e| match &e.kind {
            EventKind::Upload { bytes, dur_ns, .. } => {
                assert!(*bytes > 0, "upload must carry bytes");
                assert!(*dur_ns > 0, "upload duration must be measured");
                true
            }
            _ => false,
        })
        .expect("Upload in journal (deep levels are cloud-resident)");
    assert!(flush_end <= upload, "tables flush before they migrate to the cloud");

    let compaction_start =
        pos(&|k| matches!(k, EventKind::CompactionStart { .. })).expect("CompactionStart");
    let compaction_end = events
        .iter()
        .position(|e| match &e.kind {
            EventKind::CompactionEnd { bytes_in, dur_ns, .. } => {
                assert!(*bytes_in > 0, "compaction must read input bytes");
                assert!(*dur_ns > 0, "compaction duration must be measured");
                true
            }
            _ => false,
        })
        .expect("CompactionEnd");
    assert!(compaction_start < compaction_end);

    // The journal drains as parseable JSON lines.
    let lines = db.observer().journal().to_json_lines();
    assert!(!lines.is_empty());
    for line in lines.lines() {
        let v = obs::json::Json::parse(line).expect("journal line parses as JSON");
        assert!(v.get("type").is_some(), "journal line missing type: {line}");
    }
    db.close().unwrap();
}

#[test]
fn stats_snapshot_round_trips_all_export_surfaces() {
    let db = worked_db();
    let snapshot = db.metrics().unwrap().snapshot();

    // The engine-level and cloud-level histograms all saw traffic.
    for op in ["get", "write", "flush", "compaction", "cloud_put"] {
        let stats = snapshot.latency.get(op).unwrap_or_else(|| panic!("{op} histogram empty"));
        assert!(stats.count > 0);
        assert!(stats.p50_ns <= stats.p95_ns && stats.p95_ns <= stats.p99_ns);
    }
    assert!(snapshot.counters.get("engine_writes").copied().unwrap_or(0) > 0);
    assert!(snapshot.gauges.contains_key("local_fraction"));

    // Human dump names the ops and the percentile columns.
    let text = snapshot.stats_string();
    assert!(text.contains("** Latency (us) **"));
    assert!(text.contains("p50") && text.contains("p95") && text.contains("p99"));
    assert!(text.contains("get") && text.contains("compaction"));

    // JSON round-trip is lossless.
    let parsed = MetricsSnapshot::from_json(&snapshot.to_json()).expect("snapshot JSON parses");
    assert_eq!(parsed, snapshot);

    // Prometheus exposition passes the lint and exposes the quantiles.
    let prom = snapshot.to_prometheus();
    let samples = obs::validate_prometheus(&prom).expect("valid exposition");
    assert!(samples > 0);
    assert!(prom.contains("rocksmash_op_latency_seconds{op=\"get\",quantile=\"0.99\"}"));
    assert!(prom.contains("rocksmash_engine_writes_total"));
    db.close().unwrap();
}

/// Sampled perf contexts must flow all the way to the export surfaces:
/// counters and stage-share gauges in the snapshot, a `perf` object in
/// the scheme report JSON, and a Prometheus exposition that still lints.
#[test]
fn sampled_perf_contexts_reach_every_export_surface() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let config = TieredConfig { perf_sample_every: 1, ..tiny_config() };
    let db = TieredDb::open(env, config).unwrap();
    for i in 0..2000 {
        db.put(&key(i), format!("value{i:06}-{}", "x".repeat(64)).as_bytes()).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    for i in (0..2000).step_by(7) {
        assert!(db.get(&key(i)).unwrap().is_some());
    }

    let snapshot = db.metrics().unwrap().snapshot();
    assert!(snapshot.counters.get("perf_sampled_ops").copied().unwrap_or(0) > 0);
    assert!(snapshot.counters.contains_key("perf_sst_read_ns"));
    let share_total: f64 = ["memtable", "local_sst", "cloud", "cache", "decompress", "wal"]
        .iter()
        .map(|s| snapshot.gauges.get(&format!("perf_share_{s}")).copied().unwrap_or(0.0))
        .sum();
    assert!(
        (share_total - 1.0).abs() < 1e-6,
        "stage shares must partition attributed time, got {share_total}"
    );

    let report = db.report().unwrap();
    let totals = report.perf.as_ref().expect("report carries sampled perf totals");
    assert!(totals.stage_sum_ns() > 0);
    assert!(report.perf_ops > 0);
    assert!(report.to_json().contains("\"perf\":{"));

    let prom = snapshot.to_prometheus();
    obs::validate_prometheus(&prom).expect("valid exposition with perf series");
    assert!(prom.contains("rocksmash_perf_sampled_ops_total"));
    assert!(prom.contains("rocksmash_perf_share_cloud"));
    db.close().unwrap();
}

#[test]
fn observability_off_records_nothing() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let config = TieredConfig { observability: false, ..tiny_config() };
    let db = TieredDb::open(env, config).unwrap();
    for i in 0..500 {
        db.put(&key(i), b"v").unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    assert!(!db.observer().is_enabled());
    assert!(db.observer().latency_stats().is_empty());
    assert!(db.observer().journal().events().is_empty());
    db.close().unwrap();
}
