//! Heat-driven tier promotion: deterministic placement harness.
//!
//! A seeded clustered-Zipf workload heats one contiguous quarter of the
//! keyspace; the promotion pass must pull exactly that hot SST range back
//! to local storage (within the byte budget) and leave the cold bulk on
//! the cloud tier. The suite checks:
//!
//! * the residency ledger ends with hot bytes local / cold bytes cloud,
//!   never exceeding the budget, and hot-window reads stop paying cloud
//!   GETs entirely;
//! * promotion counters and journal events surface through `SchemeReport`;
//! * promotions are idempotent across a clean reopen — re-warming the same
//!   hotspot plans zero moves;
//! * (property) for random heat tables and budgets, the [`HeatAware`]
//!   plan never exceeds the local budget and never demotes an SST hotter
//!   than one it keeps.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rocksmash::placement::Tier;
use rocksmash::{
    CacheKind, FileState, HeatAware, PlacementPolicy, PromotionConfig, TierPolicy, TieredConfig,
    TieredDb,
};
use storage::{CloudStore, Env, MemEnv};
use workloads::keys::user_key;
use workloads::microbench::{fillrandom, readrandom};
use workloads::{run_ops, KeyDistribution};

const N: u64 = 2_000;
const VALUE: usize = 64;
/// Hot window: the first quarter of the keyspace.
const HOT: KeyDistribution = KeyDistribution::ZipfCluster { theta: 0.9, start: 0.0, span: 0.25 };

/// Small files so the tree settles into ~20 SSTs; budget sized to hold the
/// hot quarter (plus the static-local upper levels) but not the whole set.
const BUDGET: u64 = 96 << 10;

fn promo_config() -> TieredConfig {
    TieredConfig {
        options: lsm::Options {
            write_buffer_size: 8 << 10,
            target_file_size: 8 << 10,
            max_bytes_for_level_base: 16 << 10,
            l0_compaction_trigger: 2,
            ..lsm::Options::small_for_tests()
        },
        // No persistent cache: residency alone must explain where reads go.
        cache: CacheKind::None,
        promotion: Some(PromotionConfig {
            local_budget_bytes: BUDGET,
            // Passes are driven explicitly; the background interval never
            // fires within a test run.
            interval: Duration::from_secs(3600),
            min_score: 1.0,
            max_files_per_pass: 0,
            max_bytes_per_pass: 0,
        }),
        ..TieredConfig::small_for_tests()
    }
}

fn open(env: &Arc<MemEnv>, cloud: &CloudStore) -> TieredDb {
    TieredDb::open_with_cloud(env.clone() as Arc<dyn Env>, cloud.clone(), promo_config()).unwrap()
}

fn load(db: &TieredDb) {
    run_ops(db, fillrandom(N, VALUE, 0x5eed)).unwrap();
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
}

fn warm(db: &TieredDb, seed: u64) {
    run_ops(db, readrandom(N, 4_000, HOT, seed)).unwrap();
}

/// Drive promotion passes until one moves nothing; returns total
/// (promoted, demoted).
fn settle(db: &TieredDb) -> (usize, usize) {
    let (mut promoted, mut demoted) = (0, 0);
    for _ in 0..32 {
        let report = db.run_promotion_pass().unwrap();
        promoted += report.promoted;
        demoted += report.demoted;
        if report.promoted == 0 && report.demoted == 0 {
            return (promoted, demoted);
        }
    }
    panic!("promotion never settled within 32 passes");
}

/// Live files from the residency ledger as (file, bytes, tier, score).
/// Intersected with the current version: the ledger may transiently hold
/// retired tables whose deferred deletion has not run yet.
fn ledger(db: &TieredDb) -> Vec<(u64, u64, obs::ResidencyTier, f64)> {
    let live: BTreeSet<u64> =
        db.engine().current_version().levels.iter().flatten().map(|m| m.number).collect();
    let heat = db.observer().heat();
    heat.residency()
        .files()
        .into_iter()
        .filter(|(file, _, _)| live.contains(file))
        .map(|(file, bytes, tier)| (file, bytes, tier, heat.score_of(file)))
        .collect()
}

#[test]
fn zipf_hotspot_is_pulled_local_within_budget() {
    let env = Arc::new(MemEnv::new());
    let cloud = CloudStore::instant();
    let db = open(&env, &cloud);
    load(&db);
    warm(&db, 7);

    let (promoted, demoted) = settle(&db);
    assert!(promoted > 0, "a heated cloud range must trigger promotions");

    // The ledger respects the budget and keeps cold bytes on the cloud.
    let files = ledger(&db);
    let local_bytes: u64 =
        files.iter().filter(|f| f.2 == obs::ResidencyTier::Local).map(|f| f.1).sum();
    assert!(local_bytes <= BUDGET, "local {local_bytes} bytes exceed the {BUDGET} budget");
    assert!(
        files.iter().any(|f| f.2 == obs::ResidencyTier::Cloud),
        "the cold bulk must stay cloud-resident"
    );
    // Greedy fixpoint: no promotable cloud file is hotter than any local
    // file (else the settled plan would still have work to do).
    let min_local = files
        .iter()
        .filter(|f| f.2 == obs::ResidencyTier::Local)
        .map(|f| f.3)
        .fold(f64::MAX, f64::min);
    for (file, _, tier, score) in &files {
        if *tier == obs::ResidencyTier::Cloud && *score >= 1.0 {
            assert!(
                *score <= min_local,
                "cloud file {file} (score {score}) hotter than the coldest local ({min_local})"
            );
        }
    }

    // Hot-window reads are now served entirely from the local tier.
    let gets_before = db.cloud().cost_tracker().gets();
    run_ops(&db, readrandom(N, 1_000, HOT, 21)).unwrap();
    assert_eq!(
        db.cloud().cost_tracker().gets(),
        gets_before,
        "promoted hot range must not pay cloud GETs"
    );

    // Counters and journal events ride the report surface.
    let report = db.report().unwrap();
    assert_eq!(report.promotions as usize, promoted);
    assert_eq!(report.demotions as usize, demoted);
    assert!(report.promotion_bytes > 0);
    let json = report.to_json();
    for field in ["\"promotions\":", "\"demotions\":", "\"promotion_bytes\":"] {
        assert!(json.contains(field), "stats JSON missing {field}: {json}");
    }
    let events = db.observer().journal().events();
    assert!(events.iter().any(|e| matches!(e.kind, obs::EventKind::PromotionStart { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, obs::EventKind::PromotionDone { promoted, .. } if promoted > 0)));

    // All data still readable through the re-placed tree.
    for i in (0..N).step_by(41) {
        assert!(db.get(&user_key(i)).unwrap().is_some(), "key {i} lost after promotion");
    }
    db.close().unwrap();
}

#[test]
fn promotions_are_idempotent_across_reopen() {
    let env = Arc::new(MemEnv::new());
    let cloud = CloudStore::instant();
    let before: BTreeSet<u64> = {
        let db = open(&env, &cloud);
        load(&db);
        warm(&db, 7);
        settle(&db);
        // A settled store plans nothing more.
        assert_eq!(db.run_promotion_pass().unwrap(), Default::default());
        let local = ledger(&db)
            .into_iter()
            .filter(|f| f.2 == obs::ResidencyTier::Local)
            .map(|f| f.0)
            .collect();
        db.close().unwrap();
        local
    };

    // Reopen re-seeds residency from what exists on disk; re-warming the
    // same hotspot must find the hot set already placed and move nothing.
    let db = open(&env, &cloud);
    warm(&db, 7);
    let first = db.run_promotion_pass().unwrap();
    assert_eq!(first.promoted, 0, "reopen re-promoted an already-local file: {first:?}");
    assert_eq!(first.demoted, 0, "reopen churned placements: {first:?}");
    let after: BTreeSet<u64> =
        ledger(&db).into_iter().filter(|f| f.2 == obs::ResidencyTier::Local).map(|f| f.0).collect();
    assert_eq!(before, after, "local file set changed across reopen");
    for i in (0..N).step_by(37) {
        assert!(db.get(&user_key(i)).unwrap().is_some(), "key {i} lost across reopen");
    }
    db.close().unwrap();
}

#[test]
fn promotion_requires_observability() {
    let config = TieredConfig { observability: false, ..promo_config() };
    match TieredDb::open_with_cloud(
        Arc::new(MemEnv::new()) as Arc<dyn Env>,
        CloudStore::instant(),
        config,
    ) {
        Ok(_) => panic!("promotion without observability must be rejected"),
        Err(err) => {
            assert!(err.to_string().contains("observability"), "unexpected error: {err}")
        }
    }
}

// ---- property: the HeatAware plan is budget-safe and greedy-optimal ----

proptest! {
    #[test]
    fn heat_aware_plan_respects_budget_and_never_demotes_hotter(
        raw in proptest::collection::vec((1u64..4096, any::<bool>(), 0u32..10_000), 0..32),
        budget in 0u64..65_536,
        min_score_tenths in 0u32..50,
    ) {
        // Distinct file numbers; scores in tenths so ties occur too.
        let files: Vec<FileState> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (bytes, local, score))| FileState {
                file: i as u64 + 1,
                bytes,
                tier: if local { Tier::Local } else { Tier::Cloud },
                score: score as f64 / 10.0,
            })
            .collect();
        let policy = HeatAware {
            base: PlacementPolicy::rocksmash_default(),
            local_budget_bytes: budget,
            min_score: min_score_tenths as f64 / 10.0,
        };
        let plan = policy.plan(&files);
        let by_file: HashMap<u64, &FileState> = files.iter().map(|f| (f.file, f)).collect();

        // Structural sanity: promote only hot-enough cloud files, demote
        // only local files, and never both for the same file.
        for file in &plan.promote {
            let f = by_file[file];
            prop_assert_eq!(f.tier, Tier::Cloud);
            prop_assert!(f.score >= policy.min_score);
        }
        for file in &plan.demote {
            prop_assert_eq!(by_file[file].tier, Tier::Local);
        }
        let demoted: BTreeSet<u64> = plan.demote.iter().copied().collect();
        prop_assert!(plan.promote.iter().all(|f| !demoted.contains(f)));

        // Executing the plan never leaves the local tier over budget.
        let promoted: BTreeSet<u64> = plan.promote.iter().copied().collect();
        let final_local: Vec<&FileState> = files
            .iter()
            .filter(|f| {
                (f.tier == Tier::Local && !demoted.contains(&f.file)) || promoted.contains(&f.file)
            })
            .collect();
        let local_bytes: u64 = final_local.iter().map(|f| f.bytes).sum();
        prop_assert!(
            local_bytes <= budget,
            "plan leaves {} local bytes over the {} budget", local_bytes, budget
        );

        // Greedy optimality: no demoted file is hotter than any kept one.
        for file in &plan.demote {
            let d = by_file[file];
            for k in &final_local {
                prop_assert!(
                    d.score <= k.score,
                    "demoted {} (score {}) is hotter than kept {} (score {})",
                    d.file, d.score, k.file, k.score
                );
            }
        }
    }
}
