//! Self-diagnosis layer end-to-end: per-level amplification accounting
//! that balances against the engine's flush/compaction byte counters, a
//! health doctor that stays quiet on a healthy store and flags an induced
//! slow-cloud stall with the right rule, and a debug bundle whose
//! artifacts are complete and parse.
//!
//! Failpoints are process-global, so every test here serializes on one
//! mutex and disarms everything on entry.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use obs::http::http_get;
use rocksmash::{PlacementPolicy, Scheme, TieredConfig, TieredDb};
use storage::failpoint::{self, FailAction};
use storage::{Env, MemEnv};

static FAILPOINTS: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    let guard = FAILPOINTS.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    failpoint::disarm_all();
    guard
}

/// Tiny buffers and an aggressive trigger: a few hundred KiB of load
/// drives multiple levels and plenty of compactions.
fn compaction_heavy() -> TieredConfig {
    TieredConfig {
        options: lsm::Options {
            write_buffer_size: 16 << 10,
            target_file_size: 16 << 10,
            max_bytes_for_level_base: 32 << 10,
            l0_compaction_trigger: 2,
            ..lsm::Options::small_for_tests()
        },
        cache_admission: false,
        ..TieredConfig::small_for_tests()
    }
}

fn key(i: usize) -> Vec<u8> {
    format!("diag{i:06}").into_bytes()
}

fn fill(db: &TieredDb, n: usize) {
    for i in 0..n {
        db.put(&key(i), format!("v{i}-{}", "d".repeat(80)).as_bytes()).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
}

/// After a compaction-heavy load the level table must show real
/// amplification, and its per-level written-byte flows must balance
/// exactly against the engine's own flush + compaction output counters.
#[test]
fn per_level_accounting_balances_against_engine_counters() {
    let _g = lock();
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let db = TieredDb::open(env, Scheme::RocksMash.configure(compaction_heavy())).unwrap();
    fill(&db, 3000);

    let report = db.report().unwrap();
    let table = report.levels.as_ref().expect("report carries the level table");

    // The tree developed depth and the flows are nonzero where expected:
    // L0 received flushes, some deeper level received compaction output.
    assert!(report.flush_bytes > 0, "no flush bytes accounted");
    assert!(report.engine_compactions > 0, "load was not compaction-heavy");
    let l0 = &table.levels[0];
    assert!(l0.flush_bytes > 0 && l0.write_amp() > 0.0, "L0 flow missing: {l0:?}");
    let deeper: Vec<_> =
        table.levels.iter().skip(1).filter(|l| l.compact_bytes_written > 0).collect();
    assert!(!deeper.is_empty(), "no deeper level received compaction output");
    for l in &deeper {
        assert!(l.ingest_bytes > 0, "compacted level missing ingest: {l:?}");
        assert!(l.write_amp() > 0.0);
    }
    assert!(table.write_amp() > 1.0, "overall w-amp {:.2} not amplified", table.write_amp());
    assert!(table.read_amp() >= 2, "read amp {} too small for a deep tree", table.read_amp());

    // The balance identity: every byte the table claims was written into
    // some level was either a flush or a compaction output the engine
    // counted (this engine has no trivial moves, so moved_bytes is 0).
    assert_eq!(
        table.total_written_bytes(),
        report.flush_bytes + report.compact_bytes_out,
        "level flows do not balance engine counters: {table:?}"
    );
    assert_eq!(table.total_flush_bytes(), report.flush_bytes);
    assert_eq!(table.total_compact_bytes_written(), report.compact_bytes_out);

    // The tiered layer fills the per-level residency split, and the split
    // never exceeds the level's live bytes.
    assert!(table.has_tier_split(), "no local/cloud split: {table:?}");
    for l in &table.levels {
        assert!(l.local_bytes + l.cloud_bytes <= l.bytes, "tier split overflows level: {l:?}");
    }

    // Every export surface carries the table: the human stats string, the
    // JSON report, and the Prometheus families (under the strict lint).
    assert!(db.stats_string().unwrap().contains("** Level stats **"));
    let parsed = obs::json::Json::parse(&report.to_json()).expect("report JSON parses");
    assert!(parsed.get("levels").is_some(), "report JSON missing levels");
    db.sample_metrics().unwrap();
    let prom = db.metrics().unwrap().snapshot().to_prometheus();
    obs::validate_prometheus(&prom).unwrap_or_else(|e| panic!("prometheus lint: {e}"));
    for family in ["rocksmash_level_bytes", "rocksmash_level_tier_bytes", "rocksmash_amp_write"] {
        assert!(prom.contains(family), "family {family} missing:\n{prom}");
    }
    db.close().unwrap();
}

/// A healthy run reports no findings; a slow-cloud failpoint plus a write
/// burst trips `stall_spike` (flushes of the all-cloud store block on the
/// sleeping PUT, sealed memtables pile up, writers stall), and the onset
/// lands in the journal and on `/health.json`.
#[test]
fn doctor_quiet_when_healthy_and_flags_slow_cloud_stall() {
    let _g = lock();
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    // All levels cloud-resident so the armed cloud PUT sits directly on
    // the flush path.
    let config = TieredConfig {
        placement: PlacementPolicy::all_cloud(),
        metrics_listen: Some("127.0.0.1:0".into()),
        ..compaction_heavy()
    };
    let db = Arc::new(TieredDb::open(env, config).unwrap());
    fill(&db, 400);

    // Healthy baseline: two samples with quiet traffic in between.
    db.sample_metrics().unwrap();
    std::thread::sleep(Duration::from_millis(40));
    for i in 0..50 {
        let _ = db.get(&key(i)).unwrap();
    }
    db.sample_metrics().unwrap();
    let report = db.health_report();
    assert!(report.healthy(), "healthy store reported findings: {:?}", report.findings);
    assert_eq!(report.rules_evaluated, obs::ALL_RULES.len());

    // Anomaly: every cloud PUT now sleeps, and a writer bursts. Flushes
    // block on the upload, the imm queue fills, writers stall.
    failpoint::arm("cloud_put", FailAction::Sleep(Duration::from_millis(150)));
    let writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            for i in 0..2000usize {
                db.put(&key(i), format!("burst{i}-{}", "z".repeat(120)).as_bytes()).unwrap();
            }
        })
    };
    // Let the stall accumulate for a meaningful share of the window.
    std::thread::sleep(Duration::from_millis(1500));
    db.sample_metrics().unwrap();
    assert!(failpoint::hits("cloud_put") > 0, "slow-cloud failpoint never fired");

    let report = db.health_report();
    assert!(
        report.has_rule("stall_spike"),
        "doctor missed the induced stall: {:?}",
        report.findings
    );
    let finding = report.findings.iter().find(|f| f.rule == "stall_spike").unwrap();
    assert!(finding.severity >= obs::Severity::Warning);
    assert!(!finding.evidence.is_empty() && !finding.remediation.is_empty());

    // The onset was journaled exactly once so far.
    let onsets = db
        .observer()
        .journal()
        .events()
        .iter()
        .filter(|e| matches!(&e.kind, obs::EventKind::HealthFinding { rule, .. } if rule == "stall_spike"))
        .count();
    assert_eq!(onsets, 1, "stall_spike onset journaled {onsets} times");

    // The scrape endpoint serves the same diagnosis.
    let addr = db.metrics_addr().expect("exporter enabled").to_string();
    let (status, body) = http_get(&addr, "/health.json").unwrap();
    assert_eq!(status, 200);
    let served = obs::HealthReport::from_json(&body).expect("health.json parses");
    assert!(served.has_rule("stall_spike"), "served report missed the stall: {body}");

    failpoint::disarm_all();
    writer.join().unwrap();
    db.close().unwrap();
}

/// `dump_debug_bundle` captures every artifact, the artifacts parse, and
/// the bundle manifest indexes exactly the files written.
#[test]
fn debug_bundle_is_complete_and_lintable() {
    let _g = lock();
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let db = TieredDb::open(env, Scheme::RocksMash.configure(compaction_heavy())).unwrap();
    fill(&db, 1200);
    db.sample_metrics().unwrap();

    // CI sets RM_BUNDLE_DIR to keep the bundle as an uploadable artifact;
    // local runs use a scratch dir.
    let dir = std::env::var("RM_BUNDLE_DIR").map(std::path::PathBuf::from).unwrap_or_else(|_| {
        std::env::temp_dir().join(format!("rocksmash-bundle-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&dir);
    let written = db.dump_debug_bundle(&dir).unwrap();

    for expected in [
        "stats.txt",
        "stats.json",
        "report.json",
        "events.jsonl",
        "heat.json",
        "timeseries.json",
        "health.json",
        "level_table.txt",
        "manifest.txt",
        "bundle.json",
    ] {
        assert!(written.iter().any(|f| f == expected), "bundle missing {expected}: {written:?}");
        let meta = std::fs::metadata(dir.join(expected)).expect(expected);
        assert!(meta.len() > 0, "{expected} is empty");
    }

    // The structured artifacts parse and are internally consistent.
    let read = |name: &str| std::fs::read_to_string(dir.join(name)).unwrap();
    obs::json::Json::parse(&read("stats.json")).expect("stats.json parses");
    let report = obs::json::Json::parse(&read("report.json")).expect("report.json parses");
    assert!(report.get("levels").is_some());
    obs::HealthReport::from_json(&read("health.json")).expect("health.json parses");
    obs::json::Json::parse(&read("timeseries.json")).expect("timeseries.json parses");
    for line in read("events.jsonl").lines() {
        obs::json::Json::parse(line).expect("event line parses");
    }
    assert!(read("stats.txt").contains("** Level stats **"));
    assert!(read("level_table.txt").contains("w-amp"));
    assert!(read("manifest.txt").lines().count() > 0, "manifest listing empty");

    let bundle = obs::json::Json::parse(&read("bundle.json")).expect("bundle.json parses");
    let indexed: Vec<String> = bundle
        .get("files")
        .and_then(obs::json::Json::elements)
        .expect("bundle.json lists files")
        .iter()
        .map(|f| f.as_str().unwrap().to_string())
        .collect();
    for f in &written {
        if f != "bundle.json" {
            assert!(indexed.contains(f), "bundle.json does not index {f}");
        }
    }

    // Dumping twice into the same directory overwrites cleanly.
    let again = db.dump_debug_bundle(&dir).unwrap();
    assert_eq!(again.len(), written.len());
    db.close().unwrap();
    if std::env::var("RM_BUNDLE_DIR").is_err() {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The doctor reacts within one sample of recovery: after the failpoint
/// clears and traffic quiets down, the previously-tripped rule drops out.
#[test]
fn doctor_recovers_after_anomaly_clears() {
    let _g = lock();
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let db = TieredDb::open(env, Scheme::RocksMash.configure(compaction_heavy())).unwrap();
    fill(&db, 300);

    // Manufacture a tripped state directly on the ring: a stall-heavy
    // window, then a quiet one.
    db.sample_metrics().unwrap();
    std::thread::sleep(Duration::from_millis(30));
    db.sample_metrics().unwrap();
    let doctor = obs::Doctor::with_thresholds(obs::DoctorThresholds {
        stall_share_warn: 0.9,
        ..obs::DoctorThresholds::default()
    });
    // With an impossible threshold nothing fires even mid-traffic; with
    // the default thresholds the same quiet ring is healthy too.
    assert!(doctor.diagnose(db.timeseries(), Some(&db.level_table())).healthy());
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut healthy = db.health_report().healthy();
    while !healthy && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(100));
        db.sample_metrics().unwrap();
        healthy = db.health_report().healthy();
    }
    assert!(healthy, "doctor stuck unhealthy on a quiet store");
    db.close().unwrap();
}
