//! Crash-recovery torture matrix.
//!
//! For every critical transition in the store (eWAL append/sync/rotation,
//! memtable flush, MANIFEST edits, SSTable upload, cloud requests, cache
//! fill/evict) a failpoint simulates dying exactly there: a seeded workload
//! runs against a shadow in-memory model until the armed site fires, the
//! store is dropped without shutdown, and a reopen over the same local env
//! and cloud store must recover a state equivalent to the shadow —
//!
//! * **no lost acknowledged writes**: every op the store returned `Ok` for
//!   is visible after recovery;
//! * **no resurrected deletes**: an acknowledged delete stays deleted;
//! * **single in-flight allowance**: the one op that returned `Err` (or
//!   was cut off by the crash) may surface as either the old or the new
//!   value — never anything else;
//! * **idempotent double-recovery**: crashing again immediately after
//!   recovery and recovering a second time yields the identical state.
//!
//! Failpoints are process-global, so every test here serializes on one
//! mutex and disarms everything on entry and exit. The workload seed can
//! be varied via `TORTURE_SEED` for nightly-style sweeps; the default is
//! fixed so CI is deterministic.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rocksmash::{migrate_placement, PlacementPolicy, TieredConfig, TieredDb};
use storage::failpoint::{self, FailAction};
use storage::{CloudConfig, CloudStore, Env, MemEnv, ObjectStore, RetryPolicy};

/// Serializes every test in this binary: failpoints are process-global.
static FAILPOINTS: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    let guard = FAILPOINTS.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    failpoint::disarm_all();
    guard
}

fn torture_seed() -> u64 {
    std::env::var("TORTURE_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xc4a5_4001)
}

const KEYS: usize = 512;

fn key(i: usize) -> Vec<u8> {
    format!("t{i:05}").into_bytes()
}

fn value(step: u64) -> Vec<u8> {
    format!("s{step:08}-{}", "x".repeat(80)).into_bytes()
}

/// Tiny buffers so the armed workload crosses flush/rotation/compaction
/// boundaries every few dozen writes; synchronous eWAL so every ack is a
/// durability promise the recovery check can hold the store to.
fn torture_config(placement: PlacementPolicy, cache_bytes: u64) -> TieredConfig {
    TieredConfig {
        options: lsm::Options {
            write_buffer_size: 8 << 10,
            target_file_size: 8 << 10,
            max_bytes_for_level_base: 16 << 10,
            l0_compaction_trigger: 2,
            sync_writes: true,
            ..lsm::Options::small_for_tests()
        },
        placement,
        cache_bytes,
        cache_admission: false,
        ..TieredConfig::small_for_tests()
    }
}

/// The per-key expectation after a crash: exactly the shadow value, except
/// the single in-flight key which may hold old or attempted-new.
type Shadow = BTreeMap<Vec<u8>, Vec<u8>>;
type InFlight = Option<(Vec<u8>, Option<Vec<u8>>)>;

/// Run the seeded workload with `site` armed until it injects a failure.
/// Returns the shadow model and the in-flight op (if the failure surfaced
/// through a foreground write).
fn run_until_crash(
    db: &TieredDb,
    site: &str,
    rng: &mut StdRng,
    shadow: &mut Shadow,
    step: &mut u64,
) -> InFlight {
    for _ in 0..6000 {
        *step += 1;
        let k = key(rng.gen_range(0..KEYS));
        let roll: f64 = rng.gen();
        if roll < 0.55 {
            let v = value(*step);
            match db.put(&k, &v) {
                Ok(()) => {
                    shadow.insert(k, v);
                }
                Err(_) => return Some((k, Some(v))),
            }
        } else if roll < 0.75 {
            match db.delete(&k) {
                Ok(()) => {
                    shadow.remove(&k);
                }
                Err(_) => return Some((k, None)),
            }
        } else if db.get(&k).is_err() {
            // Reads mutate nothing; a failed read just marks the crash.
            return None;
        }
        if failpoint::triggered(site) {
            // The failure landed on a background thread (flush/compaction)
            // or a best-effort path; no foreground op is in flight.
            return None;
        }
    }
    panic!("site {site} never fired within the op budget");
}

/// Check the recovered store against the shadow model and return the full
/// recovered view for the idempotence comparison.
fn verify_against_shadow(
    db: &TieredDb,
    shadow: &Shadow,
    in_flight: &InFlight,
    site: &str,
) -> BTreeMap<Vec<u8>, Option<Vec<u8>>> {
    let mut view = BTreeMap::new();
    for i in 0..KEYS {
        let k = key(i);
        let got = db.get(&k).unwrap_or_else(|e| panic!("site {site}: read after recovery: {e}"));
        let expected = shadow.get(&k).cloned();
        match in_flight {
            Some((fk, attempted)) if *fk == k => {
                assert!(
                    got == expected || got == *attempted,
                    "site {site}: in-flight key {} recovered to a third state:\n  got {:?}\n  \
                     old {:?}\n  attempted {:?}",
                    String::from_utf8_lossy(&k),
                    got.as_deref().map(String::from_utf8_lossy),
                    expected.as_deref().map(String::from_utf8_lossy),
                    attempted.as_deref().map(String::from_utf8_lossy),
                );
            }
            _ => assert_eq!(
                got.as_deref().map(String::from_utf8_lossy),
                expected.as_deref().map(String::from_utf8_lossy),
                "site {site}: key {} diverged from the shadow model",
                String::from_utf8_lossy(&k),
            ),
        }
        view.insert(k, got);
    }
    view
}

/// The matrix body: warm up unarmed, arm `action` on `site`, run the
/// workload until the site fires, crash (drop without shutdown), recover,
/// verify against the shadow, crash again, recover again, and require the
/// second recovery to reproduce the first bit-for-bit.
fn torture_site(site: &str, action: FailAction, config: TieredConfig) {
    let _g = lock();
    let seed = torture_seed();
    let env = Arc::new(MemEnv::new());
    let cloud = CloudStore::instant();
    let mut rng = StdRng::seed_from_u64(seed ^ fxhash(site));
    let mut shadow: Shadow = BTreeMap::new();
    let mut step = 0u64;

    let in_flight = {
        let db =
            TieredDb::open_with_cloud(env.clone() as Arc<dyn Env>, cloud.clone(), config.clone())
                .unwrap();
        // Unarmed warmup: build real multi-level state, push data through
        // flush and compaction so the cold tier and cache are populated.
        for _ in 0..900 {
            step += 1;
            let k = key(rng.gen_range(0..KEYS));
            let v = value(step);
            db.put(&k, &v).unwrap();
            shadow.insert(k, v);
        }
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();

        failpoint::arm(site, action);
        let in_flight = run_until_crash(&db, site, &mut rng, &mut shadow, &mut step);
        assert!(failpoint::triggered(site), "site {site} armed but never injected");
        failpoint::disarm_all();
        // Crash: stop background threads, then drop without TieredDb::close
        // (no final eWAL sync, no orderly shutdown). MemEnv keeps the
        // "disk" alive through the shared Arc.
        let _ = db.engine().close();
        in_flight
    };

    // First recovery.
    let first_view = {
        let db =
            TieredDb::open_with_cloud(env.clone() as Arc<dyn Env>, cloud.clone(), config.clone())
                .unwrap();
        let view = verify_against_shadow(&db, &shadow, &in_flight, site);
        // Crash again immediately: recovery itself must be crash-safe.
        let _ = db.engine().close();
        view
    };

    // Second recovery must reproduce the first exactly.
    let db = TieredDb::open_with_cloud(env as Arc<dyn Env>, cloud, config).unwrap();
    let second_view = verify_against_shadow(&db, &shadow, &in_flight, site);
    assert_eq!(first_view, second_view, "site {site}: double recovery is not idempotent");
    db.close().unwrap();
}

/// Stable per-site seed perturbation so every site explores a different
/// op sequence under the same `TORTURE_SEED`.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3))
}

fn local_split() -> TieredConfig {
    torture_config(PlacementPolicy::rocksmash_default(), 4 << 20)
}

fn all_cloud() -> TieredConfig {
    torture_config(PlacementPolicy::all_cloud(), 4 << 20)
}

/// `config` with the foreground write path sharded four ways: four
/// memtable shards, each appending to its own eWAL partition stream.
fn sharded(mut config: TieredConfig) -> TieredConfig {
    config.options.write_shards = 4;
    config
}

// ---- the matrix: eWAL sites -------------------------------------------

#[test]
fn crash_at_ewal_append() {
    torture_site("ewal_append", FailAction::CrashAfter(120), local_split());
}

#[test]
fn crash_at_ewal_sync() {
    torture_site("ewal_sync", FailAction::CrashAfter(150), local_split());
}

#[test]
fn crash_at_ewal_rotation() {
    torture_site("ewal_rotate", FailAction::CrashAfter(2), local_split());
}

// ---- flush + manifest sites -------------------------------------------

#[test]
fn crash_at_flush_start() {
    torture_site("flush_begin", FailAction::CrashAfter(2), local_split());
}

#[test]
fn crash_at_flush_manifest_commit() {
    torture_site("flush_manifest", FailAction::CrashAfter(2), local_split());
}

#[test]
fn crash_at_manifest_apply() {
    torture_site("manifest_apply", FailAction::CrashAfter(3), local_split());
}

// ---- the same critical sites with the write path sharded 4 ways -------
//
// Recovery must merge four per-shard log streams back into global commit
// order; these rerun the sites where a sharded writer could diverge from
// the single-stream story.

#[test]
fn crash_at_ewal_append_sharded() {
    torture_site("ewal_append", FailAction::CrashAfter(120), sharded(local_split()));
}

#[test]
fn crash_at_ewal_sync_sharded() {
    torture_site("ewal_sync", FailAction::CrashAfter(150), sharded(local_split()));
}

#[test]
fn crash_at_ewal_rotation_sharded() {
    torture_site("ewal_rotate", FailAction::CrashAfter(2), sharded(local_split()));
}

#[test]
fn crash_at_flush_start_sharded() {
    torture_site("flush_begin", FailAction::CrashAfter(2), sharded(local_split()));
}

#[test]
fn crash_at_sst_upload_sharded() {
    torture_site("sst_upload", FailAction::CrashAfter(2), sharded(all_cloud()));
}

// ---- upload + cloud sites ---------------------------------------------

#[test]
fn crash_at_sst_upload() {
    torture_site("sst_upload", FailAction::CrashAfter(2), all_cloud());
}

#[test]
fn crash_at_cloud_put() {
    torture_site("cloud_put", FailAction::CrashAfter(3), all_cloud());
}

#[test]
fn crash_at_cloud_get() {
    torture_site("cloud_get", FailAction::CrashAfter(5), all_cloud());
}

// ---- cache sites (best-effort: failures must stay invisible) ----------

#[test]
fn cache_fill_failures_are_invisible() {
    torture_site("mashcache_fill", FailAction::ReturnErr, all_cloud());
}

#[test]
fn cache_evict_refusal_is_invisible() {
    // Cache small enough (≈2 extents) that fills need evictions, which the
    // armed site refuses — fills are then skipped, reads must stay exact.
    torture_site(
        "mashcache_evict",
        FailAction::ReturnErr,
        torture_config(PlacementPolicy::all_cloud(), 24 << 10),
    );
}

// ---- migration sites: a crashed migration is resumable ----------------

#[test]
fn crashed_migration_resumes_to_completion() {
    let _g = lock();
    let env = Arc::new(MemEnv::new());
    let cloud = CloudStore::instant();
    // Start all-local so the upload sweep has every settled file to move:
    // the parallel scheduler's settled tree shape varies run to run, and a
    // split placement can leave fewer local files than the crash budget.
    let config = torture_config(PlacementPolicy::all_local(), 4 << 20);
    let db = TieredDb::open_with_cloud(env.clone() as Arc<dyn Env>, cloud.clone(), config).unwrap();
    let mut step = 0u64;
    for i in 0..KEYS {
        step += 1;
        db.put(&key(i), &value(step)).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();

    // Die two files into the local→cloud sweep.
    failpoint::arm("migrate_upload", FailAction::CrashAfter(2));
    assert!(migrate_placement(&db, PlacementPolicy::all_cloud()).is_err());
    failpoint::disarm_all();
    // Every key still readable mid-migration (files sit on their old tier).
    for i in (0..KEYS).step_by(31) {
        assert!(db.get(&key(i)).unwrap().is_some(), "key {i} lost mid-migration");
    }
    // Re-running finishes the move.
    migrate_placement(&db, PlacementPolicy::all_cloud()).unwrap();
    let version = db.engine().current_version();
    for files in &version.levels {
        for meta in files {
            assert!(
                !db.local_env().exists(&lsm::version::sst_name(meta.number)).unwrap(),
                "file {} still local after resumed migration",
                meta.number
            );
        }
    }

    // Same for the cloud→local direction.
    failpoint::arm("migrate_download", FailAction::CrashAfter(2));
    assert!(migrate_placement(&db, PlacementPolicy::all_local()).is_err());
    failpoint::disarm_all();
    migrate_placement(&db, PlacementPolicy::all_local()).unwrap();
    for i in (0..KEYS).step_by(37) {
        assert!(db.get(&key(i)).unwrap().is_some(), "key {i} lost after download resume");
    }
    db.close().unwrap();
}

// ---- promotion sites: a crashed promotion pass is harmless ------------

/// Kill a heat-driven promotion pass mid-flight at `site`, crash the
/// store, and require recovery to (a) preserve every acknowledged write,
/// (b) leave exactly one live copy per SST after the reopen sweep, and
/// (c) let a re-run of the pass converge to full promotion.
fn promotion_site(site: &str) {
    let _g = lock();
    let env = Arc::new(MemEnv::new());
    let cloud = CloudStore::instant();
    // All-cloud base placement: every settled table is a promotion
    // candidate once heated, so the crash budget always has files to hit.
    let config = TieredConfig {
        promotion: Some(rocksmash::PromotionConfig {
            local_budget_bytes: 4 << 20,
            interval: std::time::Duration::from_secs(3600),
            // Zero threshold: this harness tests crash safety of the move,
            // not heat selection, and must not flake when wall-clock decay
            // cools the tables under a loaded test runner.
            min_score: 0.0,
            max_files_per_pass: 0,
            max_bytes_per_pass: 0,
        }),
        ..torture_config(PlacementPolicy::all_cloud(), 4 << 20)
    };
    let mut rng = StdRng::seed_from_u64(torture_seed() ^ fxhash(site));
    let mut shadow: Shadow = BTreeMap::new();
    let mut step = 0u64;
    {
        let db =
            TieredDb::open_with_cloud(env.clone() as Arc<dyn Env>, cloud.clone(), config.clone())
                .unwrap();
        for _ in 0..900 {
            step += 1;
            let k = key(rng.gen_range(0..KEYS));
            let v = value(step);
            db.put(&k, &v).unwrap();
            shadow.insert(k, v);
        }
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
        // Touch every table so reads exercise the cloud path pre-crash.
        for i in 0..KEYS {
            let _ = db.get(&key(i)).unwrap();
        }
        // Die two files into the promotion sweep, then crash the store.
        failpoint::arm(site, FailAction::CrashAfter(2));
        assert!(db.run_promotion_pass().is_err(), "site {site} must surface the failure");
        assert!(failpoint::triggered(site), "site {site} armed but never injected");
        failpoint::disarm_all();
        let _ = db.engine().close();
    }

    let db = TieredDb::open_with_cloud(env.clone() as Arc<dyn Env>, cloud.clone(), config).unwrap();
    // No acknowledged write may be lost to a crashed promotion.
    verify_against_shadow(&db, &shadow, &None, site);
    // The reopen sweep leaves exactly one live copy per SST: either the
    // installed local file (cloud duplicate swept) or the cloud object.
    let objects: std::collections::BTreeSet<u64> = cloud
        .list("sst/")
        .unwrap()
        .into_iter()
        .filter_map(|k| k.strip_prefix("sst/")?.strip_suffix(".sst")?.parse().ok())
        .collect();
    let version = db.engine().current_version();
    for meta in version.levels.iter().flatten() {
        let local = db.local_env().exists(&lsm::version::sst_name(meta.number)).unwrap();
        assert!(
            local != objects.contains(&meta.number),
            "site {site}: file {} has {} live copies after recovery",
            meta.number,
            if local { 2 } else { 0 },
        );
    }
    // Re-running the pass converges: with a zero score threshold every
    // cloud-resident table qualifies, so settling must end all-local.
    for i in 0..KEYS {
        let _ = db.get(&key(i)).unwrap();
    }
    for _ in 0..32 {
        let report = db.run_promotion_pass().unwrap();
        if report.promoted == 0 && report.demoted == 0 {
            break;
        }
    }
    let version = db.engine().current_version();
    for meta in version.levels.iter().flatten() {
        assert!(
            db.local_env().exists(&lsm::version::sst_name(meta.number)).unwrap(),
            "site {site}: file {} not local after resumed promotion",
            meta.number
        );
    }
    verify_against_shadow(&db, &shadow, &None, site);
    db.close().unwrap();
}

#[test]
fn crash_at_promotion_download() {
    promotion_site("promotion_download");
}

#[test]
fn crash_at_promotion_commit() {
    promotion_site("promotion_commit");
}

// ---- retry integration: a flaky cloud is invisible to users -----------

#[test]
fn flaky_cloud_is_invisible_through_retries() {
    let _g = lock();
    let cloud = CloudStore::new(CloudConfig {
        failure_prob: 0.3,
        seed: torture_seed(),
        retry: RetryPolicy { max_attempts: 10, ..RetryPolicy::fast_for_tests() },
        ..CloudConfig::instant()
    });
    let env = Arc::new(MemEnv::new());
    let db = TieredDb::open_with_cloud(
        env as Arc<dyn Env>,
        cloud,
        torture_config(PlacementPolicy::all_cloud(), 0),
    )
    .unwrap();
    // Full write→flush→upload→read cycle: with 30% of cloud requests
    // failing transiently, not one error may reach the user.
    let mut step = 0u64;
    for i in 0..KEYS {
        step += 1;
        db.put(&key(i), &value(step)).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    for i in 0..KEYS {
        assert!(db.get(&key(i)).unwrap().is_some(), "key {i} unreadable under faults");
    }

    let report = db.report().unwrap();
    assert!(report.retry_attempts > 0, "30% fault rate must force retries");
    assert_eq!(report.retry_exhausted, 0, "no operation may exhaust its retry budget");
    assert!(report.retry_recovered > 0, "recovered operations must be counted");
    // The counters ride the `stats --json` surface...
    let json = report.to_json();
    for field in ["\"retry_attempts\":", "\"retry_exhausted\":", "\"retry_recovered\":"] {
        assert!(json.contains(field), "stats JSON missing {field}: {json}");
    }
    // ...and individual retries land in the event journal.
    let events = db.observer().journal().events();
    assert!(
        events.iter().any(|e| matches!(e.kind, obs::EventKind::RetryAttempt { .. })),
        "journal must carry RetryAttempt events"
    );
    db.close().unwrap();
}
