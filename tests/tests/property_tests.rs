//! Property-based tests (proptest) on the core data structures and the
//! invariants the system's correctness rests on.

use std::collections::BTreeMap;
use std::sync::Arc;

use lsm::memtable::{LookupResult, MemTable};
use lsm::sstable::{Block, BlockBuilder, BloomFilter, Table, TableBuilder};
use lsm::types::{internal_compare, make_internal_key, make_lookup_key, ValueType};
use lsm::util::{crc32c, get_varint64, put_varint64};
use lsm::{Options, WriteBatch};
use mashcache::meta::PackedIndex;
use proptest::prelude::*;
use storage::{Env, MemEnv};

proptest! {
    #[test]
    fn varint_roundtrips(v in any::<u64>()) {
        let mut buf = Vec::new();
        put_varint64(&mut buf, v);
        let (decoded, n) = get_varint64(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn varint_never_reads_past_encoding(v in any::<u64>(), tail in proptest::collection::vec(any::<u8>(), 0..8)) {
        let mut buf = Vec::new();
        put_varint64(&mut buf, v);
        let len = buf.len();
        buf.extend_from_slice(&tail);
        let (decoded, n) = get_varint64(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(n, len);
    }

    #[test]
    fn crc_detects_single_bit_flips(data in proptest::collection::vec(any::<u8>(), 1..512), bit in any::<u16>()) {
        let crc = crc32c(&data);
        let mut corrupted = data.clone();
        let pos = (bit as usize) % (corrupted.len() * 8);
        corrupted[pos / 8] ^= 1 << (pos % 8);
        prop_assert_ne!(crc, crc32c(&corrupted));
    }

    #[test]
    fn internal_key_order_extends_user_key_order(
        a in proptest::collection::vec(any::<u8>(), 0..24),
        b in proptest::collection::vec(any::<u8>(), 0..24),
        sa in 0u64..1 << 40,
        sb in 0u64..1 << 40,
    ) {
        let ka = make_internal_key(&a, sa, ValueType::Value);
        let kb = make_internal_key(&b, sb, ValueType::Value);
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert_eq!(internal_compare(&ka, &kb), std::cmp::Ordering::Less),
            std::cmp::Ordering::Greater => prop_assert_eq!(internal_compare(&ka, &kb), std::cmp::Ordering::Greater),
            std::cmp::Ordering::Equal => {
                // Same user key: higher sequence sorts first.
                prop_assert_eq!(internal_compare(&ka, &kb), sb.cmp(&sa));
            }
        }
    }

    #[test]
    fn write_batch_roundtrips(ops in proptest::collection::vec(
        (any::<bool>(), proptest::collection::vec(any::<u8>(), 0..32), proptest::collection::vec(any::<u8>(), 0..64)),
        0..20,
    ), seq in any::<u32>()) {
        let mut batch = WriteBatch::new();
        for (is_put, key, value) in &ops {
            if *is_put {
                batch.put(key, value);
            } else {
                batch.delete(key);
            }
        }
        batch.set_sequence(seq as u64);
        let decoded = WriteBatch::from_data(batch.data()).unwrap();
        prop_assert_eq!(decoded.count(), ops.len() as u32);
        prop_assert_eq!(decoded.sequence(), seq as u64);
        prop_assert_eq!(decoded.iter().count(), ops.len());
    }

    #[test]
    fn bloom_has_no_false_negatives(keys in proptest::collection::hash_set(
        proptest::collection::vec(any::<u8>(), 1..24), 1..200,
    )) {
        let keys: Vec<Vec<u8>> = keys.into_iter().collect();
        let filter = BloomFilter::build(keys.iter().map(|k| k.as_slice()), 10);
        for key in &keys {
            prop_assert!(filter.may_contain(key));
        }
        let decoded = BloomFilter::decode(&filter.encode()).unwrap();
        for key in &keys {
            prop_assert!(decoded.may_contain(key));
        }
    }

    #[test]
    fn packed_index_matches_hashmap(ops in proptest::collection::vec(
        (any::<bool>(), 0u64..256, 0u32..10_000), 1..400,
    )) {
        let mut idx = PackedIndex::new();
        let mut model = std::collections::HashMap::new();
        for (insert, offset_slot, slot) in ops {
            let offset = offset_slot * 4096;
            if insert {
                idx.insert(offset, slot);
                model.insert(offset, slot);
            } else {
                prop_assert_eq!(idx.remove(offset), model.remove(&offset));
            }
        }
        prop_assert_eq!(idx.len(), model.len());
        for (offset, slot) in model {
            prop_assert_eq!(idx.get(offset), Some(slot));
        }
    }

    #[test]
    fn memtable_agrees_with_model(ops in proptest::collection::vec(
        (any::<bool>(), 0u8..32, proptest::collection::vec(any::<u8>(), 0..16)), 1..200,
    )) {
        let mem = Arc::new(MemTable::new());
        let mut model: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let mut seq = 0u64;
        for (is_put, key_id, value) in ops {
            seq += 1;
            let key = vec![b'k', key_id];
            if is_put {
                mem.insert(seq, ValueType::Value, &key, &value);
                model.insert(key, Some(value));
            } else {
                mem.insert(seq, ValueType::Deletion, &key, &[]);
                model.insert(key, None);
            }
        }
        for (key, expect) in model {
            let got = mem.get(&key, u64::MAX >> 9);
            match expect {
                Some(v) => prop_assert_eq!(got, LookupResult::Value(v)),
                None => prop_assert_eq!(got, LookupResult::Deleted),
            }
        }
    }

    #[test]
    fn block_iteration_returns_exactly_what_was_built(
        entries in proptest::collection::btree_map(
            proptest::collection::vec(any::<u8>(), 1..16),
            proptest::collection::vec(any::<u8>(), 0..32),
            1..64,
        ),
        restart_interval in 1usize..20,
    ) {
        let mut builder = BlockBuilder::new(restart_interval);
        let mut expected = Vec::new();
        for (i, (key, value)) in entries.iter().enumerate() {
            let ikey = make_internal_key(key, i as u64 + 1, ValueType::Value);
            builder.add(&ikey, value);
            expected.push((ikey, value.clone()));
        }
        let block = Arc::new(Block::new(builder.finish()).unwrap());
        let mut iter = block.iter();
        use lsm::iterator::InternalIterator;
        iter.seek_to_first().unwrap();
        for (ikey, value) in &expected {
            prop_assert!(iter.valid());
            prop_assert_eq!(iter.key(), ikey.as_slice());
            prop_assert_eq!(iter.value(), value.as_slice());
            iter.next().unwrap();
        }
        prop_assert!(!iter.valid());
        // Seeking any built key finds it.
        for (ikey, value) in &expected {
            iter.seek(ikey).unwrap();
            prop_assert!(iter.valid());
            prop_assert_eq!(iter.value(), value.as_slice());
        }
    }

    #[test]
    fn table_get_finds_every_entry(keys in proptest::collection::btree_set(
        proptest::collection::vec(b'a'..=b'z', 1..12), 1..100,
    )) {
        let env = MemEnv::new();
        let options = Options { block_size: 256, ..Options::small_for_tests() };
        let mut builder = TableBuilder::new(env.new_writable("t").unwrap(), options.clone());
        let keys: Vec<Vec<u8>> = keys.into_iter().collect();
        for (i, key) in keys.iter().enumerate() {
            let ikey = make_internal_key(key, i as u64 + 1, ValueType::Value);
            builder.add(&ikey, format!("val{i}").as_bytes()).unwrap();
        }
        builder.finish().unwrap();
        let table = Arc::new(
            Table::open(env.open_random("t").unwrap(), 1, options, None).unwrap(),
        );
        for (i, key) in keys.iter().enumerate() {
            let lookup = make_lookup_key(key, u64::MAX >> 9);
            let (_, v) = table.get(&lookup).unwrap().expect("present");
            prop_assert_eq!(v, format!("val{i}").into_bytes());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Whole-database property: random op sequences against a model. Few
    // cases (each opens a full engine) but deep ones.
    #[test]
    fn db_matches_model_under_random_ops(ops in proptest::collection::vec(
        (0u8..3, 0u16..200, proptest::collection::vec(any::<u8>(), 0..48)), 1..300,
    )) {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = lsm::Db::open(env, Options {
            write_buffer_size: 8 << 10,
            l0_compaction_trigger: 2,
            max_bytes_for_level_base: 32 << 10,
            ..Options::small_for_tests()
        }).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (kind, key_id, value) in ops {
            let key = format!("p{key_id:05}").into_bytes();
            match kind {
                0 => {
                    db.put(&key, &value).unwrap();
                    model.insert(key, value);
                }
                1 => {
                    db.delete(&key).unwrap();
                    model.remove(&key);
                }
                _ => {
                    prop_assert_eq!(db.get(&key).unwrap(), model.get(&key).cloned());
                }
            }
        }
        db.flush().unwrap();
        for (key, value) in &model {
            let got = db.get(key).unwrap();
            prop_assert_eq!(got.as_ref(), Some(value));
        }
        db.close().unwrap();
    }
}

proptest! {
    // Robustness: feeding arbitrary or corrupted bytes to the decoders
    // must yield clean errors, never panics or hangs.

    #[test]
    fn log_reader_never_panics_on_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let env = MemEnv::new();
        env.write_all("log", &data).unwrap();
        let mut reader = lsm::wal::LogReader::new(env.open_random("log").unwrap());
        // Either records come out or corruption is counted; no panic.
        let _ = reader.read_all();
    }

    #[test]
    fn log_reader_survives_bit_flips_in_valid_logs(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..256), 1..8),
        flip in any::<u32>(),
    ) {
        let env = MemEnv::new();
        let mut writer = lsm::wal::LogWriter::new(env.new_writable("log").unwrap());
        for r in &records {
            writer.add_record(r).unwrap();
        }
        writer.finish().unwrap();
        let mut data = env.read_all("log").unwrap();
        let bit = flip as usize % (data.len() * 8);
        data[bit / 8] ^= 1 << (bit % 8);
        env.write_all("log", &data).unwrap();
        let mut reader = lsm::wal::LogReader::new(env.open_random("log").unwrap());
        let recovered = reader.read_all().unwrap();
        // Every recovered record must be one of the originals, in order.
        let mut cursor = 0;
        for rec in &recovered {
            let pos = records[cursor..].iter().position(|r| r == rec);
            prop_assert!(pos.is_some(), "reader fabricated a record");
            cursor += pos.unwrap() + 1;
        }
    }

    #[test]
    fn table_open_never_panics_on_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let env = MemEnv::new();
        env.write_all("t", &data).unwrap();
        let _ = Table::open(env.open_random("t").unwrap(), 1, Options::small_for_tests(), None);
    }

    #[test]
    fn table_reads_never_panic_on_corrupted_valid_tables(
        n in 1usize..50,
        flip in any::<u32>(),
    ) {
        let env = MemEnv::new();
        let options = Options { block_size: 256, ..Options::small_for_tests() };
        let mut b = TableBuilder::new(env.new_writable("t").unwrap(), options.clone());
        for i in 0..n {
            let k = make_internal_key(format!("k{i:04}").as_bytes(), i as u64 + 1, ValueType::Value);
            b.add(&k, b"value-bytes").unwrap();
        }
        b.finish().unwrap();
        let mut data = env.read_all("t").unwrap();
        let bit = flip as usize % (data.len() * 8);
        data[bit / 8] ^= 1 << (bit % 8);
        env.write_all("t", &data).unwrap();
        if let Ok(table) = Table::open(env.open_random("t").unwrap(), 1, options, None) {
            let table = Arc::new(table);
            for i in 0..n.min(10) {
                // Result may be Ok or a corruption error; never a panic,
                // and never a wrong value for an intact read path.
                if let Ok(Some((k, v))) =
                    table.get(&make_lookup_key(format!("k{i:04}").as_bytes(), 1 << 40))
                {
                    if lsm::types::extract_user_key(&k) == format!("k{i:04}").as_bytes() {
                        let _ = v;
                    }
                }
            }
        }
    }

    #[test]
    fn version_edit_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = lsm::version::VersionEdit::decode(&data);
    }

    #[test]
    fn write_batch_from_data_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = WriteBatch::from_data(&data);
    }

    #[test]
    fn bloom_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Some(f) = BloomFilter::decode(&data) {
            let _ = f.may_contain(b"probe");
        }
    }
}

proptest! {
    // eWAL invariants: arbitrary batches survive the append→partition-log→
    // decode cycle exactly, and the sequence stamps alone suffice to
    // reconstruct the original write order no matter which order the
    // partitions are read back in.

    #[test]
    fn ewal_batches_roundtrip_through_partition_logs(
        batches in proptest::collection::vec(
            proptest::collection::vec(
                (any::<bool>(),
                 proptest::collection::vec(any::<u8>(), 0..24),
                 proptest::collection::vec(any::<u8>(), 0..48)),
                1..8,
            ),
            1..30,
        ),
        partitions in 1usize..6,
    ) {
        use lsm::batch::BatchOp;
        use rocksmash::ewal::EWalWriter;
        use rocksmash::recovery::decode_all_sorted;

        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let w = EWalWriter::create(&env, 1, partitions).unwrap();
        let mut seq = 1u64;
        let mut originals = Vec::new();
        for ops in &batches {
            let mut b = WriteBatch::new();
            for (is_put, key, value) in ops {
                if *is_put {
                    b.put(key, value);
                } else {
                    b.delete(key);
                }
            }
            b.set_sequence(seq);
            w.append(&b).unwrap();
            originals.push((seq, ops.clone()));
            seq += ops.len() as u64;
        }
        w.finish().unwrap();

        let decoded = decode_all_sorted(&env, false).unwrap();
        prop_assert_eq!(decoded.len(), originals.len());
        for (batch, (oseq, ops)) in decoded.iter().zip(&originals) {
            prop_assert_eq!(batch.sequence(), *oseq);
            prop_assert_eq!(batch.count() as usize, ops.len());
            for (op, (is_put, key, value)) in batch.iter().zip(ops) {
                match op {
                    BatchOp::Put(k, v) => {
                        prop_assert!(*is_put);
                        prop_assert_eq!(k, key.as_slice());
                        prop_assert_eq!(v, value.as_slice());
                    }
                    BatchOp::Delete(k) => {
                        prop_assert!(!*is_put);
                        prop_assert_eq!(k, key.as_slice());
                    }
                }
            }
        }
    }

    #[test]
    fn shuffled_partition_replay_reconstructs_write_order(
        n in 1usize..150,
        partitions in 1usize..6,
        shuffle_seed in any::<u64>(),
    ) {
        use lsm::batch::BatchOp;
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        use rocksmash::ewal::{decode_batch, list_partition_files, EWalWriter};

        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let w = EWalWriter::create(&env, 1, partitions).unwrap();
        for i in 0..n {
            let mut b = WriteBatch::new();
            b.put(format!("k{i:05}").as_bytes(), format!("v{i}").as_bytes());
            b.set_sequence(i as u64 + 1);
            w.append(&b).unwrap();
        }
        w.finish().unwrap();

        // Read the partitions back in an adversarial (shuffled) order; the
        // round-robin layout means file order carries no information.
        let mut files = list_partition_files(&env).unwrap();
        files.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
        let mut replayed = Vec::new();
        for name in &files {
            let mut reader = lsm::wal::LogReader::new(env.open_random(name).unwrap());
            while let Some(record) = reader.read_record().unwrap() {
                replayed.push(decode_batch(&record).unwrap());
            }
        }
        replayed.sort_by_key(|b| b.sequence());

        prop_assert_eq!(replayed.len(), n);
        for (i, batch) in replayed.iter().enumerate() {
            prop_assert_eq!(batch.sequence(), i as u64 + 1);
            let op = batch.iter().next().unwrap();
            match op {
                BatchOp::Put(k, v) => {
                    prop_assert_eq!(k, format!("k{i:05}").as_bytes());
                    prop_assert_eq!(v, format!("v{i}").as_bytes());
                }
                BatchOp::Delete(_) => prop_assert!(false, "fabricated delete"),
            }
        }
    }
}
