//! Integration coverage for the parallel read path: `multi_get` snapshot
//! consistency under concurrent writers, readahead correctness across SST
//! and block boundaries, cloud request coalescing, and the batched-lookup
//! speedup over the serial loop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use lsm::{Options, ReadOptions, WriteBatch};
use rocksmash::{Scheme, TieredConfig};
use storage::{CloudConfig, LatencyModel, MemEnv};

/// A cloud-resident store (every level on the object store) with small
/// blocks and files so scans cross many block and SST boundaries.
fn cloud_config(readahead_blocks: usize, base_us: u64) -> TieredConfig {
    TieredConfig {
        options: Options {
            write_buffer_size: 64 << 10,
            target_file_size: 64 << 10,
            max_bytes_for_level_base: 256 << 10,
            l0_compaction_trigger: 2,
            ..Options::small_for_tests()
        },
        cloud: CloudConfig {
            latency: LatencyModel { base_us, bandwidth_mib_s: 10_000.0, jitter_frac: 0.0 },
            ..CloudConfig::instant()
        },
        readahead_blocks,
        ..TieredConfig::small_for_tests()
    }
}

fn load_sequential(db: &rocksmash::TieredDb, count: usize, value_len: usize) {
    let value = vec![0x42u8; value_len];
    for i in 0..count {
        db.put(format!("sc{i:06}").as_bytes(), &value).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
}

/// A `multi_get` must evaluate every key against one snapshot: two keys
/// always updated together in one atomic batch can never be observed at
/// different versions, no matter how the writer races the readers.
#[test]
fn multi_get_never_observes_torn_batches() {
    let db = Arc::new(Scheme::LocalOnly.open(Arc::new(MemEnv::new()), cloud_config(0, 0)).unwrap());
    // 64 keys: the sentinel pair at both ends (so the batch is wide enough
    // to take the parallel path) plus filler churn in between.
    let keys: Vec<Vec<u8>> = std::iter::once(b"pair-a".to_vec())
        .chain((0..62).map(|i| format!("fill{i:02}").into_bytes()))
        .chain(std::iter::once(b"pair-z".to_vec()))
        .collect();
    let write_round = |round: u64| {
        let value = format!("v{round:06}");
        let mut batch = WriteBatch::new();
        for key in &keys {
            batch.put(key, value.as_bytes());
        }
        db.write(batch).unwrap();
    };
    write_round(0);

    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = Arc::clone(&db);
        let keys = keys.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for round in 1..=400u64 {
                let value = format!("v{round:06}");
                let mut batch = WriteBatch::new();
                for key in &keys {
                    batch.put(key, value.as_bytes());
                }
                db.write(batch).unwrap();
            }
            done.store(true, Ordering::Release);
        })
    };

    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let mut observed = 0u64;
    while !done.load(Ordering::Acquire) {
        let got = db.multi_get(&refs).unwrap();
        assert_eq!(got[0], got[63], "pair keys written atomically diverged after {observed} reads");
        assert!(got[0].is_some(), "sentinel key missing");
        observed += 1;
    }
    writer.join().unwrap();
    assert!(observed > 0, "reader never overlapped the writer");
    db.close().unwrap();
}

/// Readahead is a pure performance hint: a scan crossing many blocks and
/// several SSTs must return byte-identical results with it on or off,
/// from the table start and from a mid-key seek.
#[test]
fn readahead_scan_is_byte_identical() {
    let db = Scheme::CloudOnly.open(Arc::new(MemEnv::new()), cloud_config(0, 0)).unwrap();
    load_sequential(&db, 2_000, 100);

    let plain = db.scan_with(b"", usize::MAX, ReadOptions::default()).unwrap();
    let ahead = db.scan_with(b"", usize::MAX, ReadOptions::with_readahead(8)).unwrap();
    assert_eq!(plain.len(), 2_000);
    assert_eq!(plain, ahead, "readahead changed full-scan results");

    let mid_plain = db.scan_with(b"sc000777", 700, ReadOptions::default()).unwrap();
    let mid_ahead = db.scan_with(b"sc000777", 700, ReadOptions::with_readahead(8)).unwrap();
    assert_eq!(mid_plain.len(), 700);
    assert_eq!(mid_plain, mid_ahead, "readahead changed mid-seek results");
    db.close().unwrap();
}

/// A sequential scan of cloud-resident SSTs with readahead coalesces
/// neighbouring block fetches into wide ranged GETs: the billed request
/// count must drop at least 4× against the block-at-a-time scan.
#[test]
fn sequential_scan_coalescing_cuts_billed_gets() {
    let scan = |readahead: usize| -> (u64, rocksmash::SchemeReport) {
        let db =
            Scheme::CloudOnly.open(Arc::new(MemEnv::new()), cloud_config(readahead, 150)).unwrap();
        load_sequential(&db, 2_500, 128);
        let before = db.cloud().stats().snapshot().reads;
        let rows = db.scan(b"", usize::MAX).unwrap();
        assert_eq!(rows.len(), 2_500);
        let gets = db.cloud().stats().snapshot().reads - before;
        let report = db.report().unwrap();
        db.close().unwrap();
        (gets, report)
    };

    let (serial_gets, serial_report) = scan(0);
    let (ra_gets, ra_report) = scan(16);
    assert!(
        serial_gets >= 4 * ra_gets,
        "coalescing saved too little: {serial_gets} GETs without readahead, \
         {ra_gets} with"
    );
    assert_eq!(serial_report.prefetch_issued, 0);
    assert!(ra_report.prefetch_issued > 0, "no blocks were prefetched");
    assert!(ra_report.prefetch_useful > 0, "prefetched blocks never served a read");
    assert!(
        ra_report.requests_saved > serial_report.requests_saved,
        "scan issued no coalesced multi-block GETs"
    );
}

/// Batched point lookups over cloud-resident data must beat the serial
/// per-key loop by overlapping the simulated request latencies, without
/// changing any result — and a single-key batch must agree with `get`.
#[test]
fn multi_get_fans_out_cloud_lookups() {
    let db = Scheme::CloudOnly.open(Arc::new(MemEnv::new()), cloud_config(0, 400)).unwrap();
    load_sequential(&db, 2_000, 64);

    // Warm table handles (footer/index/bloom fetches) and the rayon pool
    // so both measured arms pay only data-block latency.
    let warm: Vec<Vec<u8>> = (0..8).map(|i| format!("sc{:06}", i * 250).into_bytes()).collect();
    let warm_refs: Vec<&[u8]> = warm.iter().map(|k| k.as_slice()).collect();
    db.multi_get(&warm_refs).unwrap();

    // Disjoint strided key sets, one block apart, so neither arm reads a
    // block the other already cached.
    let serial_keys: Vec<Vec<u8>> =
        (0..64).map(|j| format!("sc{:06}", 13 + 24 * j).into_bytes()).collect();
    let batch_keys: Vec<Vec<u8>> =
        (0..64).map(|j| format!("sc{:06}", 1 + 24 * j).into_bytes()).collect();

    let serial_start = Instant::now();
    let mut serial_values = Vec::new();
    for key in &serial_keys {
        serial_values.push(db.get(key).unwrap());
    }
    let serial_elapsed = serial_start.elapsed();

    let batch_refs: Vec<&[u8]> = batch_keys.iter().map(|k| k.as_slice()).collect();
    let batch_start = Instant::now();
    let batch_values = db.multi_get(&batch_refs).unwrap();
    let batch_elapsed = batch_start.elapsed();

    for (keys, values) in [(&serial_keys, &serial_values), (&batch_keys, &batch_values)] {
        for (key, value) in keys.iter().zip(values.iter()) {
            assert_eq!(
                value.as_deref(),
                Some(&[0x42u8; 64][..]),
                "wrong value for {}",
                String::from_utf8_lossy(key)
            );
        }
    }
    assert!(
        serial_elapsed >= 3 * batch_elapsed,
        "multi_get too slow: serial {serial_elapsed:?} vs batched {batch_elapsed:?}"
    );

    // Single-key batches take the serial path and must agree with get().
    let key = b"sc000500".as_slice();
    assert_eq!(db.multi_get(&[key]).unwrap(), vec![db.get(key).unwrap()]);
    db.close().unwrap();
}
