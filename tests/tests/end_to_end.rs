//! End-to-end integration: the full RocksMash stack under realistic mixed
//! workloads, verified against an in-memory model database.

use std::collections::BTreeMap;
use std::sync::Arc;

use lsm::Options;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rocksmash::{Scheme, TieredConfig, TieredDb};
use storage::{Env, MemEnv};

fn small_base() -> TieredConfig {
    TieredConfig {
        options: Options {
            write_buffer_size: 16 << 10,
            target_file_size: 16 << 10,
            max_bytes_for_level_base: 32 << 10,
            l0_compaction_trigger: 2,
            ..Options::small_for_tests()
        },
        cache_admission: false,
        cache_bytes: 1 << 20,
        ..TieredConfig::small_for_tests()
    }
}

/// Drive random puts/deletes/gets/scans against the store and a BTreeMap
/// model; every read must agree with the model.
fn model_check(db: &TieredDb, seed: u64, ops: usize) {
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for step in 0..ops {
        let key = format!("mk{:05}", rng.gen_range(0..500u32)).into_bytes();
        match rng.gen_range(0..10) {
            0..=4 => {
                let value = format!("v{step}-{}", "p".repeat(rng.gen_range(0..200))).into_bytes();
                db.put(&key, &value).unwrap();
                model.insert(key, value);
            }
            5 => {
                db.delete(&key).unwrap();
                model.remove(&key);
            }
            6..=8 => {
                assert_eq!(db.get(&key).unwrap(), model.get(&key).cloned(), "step {step}");
            }
            _ => {
                let got = db.scan(&key, 10).unwrap();
                let want: Vec<(Vec<u8>, Vec<u8>)> = model
                    .range(key.clone()..)
                    .take(10)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                assert_eq!(got, want, "scan at step {step}");
            }
        }
        if step % 1000 == 999 {
            db.flush().unwrap();
        }
    }
    // Final full comparison.
    let mut it = db.iter().unwrap();
    it.seek_to_first().unwrap();
    let all = it.collect_forward(usize::MAX).unwrap();
    let want: Vec<(Vec<u8>, Vec<u8>)> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(all, want, "final state diverged from model");
}

#[test]
fn rocksmash_matches_model_database() {
    let db = Scheme::RocksMash.open(Arc::new(MemEnv::new()), small_base()).unwrap();
    model_check(&db, 0xabcd, 5_000);
    db.close().unwrap();
}

#[test]
fn naive_hybrid_matches_model_database() {
    let db = Scheme::NaiveHybrid.open(Arc::new(MemEnv::new()), small_base()).unwrap();
    model_check(&db, 0x1234, 4_000);
    db.close().unwrap();
}

#[test]
fn local_only_matches_model_database() {
    let db = Scheme::LocalOnly.open(Arc::new(MemEnv::new()), small_base()).unwrap();
    model_check(&db, 0x9999, 4_000);
    db.close().unwrap();
}

#[test]
fn repeated_crash_recovery_preserves_model_state() {
    let env = Arc::new(MemEnv::new());
    let cloud = storage::CloudStore::instant();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(77);
    for round in 0..4 {
        let db =
            TieredDb::open_with_cloud(env.clone() as Arc<dyn Env>, cloud.clone(), small_base())
                .unwrap();
        // Everything from earlier rounds must have survived the "crash".
        for (k, v) in &model {
            assert_eq!(db.get(k).unwrap().as_ref(), Some(v), "round {round}");
        }
        for i in 0..800 {
            let key = format!("ck{:05}", rng.gen_range(0..300u32)).into_bytes();
            if rng.gen_bool(0.8) {
                let value = format!("r{round}-{i}").into_bytes();
                db.put(&key, &value).unwrap();
                model.insert(key, value);
            } else {
                db.delete(&key).unwrap();
                model.remove(&key);
            }
        }
        // Crash without flushing: the eWAL carries the tail.
        db.engine().close().unwrap();
    }
    let db = TieredDb::open_with_cloud(env as Arc<dyn Env>, cloud, small_base()).unwrap();
    for (k, v) in &model {
        assert_eq!(db.get(k).unwrap().as_ref(), Some(v));
    }
    db.close().unwrap();
}

#[test]
fn concurrent_clients_on_tiered_store() {
    let db = Arc::new(Scheme::RocksMash.open(Arc::new(MemEnv::new()), small_base()).unwrap());
    // Seed data.
    for i in 0..400 {
        db.put(format!("shared{i:04}").as_bytes(), b"seed").unwrap();
    }
    let mut handles = Vec::new();
    for t in 0..4u32 {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(t as u64);
            for i in 0..2_000u32 {
                let key = format!("shared{:04}", rng.gen_range(0..400));
                if rng.gen_bool(0.3) {
                    db.put(key.as_bytes(), format!("t{t}-{i}").as_bytes()).unwrap();
                } else {
                    // Any committed value (or the seed) is acceptable; the
                    // point is no errors, no torn reads.
                    let got = db.get(key.as_bytes()).unwrap().expect("never deleted");
                    assert!(got == b"seed".to_vec() || got.starts_with(b"t"));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    db.close().unwrap();
}

#[test]
fn snapshot_consistency_across_flush_and_compaction() {
    let db = Scheme::RocksMash.open(Arc::new(MemEnv::new()), small_base()).unwrap();
    for i in 0..500 {
        db.put(format!("sn{i:04}").as_bytes(), format!("before-{i}").as_bytes()).unwrap();
    }
    let snap = db.snapshot();
    for i in 0..500 {
        db.put(format!("sn{i:04}").as_bytes(), format!("after-{i}").as_bytes()).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    for i in (0..500).step_by(29) {
        let key = format!("sn{i:04}");
        assert_eq!(
            db.get_at(key.as_bytes(), &snap).unwrap(),
            Some(format!("before-{i}").into_bytes()),
            "snapshot read for {key}"
        );
        assert_eq!(
            db.get(key.as_bytes()).unwrap(),
            Some(format!("after-{i}").into_bytes()),
            "live read for {key}"
        );
    }
    db.close().unwrap();
}

#[test]
fn cloud_failures_are_retried_transparently() {
    // 10% of cloud requests fail transiently; the router's retry layer
    // must hide every one of them.
    let config = TieredConfig {
        cloud: storage::CloudConfig {
            latency: storage::LatencyModel::zero(),
            failure_prob: 0.10,
            ..storage::CloudConfig::instant()
        },
        ..small_base()
    };
    let db = Scheme::RocksMash.open(Arc::new(MemEnv::new()), config).unwrap();
    for i in 0..1_500 {
        db.put(format!("f{i:05}").as_bytes(), &[b'x'; 128]).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    assert!(
        db.cloud().failure_policy().injected_count() > 0,
        "faults must actually have been injected"
    );
    for i in (0..1_500).step_by(13) {
        assert!(db.get(format!("f{i:05}").as_bytes()).unwrap().is_some(), "key {i}");
    }
    db.close().unwrap();
}

#[test]
fn recorded_trace_replays_identically_across_schemes() {
    // Record one YCSB-B stream to a trace file, then drive two different
    // schemes with the identical trace; the visible data must agree.
    let trace_path =
        std::env::temp_dir().join(format!("rocksmash-trace-e2e-{}.bin", std::process::id()));
    let spec = workloads::WorkloadSpec::b(300, 64);
    let ops: Vec<workloads::Op> = spec.load_ops().chain(spec.run_ops(1_500, 9)).collect();
    workloads::trace::record(&trace_path, ops).unwrap();

    let mut finals: Vec<Vec<(Vec<u8>, Vec<u8>)>> = Vec::new();
    for scheme in [Scheme::RocksMash, Scheme::LocalOnly] {
        let db = scheme.open(Arc::new(MemEnv::new()), small_base()).unwrap();
        let replayed = workloads::trace::replay(&trace_path).unwrap();
        workloads::run_ops(&db, replayed).unwrap();
        db.flush().unwrap();
        let mut it = db.iter().unwrap();
        it.seek_to_first().unwrap();
        finals.push(it.collect_forward(usize::MAX).unwrap());
        db.close().unwrap();
    }
    assert_eq!(finals[0], finals[1], "schemes diverged on an identical trace");
    assert!(!finals[0].is_empty());
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn multi_get_spans_tiers() {
    let db = Scheme::RocksMash.open(Arc::new(MemEnv::new()), small_base()).unwrap();
    for i in 0..600usize {
        db.put(format!("mgt{i:05}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    let keys: Vec<Vec<u8>> =
        (0..600).step_by(60).map(|i| format!("mgt{i:05}").into_bytes()).collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let got = db.engine().multi_get(&refs).unwrap();
    for (j, v) in got.iter().enumerate() {
        assert_eq!(*v, Some(format!("v{}", j * 60).into_bytes()));
    }
    db.close().unwrap();
}
