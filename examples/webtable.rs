//! Webtable: a read-mostly, zipfian web-serving workload — the scenario
//! the paper's introduction motivates (web-scale applications whose
//! databases need cloud-level capacity at local-level read latency).
//!
//! Loads a URL→document table, serves a skewed read mix through RocksMash
//! and through the naive hybrid baseline, and prints the latency/cost
//! comparison.
//!
//! ```sh
//! cargo run --release -p rocksmash-examples --bin webtable
//! ```

use std::sync::Arc;

use rocksmash::{Scheme, TieredConfig};
use storage::{Env, LocalEnv};
use workloads::microbench::readrandom;
use workloads::{run_ops, KeyDistribution, WorkloadSpec};

const RECORDS: u64 = 15_000;
const VALUE: usize = 512; // rendered document fragment
const OPS: u64 = 3_000;

fn serve(scheme: Scheme) -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!(
        "rocksmash-webtable-{}-{}",
        scheme.name(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let env: Arc<dyn Env> = Arc::new(LocalEnv::new(&dir)?);
    // Shrink engine buffers so this demo dataset develops deep (cloud)
    // levels; a production store would keep the defaults.
    let mut base = TieredConfig::rocksmash();
    base.options.write_buffer_size = 256 << 10;
    base.options.target_file_size = 128 << 10;
    base.options.max_bytes_for_level_base = 1 << 20;
    base.options.block_cache_bytes = 512 << 10;
    base.cache_bytes = 2 << 20;
    let db = scheme.open(env, base)?;

    // Crawl phase: ingest documents.
    let spec = WorkloadSpec::b(RECORDS, VALUE);
    run_ops(&db, spec.load_ops())?;
    db.flush()?;
    db.wait_for_compactions()?;

    // Serving phase: YCSB-B style — zipfian reads with a 5% re-render
    // (update) trickle, which keeps the hot pages in the upper (local)
    // levels exactly as a live site does. Two warm passes, then measure.
    let dist = KeyDistribution::zipfian_default();
    run_ops(&db, spec.run_ops(OPS, 1))?;
    run_ops(&db, readrandom(RECORDS, OPS, dist, 2))?;
    let result = run_ops(&db, spec.run_ops(OPS, 3))?;

    let report = db.report()?;
    let latency = result.overall_latency();
    println!("--- {} ---", scheme.name());
    println!(
        "  throughput {:.1} kops/s | p50 {:.0}us p99 {:.0}us",
        result.throughput() / 1000.0,
        latency.percentile_ns(50.0) as f64 / 1000.0,
        latency.percentile_ns(99.0) as f64 / 1000.0,
    );
    println!(
        "  tiers: {:.1} MiB local / {:.1} MiB cloud | est ${:.4}/month",
        report.local_bytes as f64 / (1 << 20) as f64,
        report.cloud_bytes as f64 / (1 << 20) as f64,
        report.cost.monthly_total(),
    );
    if let Some(cache) = report.cache {
        println!("  persistent cache hit ratio {:.1}%", cache.hit_ratio() * 100.0);
    }
    db.close()?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("webtable serving comparison ({RECORDS} docs, {OPS} zipfian reads)\n");
    serve(Scheme::RocksMash)?;
    serve(Scheme::NaiveHybrid)?;
    serve(Scheme::CloudOnly)?;
    Ok(())
}
