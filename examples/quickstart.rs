//! Quickstart: open a RocksMash store, write, read, scan, snapshot, and
//! inspect where the bytes live.
//!
//! ```sh
//! cargo run --release -p rocksmash-examples --bin quickstart
//! ```

use std::sync::Arc;

use rocksmash::{TieredConfig, TieredDb};
use storage::{Env, LocalEnv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("rocksmash-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The local tier is a directory; the cloud tier is simulated with
    // S3-like latency and pricing (see storage::CloudConfig to customize).
    // Engine buffers are shrunk so this small demo dataset still develops
    // the deep (cloud-resident) levels a production store would.
    let env: Arc<dyn Env> = Arc::new(LocalEnv::new(&dir)?);
    let mut config = TieredConfig::rocksmash();
    config.options.write_buffer_size = 64 << 10;
    config.options.target_file_size = 64 << 10;
    config.options.max_bytes_for_level_base = 128 << 10;
    let db = TieredDb::open(env, config)?;

    // Point writes and reads.
    db.put(b"user:alice", b"{\"plan\":\"pro\"}")?;
    db.put(b"user:bob", b"{\"plan\":\"free\"}")?;
    println!("alice -> {:?}", String::from_utf8_lossy(&db.get(b"user:alice")?.unwrap()));

    // Atomic batches.
    let mut batch = lsm::WriteBatch::new();
    batch.put(b"user:carol", b"{\"plan\":\"pro\"}");
    batch.delete(b"user:bob");
    db.write(batch)?;
    assert!(db.get(b"user:bob")?.is_none());

    // Snapshots give repeatable reads.
    let snap = db.snapshot();
    db.put(b"user:alice", b"{\"plan\":\"enterprise\"}")?;
    println!("alice now   -> {}", String::from_utf8_lossy(&db.get(b"user:alice")?.unwrap()));
    println!(
        "alice @snap -> {}",
        String::from_utf8_lossy(&db.get_at(b"user:alice", &snap)?.unwrap())
    );

    // Bulk-load enough data that compaction pushes cold bytes to the
    // cloud tier, then scan a range.
    for i in 0..20_000u64 {
        db.put(format!("event:{i:08}").as_bytes(), format!("payload-{i}").as_bytes())?;
    }
    db.flush()?;
    db.wait_for_compactions()?;

    let rows = db.scan(b"event:00000100", 5)?;
    println!("scan from event:00000100:");
    for (k, v) in rows {
        println!("  {} = {}", String::from_utf8_lossy(&k), String::from_utf8_lossy(&v));
    }

    // Where did the bytes go, and what would a month cost?
    let report = db.report()?;
    println!(
        "local tier: {:.1} MiB ({:.0}% of data), cloud tier: {:.1} MiB",
        report.local_bytes as f64 / (1 << 20) as f64,
        report.local_fraction() * 100.0,
        report.cloud_bytes as f64 / (1 << 20) as f64,
    );
    println!(
        "monthly cost estimate: ${:.4} (capacity ${:.4}, requests+egress ${:.4})",
        report.cost.monthly_total(),
        report.cost.cloud_capacity_cost + report.cost.local_capacity_cost,
        report.cost.request_cost + report.cost.egress_cost,
    );
    if let Some(cache) = report.cache {
        println!(
            "persistent cache: {:.1}% hit ratio, {} KiB metadata",
            cache.hit_ratio() * 100.0,
            report.cache_metadata_bytes / 1024
        );
    }

    db.close()?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
