//! IoT ingest + crash recovery: a write-heavy time-series workload that
//! exercises the extended WAL.
//!
//! Simulates devices appending readings, "crashes" the process state
//! mid-ingest (drops the store without flushing), then reopens and shows
//! the eWAL's parallel recovery restoring the unflushed tail.
//!
//! ```sh
//! cargo run --release -p rocksmash-examples --bin iot_ingest
//! ```

use std::sync::Arc;
use std::time::Instant;

use rocksmash::{TieredConfig, TieredDb};
use storage::{Env, LocalEnv};

const DEVICES: u64 = 64;
const READINGS_PER_DEVICE: u64 = 400;

fn reading_key(device: u64, t: u64) -> Vec<u8> {
    format!("dev{device:04}/t{t:010}").into_bytes()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("rocksmash-iot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let env: Arc<dyn Env> = Arc::new(LocalEnv::new(&dir)?);

    let mut config = TieredConfig::rocksmash();
    config.ewal_partitions = 4;

    // Phase 1: ingest until a simulated crash.
    {
        let db = TieredDb::open(Arc::clone(&env), config.clone())?;
        let t0 = Instant::now();
        for t in 0..READINGS_PER_DEVICE {
            for device in 0..DEVICES {
                db.put(
                    &reading_key(device, t),
                    format!("{{\"temp\":{:.2},\"seq\":{t}}}", 20.0 + (t % 17) as f64 / 3.0)
                        .as_bytes(),
                )?;
            }
            if t == READINGS_PER_DEVICE / 2 {
                // Half the data is made table-durable...
                db.flush()?;
            }
        }
        let total = DEVICES * READINGS_PER_DEVICE;
        println!(
            "ingested {} readings at {:.1} kops/s, then CRASH (no flush, no close)",
            total,
            total as f64 / t0.elapsed().as_secs_f64() / 1000.0
        );
        // Simulated crash: stop background work without flushing the
        // memtable. The second half of the data exists only in the eWAL.
        db.engine().close()?;
    }

    // Phase 2: reopen; the eWAL replays the unflushed tail in parallel.
    let db = TieredDb::open(Arc::clone(&env), config)?;
    let report = db.recovery_report().expect("eWAL recovery ran");
    println!(
        "recovery: {} ops from {} partition files ({} KiB) in {:.1} ms (decode {:.1} ms parallel, apply {:.1} ms)",
        report.ops(),
        report.files,
        report.bytes / 1024,
        report.total_time().as_secs_f64() * 1000.0,
        report.decode_time.as_secs_f64() * 1000.0,
        report.apply_time.as_secs_f64() * 1000.0,
    );

    // Every reading — flushed or not — must be present.
    let mut missing = 0;
    for device in 0..DEVICES {
        for t in 0..READINGS_PER_DEVICE {
            if db.get(&reading_key(device, t))?.is_none() {
                missing += 1;
            }
        }
    }
    assert_eq!(missing, 0, "recovery lost {missing} readings");
    println!("verified all {} readings survived the crash", DEVICES * READINGS_PER_DEVICE);

    // Time-range query for one device (scans are tier-transparent).
    let rows = db.scan(&reading_key(7, 100), 5)?;
    println!("device 7 from t=100:");
    for (k, v) in rows {
        println!("  {} = {}", String::from_utf8_lossy(&k), String::from_utf8_lossy(&v));
    }

    db.close()?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
