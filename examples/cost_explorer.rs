//! Cost explorer: sweep the local/cloud split level and chart the
//! cost-performance trade-off RocksMash navigates.
//!
//! For each placement policy (everything local ... everything cloud) the
//! same dataset and read mix run, and the example prints capacity split,
//! estimated monthly bill, and read throughput — the knob a deployment
//! would tune against its budget.
//!
//! ```sh
//! cargo run --release -p rocksmash-examples --bin cost_explorer
//! ```

use std::sync::Arc;

use rocksmash::{PlacementPolicy, TieredConfig, TieredDb};
use storage::{Env, LocalEnv};
use workloads::microbench::{fillrandom, readrandom};
use workloads::{run_ops, KeyDistribution};

const RECORDS: u64 = 12_000;
const VALUE: usize = 256;
const OPS: u64 = 2_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("placement sweep: cloud_from_level = 0 (all cloud) .. 7 (all local)\n");
    println!(
        "{:>6}  {:>10}  {:>10}  {:>8}  {:>12}  {:>12}",
        "split", "local MiB", "cloud MiB", "local %", "$ / month", "read kops/s"
    );
    for cloud_from_level in [0usize, 1, 2, 3, 7] {
        let dir = std::env::temp_dir()
            .join(format!("rocksmash-cost-{cloud_from_level}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let env: Arc<dyn Env> = Arc::new(LocalEnv::new(&dir)?);
        let mut config = TieredConfig {
            placement: PlacementPolicy { cloud_from_level },
            ..TieredConfig::rocksmash()
        };
        // Shrink engine buffers so this demo dataset develops deep levels.
        config.options.write_buffer_size = 128 << 10;
        config.options.target_file_size = 128 << 10;
        config.options.max_bytes_for_level_base = 256 << 10;
        config.options.level_size_multiplier = 4;
        config.options.block_cache_bytes = 256 << 10;
        config.cache_bytes = 1 << 20;
        let db = TieredDb::open(env, config)?;

        run_ops(&db, fillrandom(RECORDS, VALUE, 7))?;
        db.flush()?;
        db.wait_for_compactions()?;
        db.cloud().cost_tracker().reset();

        let dist = KeyDistribution::zipfian_default();
        run_ops(&db, readrandom(RECORDS, OPS, dist, 1))?; // warm
        let result = run_ops(&db, readrandom(RECORDS, OPS, dist, 2))?;
        let report = db.report()?;
        println!(
            "{:>6}  {:>10.1}  {:>10.1}  {:>7.1}%  {:>12.5}  {:>12.1}",
            if cloud_from_level >= 7 {
                "local".to_string()
            } else {
                format!("L{cloud_from_level}+")
            },
            report.local_bytes as f64 / (1 << 20) as f64,
            report.cloud_bytes as f64 / (1 << 20) as f64,
            report.local_fraction() * 100.0,
            report.cost.monthly_total(),
            result.throughput() / 1000.0,
        );
        db.close()?;
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("\nRocksMash's default (L2+) keeps the hot ~20% local: most of the");
    println!("throughput of all-local at close to the capacity bill of all-cloud.");
    Ok(())
}
