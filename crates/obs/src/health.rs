//! Rule-based health doctor: automated interpretation of the trailing
//! telemetry the rest of the `obs` stack already collects.
//!
//! Raw metrics answer "what is the value"; an operator at 3 a.m. needs
//! "is this bad and what do I do". The [`Doctor`] evaluates a fixed rule
//! set against trailing-window signals from a [`TimeSeries`] plus the
//! per-level amplification table, and produces a severity-ranked
//! [`HealthReport`] whose findings carry the evidence (the numbers that
//! tripped the rule) and a remediation hint. Rules fire on *windowed*
//! signals, never lifetime totals, so an old incident does not page
//! forever; absent signals (ring not yet spanning a window, counter never
//! registered) never fire — absence of evidence is not a finding.
//!
//! [`HealthMonitor`] wraps a doctor with onset tracking: a finding
//! publishes one [`EventKind::HealthFinding`] journal event when it first
//! appears and nothing while it stays active, so the journal records
//! state *changes*, not a heartbeat of the same alarm.

use std::collections::BTreeSet;

use parking_lot::Mutex;

use crate::events::EventKind;
use crate::json::{escape, fmt_f64, Json};
use crate::levels::LevelTable;
use crate::registry::Observer;
use crate::timeseries::{RateWindow, TimeSeries};

/// How bad a finding is. Ordering is by severity (`Critical` greatest).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Severity {
    /// Worth knowing, no action needed.
    Info,
    /// Degraded; investigate soon.
    Warning,
    /// Actively hurting foreground traffic or durability.
    Critical,
}

impl Severity {
    /// Stable lowercase label used in JSON and journal events.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One tripped rule with its evidence and a remediation hint.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Finding {
    /// Stable rule name (`stall_spike`, `retry_storm`, ...).
    pub rule: String,
    pub severity: Severity,
    /// One-line human statement of what is wrong.
    pub summary: String,
    /// The numbers that tripped the rule.
    pub evidence: String,
    /// What an operator should look at or change.
    pub remediation: String,
}

/// The doctor's verdict: findings ranked worst-first.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HealthReport {
    /// Tripped rules, most severe first (stable rule-name order within a
    /// severity).
    pub findings: Vec<Finding>,
    /// How many rules were evaluated (tripped or not).
    pub rules_evaluated: usize,
    /// Timestamp of the newest telemetry sample the diagnosis saw
    /// (series-relative seconds; 0.0 when the ring was empty).
    pub newest_sample_secs: f64,
}

impl HealthReport {
    /// True when no rule tripped.
    pub fn healthy(&self) -> bool {
        self.findings.is_empty()
    }

    /// The worst severity present, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Whether `rule` tripped.
    pub fn has_rule(&self, rule: &str) -> bool {
        self.findings.iter().any(|f| f.rule == rule)
    }

    /// Hand-rolled JSON document for `/health.json` and debug bundles.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{{\"healthy\":{},\"rules_evaluated\":{},\"newest_sample_secs\":{},\"findings\":[",
            self.healthy(),
            self.rules_evaluated,
            fmt_f64(self.newest_sample_secs)
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"severity\":\"{}\",\"summary\":\"{}\",\
                 \"evidence\":\"{}\",\"remediation\":\"{}\"}}",
                escape(&f.rule),
                f.severity.label(),
                escape(&f.summary),
                escape(&f.evidence),
                escape(&f.remediation),
            );
        }
        out.push_str("]}");
        out
    }

    /// Parse a document produced by [`HealthReport::to_json`].
    pub fn from_json(text: &str) -> Result<HealthReport, String> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// Decode from a parsed JSON value.
    pub fn from_json_value(v: &Json) -> Result<HealthReport, String> {
        let mut findings = Vec::new();
        for f in v.get("findings").and_then(Json::elements).ok_or("health missing findings")? {
            let s = |name: &str| {
                f.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("finding missing {name}"))
            };
            let severity = match f.get("severity").and_then(Json::as_str) {
                Some("info") => Severity::Info,
                Some("warning") => Severity::Warning,
                Some("critical") => Severity::Critical,
                other => return Err(format!("bad severity {other:?}")),
            };
            findings.push(Finding {
                rule: s("rule")?,
                severity,
                summary: s("summary")?,
                evidence: s("evidence")?,
                remediation: s("remediation")?,
            });
        }
        Ok(HealthReport {
            findings,
            rules_evaluated: v.get("rules_evaluated").and_then(Json::as_u64).unwrap_or(0) as usize,
            newest_sample_secs: v.get("newest_sample_secs").and_then(Json::as_f64).unwrap_or(0.0),
        })
    }
}

/// Tunable trip points for every rule. The defaults are deliberately
/// conservative — a healthy steady-state store must report nothing.
#[derive(Debug, Clone)]
pub struct DoctorThresholds {
    /// Stall share over the short window that warrants a warning.
    pub stall_share_warn: f64,
    /// Stall share over the short window that is critical.
    pub stall_share_critical: f64,
    /// Compaction debt below this never fires, whatever the growth.
    pub debt_floor_bytes: u64,
    /// Debt must have grown by at least this factor over the medium
    /// window (or appeared from nothing above the floor).
    pub debt_growth_factor: f64,
    /// Debt above this absolute level escalates to critical.
    pub debt_critical_bytes: u64,
    /// Long-window hit rate must be at least this for the collapse rule
    /// to have a baseline worth comparing against.
    pub cache_baseline_min: f64,
    /// Short-window hit rate this far below the long-window baseline
    /// trips the collapse rule.
    pub cache_drop: f64,
    /// Cloud retry attempts per second (short window) that indicate a
    /// storm.
    pub retry_rate_warn: f64,
    /// Any retry exhaustion over the medium window is critical.
    pub retry_exhausted_critical: u64,
    /// Cost accrual (short window) must exceed this many micro-dollars
    /// per second before the spike rule can fire.
    pub cost_rate_floor_microdollars: f64,
    /// Short-window cost rate this many times the long-window rate is a
    /// spike.
    pub cost_spike_factor: f64,
    /// Promotion + demotion file moves per second (medium window, both
    /// directions active) that indicate thrash.
    pub promotion_thrash_rate: f64,
}

impl Default for DoctorThresholds {
    fn default() -> Self {
        DoctorThresholds {
            stall_share_warn: 0.10,
            stall_share_critical: 0.40,
            debt_floor_bytes: 64 << 20,
            debt_growth_factor: 1.5,
            debt_critical_bytes: 512 << 20,
            cache_baseline_min: 0.5,
            cache_drop: 0.3,
            retry_rate_warn: 2.0,
            retry_exhausted_critical: 1,
            cost_rate_floor_microdollars: 1000.0,
            cost_spike_factor: 3.0,
            promotion_thrash_rate: 0.5,
        }
    }
}

/// The rule engine. Stateless: every [`Doctor::diagnose`] call evaluates
/// the full rule set against the telemetry it is handed.
#[derive(Debug, Clone, Default)]
pub struct Doctor {
    thresholds: DoctorThresholds,
}

/// Names of every rule, in evaluation order.
pub const ALL_RULES: [&str; 6] = [
    "stall_spike",
    "compaction_debt_growth",
    "cache_hit_collapse",
    "retry_storm",
    "cloud_cost_spike",
    "promotion_thrash",
];

impl Doctor {
    /// Doctor with the default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Doctor with custom trip points (tests, aggressive CI probes).
    pub fn with_thresholds(thresholds: DoctorThresholds) -> Self {
        Doctor { thresholds }
    }

    /// The active thresholds.
    pub fn thresholds(&self) -> &DoctorThresholds {
        &self.thresholds
    }

    /// Evaluate every rule against the trailing telemetry. `levels` is
    /// the current amplification table when the caller has one (its debt
    /// figure also arrives via the `compaction_debt_bytes` gauge history
    /// inside `series`; the table itself supplies the evidence).
    pub fn diagnose(&self, series: &TimeSeries, levels: Option<&LevelTable>) -> HealthReport {
        let t = &self.thresholds;
        let mut findings = Vec::new();
        let short = series.window_rates(RateWindow::Short);
        let medium = RateWindow::Medium.secs();
        let long = RateWindow::Long.secs();
        let mb = |b: f64| b / 1048576.0;

        // stall_spike — writers losing wall time to make_room.
        if let Some(share) = short.stall_share {
            if share >= t.stall_share_warn {
                let severity = if share >= t.stall_share_critical {
                    Severity::Critical
                } else {
                    Severity::Warning
                };
                findings.push(Finding {
                    rule: "stall_spike".into(),
                    severity,
                    summary: format!("writers spent {:.0}% of the last 10s stalled", share * 100.0),
                    evidence: format!(
                        "stall_share(10s)={share:.3}, warn at {:.2}, critical at {:.2}",
                        t.stall_share_warn, t.stall_share_critical
                    ),
                    remediation: "flush/compaction cannot keep up: check cloud PUT latency \
                                  and retries, raise max_background_jobs or \
                                  max_imm_memtables, or slow ingest"
                        .into(),
                });
            }
        }

        // compaction_debt_growth — outstanding work trending up.
        if let Some((then, now)) = series.gauge_window("compaction_debt_bytes", medium) {
            let grew = now >= then.max(1.0) * t.debt_growth_factor;
            if now >= t.debt_floor_bytes as f64 && grew {
                let severity = if now >= t.debt_critical_bytes as f64 {
                    Severity::Critical
                } else {
                    Severity::Warning
                };
                let debt_levels = levels
                    .map(|l| {
                        l.levels
                            .iter()
                            .filter(|s| s.score >= 1.0)
                            .map(|s| format!("L{}", s.level))
                            .collect::<Vec<_>>()
                            .join(",")
                    })
                    .filter(|s| !s.is_empty());
                findings.push(Finding {
                    rule: "compaction_debt_growth".into(),
                    severity,
                    summary: format!(
                        "compaction debt grew from {:.1} MB to {:.1} MB over the last minute",
                        mb(then),
                        mb(now)
                    ),
                    evidence: format!(
                        "debt {:.0}B -> {:.0}B (factor {:.2}, floor {}B){}",
                        then,
                        now,
                        if then > 0.0 { now / then } else { f64::INFINITY },
                        t.debt_floor_bytes,
                        debt_levels
                            .map(|l| format!(", over-budget levels: {l}"))
                            .unwrap_or_default()
                    ),
                    remediation: "compactions are falling behind ingest: raise \
                                  max_background_jobs/max_subcompactions, check for a slow \
                                  cloud tier on deep-level writes, or reduce write rate"
                        .into(),
                });
            }
        }

        // cache_hit_collapse — short-window hit rate fell off its baseline.
        if let (Some(now), Some(baseline)) =
            (short.cache_hit_rate, series.window_rates(RateWindow::Long).cache_hit_rate)
        {
            if baseline >= t.cache_baseline_min && now <= baseline - t.cache_drop {
                findings.push(Finding {
                    rule: "cache_hit_collapse".into(),
                    severity: Severity::Warning,
                    summary: format!(
                        "cache hit rate fell to {:.0}% (baseline {:.0}%)",
                        now * 100.0,
                        baseline * 100.0
                    ),
                    evidence: format!(
                        "hit_rate(10s)={now:.3}, hit_rate(5m)={baseline:.3}, drop \
                         threshold {:.2}",
                        t.cache_drop
                    ),
                    remediation: "a compaction wave invalidated the cache or the working set \
                                  shifted: expect elevated cloud GETs until re-warm; if \
                                  chronic, grow cache_bytes or promote the hot files"
                        .into(),
                });
            }
        }

        // retry_storm — cloud requests failing and being retried.
        let exhausted = series.delta_since("retry_exhausted", medium).map(|(d, _)| d).unwrap_or(0);
        let attempts_rate = series.rate("retry_attempts", RateWindow::Short.secs());
        if exhausted >= t.retry_exhausted_critical {
            findings.push(Finding {
                rule: "retry_storm".into(),
                severity: Severity::Critical,
                summary: format!(
                    "{exhausted} cloud request(s) exhausted retries in the last minute"
                ),
                evidence: format!(
                    "retry_exhausted delta(1m)={exhausted}, retry_attempts/s(10s)={}",
                    attempts_rate.map(|r| format!("{r:.2}")).unwrap_or_else(|| "n/a".into())
                ),
                remediation: "the cloud tier is failing requests past the retry budget: check \
                              provider availability and the failure injection config; reads \
                              of cloud-resident data are returning errors"
                    .into(),
            });
        } else if let Some(rate) = attempts_rate {
            if rate >= t.retry_rate_warn {
                findings.push(Finding {
                    rule: "retry_storm".into(),
                    severity: Severity::Warning,
                    summary: format!("cloud retries running at {rate:.1}/s over the last 10s"),
                    evidence: format!(
                        "retry_attempts/s(10s)={rate:.2}, warn at {:.2}",
                        t.retry_rate_warn
                    ),
                    remediation: "transient cloud failures are elevated: latency on \
                                  cloud-resident reads/uploads will spike; check provider \
                                  health before it escalates to exhaustion"
                        .into(),
                });
            }
        }

        // cloud_cost_spike — dollars accruing much faster than baseline.
        if let (Some(now), Some(baseline)) = (
            series.rate("cost_microdollars", RateWindow::Short.secs()),
            series.rate("cost_microdollars", long),
        ) {
            if now >= t.cost_rate_floor_microdollars && now >= baseline * t.cost_spike_factor {
                findings.push(Finding {
                    rule: "cloud_cost_spike".into(),
                    severity: Severity::Warning,
                    summary: format!(
                        "cloud spend rate is {:.1}x its 5m baseline",
                        if baseline > 0.0 { now / baseline } else { f64::INFINITY }
                    ),
                    evidence: format!(
                        "cost rate {now:.0} microdollar/s (10s) vs {baseline:.0} (5m), \
                         spike factor {:.1}",
                        t.cost_spike_factor
                    ),
                    remediation: "something started hammering billed requests or egress: \
                                  look for a cache collapse, a compaction wave rewriting \
                                  cloud levels, or an unthrottled scan"
                        .into(),
                });
            }
        }

        // promotion_thrash — files ping-ponging between tiers.
        let promo = series.rate("promotions", medium);
        let demo = series.rate("demotions", medium);
        if let (Some(p), Some(d)) = (promo, demo) {
            if p > 0.0 && d > 0.0 && p + d >= t.promotion_thrash_rate {
                findings.push(Finding {
                    rule: "promotion_thrash".into(),
                    severity: Severity::Warning,
                    summary: format!(
                        "tiers are churning: {:.2} promotions/s and {:.2} demotions/s",
                        p, d
                    ),
                    evidence: format!(
                        "promotions/s(1m)={p:.2}, demotions/s(1m)={d:.2}, thrash at \
                         combined {:.2}",
                        t.promotion_thrash_rate
                    ),
                    remediation: "the local budget is too tight or the heat half-life too \
                                  short for this working set: every round trip is a \
                                  download + upload; raise local_budget_bytes or \
                                  heat_half_life, or lower max_files_per_pass"
                        .into(),
                });
            }
        }

        findings.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.rule.cmp(&b.rule)));
        HealthReport {
            findings,
            rules_evaluated: ALL_RULES.len(),
            newest_sample_secs: series.newest_secs().unwrap_or(0.0),
        }
    }
}

/// A [`Doctor`] plus onset tracking: repeated checks publish a journal
/// event only when a rule *newly* trips.
#[derive(Debug, Default)]
pub struct HealthMonitor {
    doctor: Doctor,
    active: Mutex<BTreeSet<String>>,
}

impl HealthMonitor {
    /// Monitor around `doctor`.
    pub fn new(doctor: Doctor) -> Self {
        HealthMonitor { doctor, active: Mutex::new(BTreeSet::new()) }
    }

    /// The wrapped doctor (for on-demand `diagnose` without onset
    /// bookkeeping).
    pub fn doctor(&self) -> &Doctor {
        &self.doctor
    }

    /// Diagnose, publish an [`EventKind::HealthFinding`] for every rule
    /// that was not active on the previous check, and remember the new
    /// active set.
    pub fn check(
        &self,
        series: &TimeSeries,
        levels: Option<&LevelTable>,
        observer: &Observer,
    ) -> HealthReport {
        let report = self.doctor.diagnose(series, levels);
        let mut active = self.active.lock();
        for f in &report.findings {
            if !active.contains(&f.rule) {
                observer.event(EventKind::HealthFinding {
                    rule: f.rule.clone(),
                    severity: f.severity.label().to_string(),
                    summary: f.summary.clone(),
                });
            }
        }
        *active = report.findings.iter().map(|f| f.rule.clone()).collect();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsSnapshot;

    fn snap(counters: &[(&str, u64)], gauges: &[(&str, f64)]) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        for &(k, v) in counters {
            s.counters.insert(k.to_string(), v);
        }
        for &(k, v) in gauges {
            s.gauges.insert(k.to_string(), v);
        }
        s
    }

    fn quiet_series() -> TimeSeries {
        let ts = TimeSeries::new(16);
        ts.push_at(0.0, &snap(&[("engine_gets", 0), ("stall_ns", 0)], &[]));
        ts.push_at(5.0, &snap(&[("engine_gets", 100), ("stall_ns", 0)], &[]));
        ts
    }

    #[test]
    fn healthy_series_reports_nothing() {
        let report = Doctor::new().diagnose(&quiet_series(), None);
        assert!(report.healthy(), "unexpected findings: {:?}", report.findings);
        assert_eq!(report.rules_evaluated, ALL_RULES.len());
    }

    #[test]
    fn empty_series_reports_nothing() {
        let report = Doctor::new().diagnose(&TimeSeries::new(4), None);
        assert!(report.healthy());
        assert_eq!(report.newest_sample_secs, 0.0);
    }

    #[test]
    fn stall_spike_warns_then_escalates() {
        let ts = TimeSeries::new(16);
        ts.push_at(0.0, &snap(&[("stall_ns", 0)], &[]));
        // 2s of stall over 10s of wall time: 20% share.
        ts.push_at(10.0, &snap(&[("stall_ns", 2_000_000_000)], &[]));
        let report = Doctor::new().diagnose(&ts, None);
        assert!(report.has_rule("stall_spike"));
        assert_eq!(report.worst(), Some(Severity::Warning));
        // 6s of stall over the next 10s: critical.
        ts.push_at(20.0, &snap(&[("stall_ns", 8_000_000_000)], &[]));
        let report = Doctor::new().diagnose(&ts, None);
        assert_eq!(report.worst(), Some(Severity::Critical));
    }

    #[test]
    fn debt_growth_needs_floor_and_factor() {
        let doctor = Doctor::new();
        let grow = |from: f64, to: f64| {
            let ts = TimeSeries::new(16);
            ts.push_at(0.0, &snap(&[], &[("compaction_debt_bytes", from)]));
            ts.push_at(30.0, &snap(&[], &[("compaction_debt_bytes", to)]));
            doctor.diagnose(&ts, None)
        };
        // Small debt: quiet even when growing fast.
        assert!(grow(1048576.0, 8388608.0).healthy());
        // Large but flat debt: quiet.
        assert!(grow(100_000_000.0, 110_000_000.0).healthy());
        // Large and doubling: fires.
        let report = grow(100_000_000.0, 200_000_000.0);
        assert!(report.has_rule("compaction_debt_growth"));
        // Past the critical line: escalates.
        let report = grow(300_000_000.0, 600_000_000.0);
        assert_eq!(report.worst(), Some(Severity::Critical));
    }

    #[test]
    fn cache_collapse_needs_a_baseline() {
        let doctor = Doctor::new();
        let ts = TimeSeries::new(64);
        // 5 minutes of 90% hits...
        for i in 0..30u64 {
            let t = i as f64 * 10.0;
            ts.push_at(t, &snap(&[("cache_hits", i * 90), ("cache_misses", i * 10)], &[]));
        }
        assert!(doctor.diagnose(&ts, None).healthy());
        // ...then the last 10s misses everything.
        ts.push_at(300.0, &snap(&[("cache_hits", 30 * 90), ("cache_misses", 30 * 10 + 100)], &[]));
        let report = doctor.diagnose(&ts, None);
        assert!(report.has_rule("cache_hit_collapse"), "findings: {:?}", report.findings);
    }

    #[test]
    fn retry_storm_warns_on_rate_and_escalates_on_exhaustion() {
        let ts = TimeSeries::new(16);
        ts.push_at(0.0, &snap(&[("retry_attempts", 0), ("retry_exhausted", 0)], &[]));
        ts.push_at(10.0, &snap(&[("retry_attempts", 50), ("retry_exhausted", 0)], &[]));
        let report = Doctor::new().diagnose(&ts, None);
        assert!(report.has_rule("retry_storm"));
        assert_eq!(report.worst(), Some(Severity::Warning));
        ts.push_at(20.0, &snap(&[("retry_attempts", 60), ("retry_exhausted", 2)], &[]));
        let report = Doctor::new().diagnose(&ts, None);
        assert_eq!(report.worst(), Some(Severity::Critical));
    }

    #[test]
    fn cost_spike_compares_short_against_long() {
        let ts = TimeSeries::new(64);
        // Flat accrual for 5 minutes, then 10x in the last 10 seconds.
        for i in 0..30u64 {
            ts.push_at(i as f64 * 10.0, &snap(&[("cost_microdollars", i * 1000)], &[]));
        }
        assert!(Doctor::new().diagnose(&ts, None).healthy());
        ts.push_at(300.0, &snap(&[("cost_microdollars", 30 * 1000 + 100_000)], &[]));
        let report = Doctor::new().diagnose(&ts, None);
        assert!(report.has_rule("cloud_cost_spike"), "findings: {:?}", report.findings);
    }

    #[test]
    fn promotion_thrash_requires_both_directions() {
        let one_way = TimeSeries::new(16);
        one_way.push_at(0.0, &snap(&[("promotions", 0), ("demotions", 0)], &[]));
        one_way.push_at(30.0, &snap(&[("promotions", 60), ("demotions", 0)], &[]));
        assert!(Doctor::new().diagnose(&one_way, None).healthy());
        let churn = TimeSeries::new(16);
        churn.push_at(0.0, &snap(&[("promotions", 0), ("demotions", 0)], &[]));
        churn.push_at(30.0, &snap(&[("promotions", 30), ("demotions", 30)], &[]));
        let report = Doctor::new().diagnose(&churn, None);
        assert!(report.has_rule("promotion_thrash"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let ts = TimeSeries::new(16);
        ts.push_at(0.0, &snap(&[("stall_ns", 0)], &[]));
        ts.push_at(10.0, &snap(&[("stall_ns", 9_000_000_000)], &[]));
        let report = Doctor::new().diagnose(&ts, None);
        assert!(!report.healthy());
        let back = HealthReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(back, report);
        assert!(report.to_json().contains("\"healthy\":false"));
    }

    #[test]
    fn monitor_publishes_only_on_onset() {
        let observer = Observer::new();
        let monitor = HealthMonitor::new(Doctor::new());
        let ts = TimeSeries::new(16);
        ts.push_at(0.0, &snap(&[("stall_ns", 0)], &[]));
        ts.push_at(10.0, &snap(&[("stall_ns", 9_000_000_000)], &[]));
        let r1 = monitor.check(&ts, None, &observer);
        assert!(r1.has_rule("stall_spike"));
        let r2 = monitor.check(&ts, None, &observer);
        assert!(r2.has_rule("stall_spike"));
        let health_events = observer
            .journal()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::HealthFinding { .. }))
            .count();
        assert_eq!(health_events, 1, "still-active finding republished");
        // Recovery clears the active set; a relapse publishes again.
        ts.push_at(20.0, &snap(&[("stall_ns", 9_000_000_000)], &[]));
        assert!(monitor.check(&ts, None, &observer).healthy());
        ts.push_at(30.0, &snap(&[("stall_ns", 18_000_000_000)], &[]));
        assert!(!monitor.check(&ts, None, &observer).healthy());
        let health_events = observer
            .journal()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::HealthFinding { .. }))
            .count();
        assert_eq!(health_events, 2);
    }
}
