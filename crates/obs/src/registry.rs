//! Observer, metrics registry, and export surfaces.
//!
//! The [`Observer`] is the engine-facing handle: one per database, shared
//! as an `Arc` by every crate in the stack. Hot paths ask it for a timer
//! ([`Observer::start`], a no-op returning `None` when disabled), stop it
//! with [`Observer::finish`], and publish journal events with
//! [`Observer::event`]. The [`MetricsRegistry`] folds the observer's
//! histograms together with caller-supplied counters and gauges into a
//! [`MetricsSnapshot`] that renders three ways: a RocksDB-style human
//! string, JSON, and Prometheus text exposition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::events::{Event, EventJournal, EventKind};
use crate::heat::{HeatMap, HeatSnapshot, ResidencyTier};
use crate::hist::LatencyHistogram;
use crate::json::{escape, fmt_f64, Json};
use crate::levels::LevelTable;
use crate::perf::{self, PerfContext, SpanIds};

/// Instrumented operations, one histogram each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Op {
    /// Point lookup (`Db::get`).
    Get,
    /// Batch/point write (`Db::write`).
    Write,
    /// Whole `multi_get` batch (all keys, one sample).
    MultiGet,
    /// One iterator `next()` step.
    IterNext,
    /// Memtable flush to a level-0 table.
    Flush,
    /// One compaction job.
    Compaction,
    /// A billed cloud GET (single object or range).
    CloudGet,
    /// A coalesced ranged cloud GET covering several block reads.
    CloudCoalescedGet,
    /// A cloud PUT.
    CloudPut,
    /// Persistent-cache hit (read served from the cache file).
    CacheHit,
    /// Persistent-cache miss fill (cloud fetch + cache insert).
    CacheFill,
    /// eWAL record append (buffered).
    EwalAppend,
    /// eWAL fsync.
    EwalSync,
}

/// Every operation, in display order.
pub const ALL_OPS: [Op; 13] = [
    Op::Get,
    Op::Write,
    Op::MultiGet,
    Op::IterNext,
    Op::Flush,
    Op::Compaction,
    Op::CloudGet,
    Op::CloudCoalescedGet,
    Op::CloudPut,
    Op::CacheHit,
    Op::CacheFill,
    Op::EwalAppend,
    Op::EwalSync,
];

impl Op {
    /// Stable snake_case name used in JSON keys and Prometheus labels.
    pub fn name(self) -> &'static str {
        match self {
            Op::Get => "get",
            Op::Write => "write",
            Op::MultiGet => "multi_get",
            Op::IterNext => "iter_next",
            Op::Flush => "flush",
            Op::Compaction => "compaction",
            Op::CloudGet => "cloud_get",
            Op::CloudCoalescedGet => "cloud_coalesced_get",
            Op::CloudPut => "cloud_put",
            Op::CacheHit => "cache_hit",
            Op::CacheFill => "cache_fill",
            Op::EwalAppend => "ewal_append",
            Op::EwalSync => "ewal_sync",
        }
    }

    fn index(self) -> usize {
        ALL_OPS.iter().position(|&o| o == self).expect("op listed in ALL_OPS")
    }
}

/// Default threshold above which a foreground op logs a `SlowOp` event.
pub const DEFAULT_SLOW_OP: Duration = Duration::from_millis(100);

/// Default threshold above which a *background* op (flush, compaction)
/// logs a `SlowOp` event. Background work is expected to take long, so
/// this sits well above the foreground threshold: only multi-second
/// stalls are journal-worthy.
pub const DEFAULT_SLOW_BACKGROUND: Duration = Duration::from_secs(2);

/// Engine-wide observability handle: per-op latency histograms plus the
/// event journal. Cheap to share (`Arc<Observer>`) and safe to call from
/// any thread.
pub struct Observer {
    enabled: bool,
    hists: [LatencyHistogram; ALL_OPS.len()],
    journal: EventJournal,
    slow_op_ns: u64,
    slow_background_ns: u64,
    /// Capture a perf context for every Nth op that asks via
    /// [`Observer::perf_guard`] without requesting one (0 disables
    /// sampling).
    perf_sample_every: u64,
    perf_sample_counter: AtomicU64,
    /// Process-lifetime sum of every captured context, for stage-share
    /// aggregation in metrics exports.
    perf_totals: Mutex<PerfContext>,
    perf_ops: AtomicU64,
    /// Decayed per-SST access heat + per-tier residency accounting.
    /// Always allocated (bounded, ~tens of KB) so the handle is
    /// unconditional; recording is gated on `enabled`, one branch.
    heat: HeatMap,
    /// Bloom filters present on disk that failed to decode. Counted even
    /// when the observer is disabled: this is a corruption signal, not a
    /// latency sample, and losing it would recreate the silent-swallow bug
    /// it exists to surface. Only the journal event is gated on `enabled`.
    filter_decode_failures: AtomicU64,
}

impl Observer {
    /// Enabled observer with the default journal capacity and slow-op
    /// threshold.
    pub fn new() -> Self {
        Observer {
            enabled: true,
            hists: std::array::from_fn(|_| LatencyHistogram::new()),
            journal: EventJournal::new(),
            slow_op_ns: DEFAULT_SLOW_OP.as_nanos() as u64,
            slow_background_ns: DEFAULT_SLOW_BACKGROUND.as_nanos() as u64,
            perf_sample_every: 0,
            perf_sample_counter: AtomicU64::new(0),
            perf_totals: Mutex::new(PerfContext::default()),
            perf_ops: AtomicU64::new(0),
            heat: HeatMap::default(),
            filter_decode_failures: AtomicU64::new(0),
        }
    }

    /// Disabled observer: `start()` returns `None`, `record`/`event` are
    /// no-ops. Lets callers keep unconditional `Arc<Observer>` plumbing
    /// while paying only a branch on the hot path.
    pub fn disabled() -> Self {
        Observer { enabled: false, ..Observer::new() }
    }

    /// Set the slow-op threshold; foreground ops slower than this publish
    /// a [`EventKind::SlowOp`] journal event.
    pub fn with_slow_op_threshold(mut self, threshold: Duration) -> Self {
        self.slow_op_ns = threshold.as_nanos().min(u64::MAX as u128) as u64;
        self
    }

    /// Set the background slow-op threshold; flushes and compactions
    /// slower than this publish a [`EventKind::SlowOp`] journal event.
    pub fn with_slow_background_threshold(mut self, threshold: Duration) -> Self {
        self.slow_background_ns = threshold.as_nanos().min(u64::MAX as u128) as u64;
        self
    }

    /// Capture a perf context for every `every`-th operation that reaches
    /// [`Observer::perf_guard`] without explicitly requesting one. 0 (the
    /// default) disables sampling.
    pub fn with_perf_sampling(mut self, every: u64) -> Self {
        self.perf_sample_every = every;
        self
    }

    /// Whether this observer records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Begin timing an operation. Returns `None` when disabled so the
    /// disabled path costs a single branch and no clock read.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finish a timer from [`Observer::start`], recording the elapsed
    /// time under `op`. Accepts `None` so call sites stay branch-free.
    #[inline]
    pub fn finish(&self, op: Op, started: Option<Instant>) {
        if let Some(t0) = started {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.hists[op.index()].record(ns);
            let threshold =
                if is_foreground(op) { self.slow_op_ns } else { self.slow_background_ns };
            if ns >= threshold {
                self.journal.publish(EventKind::SlowOp {
                    op: op.name().to_string(),
                    dur_ns: ns,
                    trace_id: perf::current_span().map(|s| s.trace_id).unwrap_or(0),
                    breakdown: perf::snapshot().map(Box::new),
                });
            }
        }
    }

    /// Record a pre-measured duration under `op`.
    pub fn record(&self, op: Op, d: Duration) {
        if self.enabled {
            self.hists[op.index()].record_duration(d);
        }
    }

    /// Publish an event to the journal.
    pub fn event(&self, kind: EventKind) {
        if self.enabled {
            self.journal.publish(kind);
        }
    }

    /// The heat/residency tracker (always present; empty when disabled).
    pub fn heat(&self) -> &HeatMap {
        &self.heat
    }

    /// Record a bloom filter that was present on disk but failed to
    /// decode for table `file`: bump the corruption counter (always, even
    /// disabled — see the field doc) and journal a
    /// [`EventKind::Corruption`] event.
    pub fn record_filter_decode_failure(&self, file: u64) {
        self.filter_decode_failures.fetch_add(1, Ordering::Relaxed);
        self.event(EventKind::Corruption {
            context: "bloom-filter".to_string(),
            detail: format!("table {file}: filter block present but failed to decode"),
        });
    }

    /// Total bloom filter decode failures observed since creation.
    pub fn filter_decode_failures(&self) -> u64 {
        self.filter_decode_failures.load(Ordering::Relaxed)
    }

    /// Record one logical block read of `bytes` against table `file`
    /// (bumps the decayed heat score). One branch when disabled.
    #[inline]
    pub fn record_table_access(&self, file: u64, bytes: u64) {
        if self.enabled {
            self.heat.record_access(file, bytes);
        }
    }

    /// Attribute a billed cloud GET of `bytes` to table `file`.
    #[inline]
    pub fn record_cloud_get_for(&self, file: u64, bytes: u64) {
        if self.enabled {
            self.heat.record_cloud_get(file, bytes);
        }
    }

    /// Attribute a persistent-cache hit to table `file`.
    #[inline]
    pub fn record_cache_hit_for(&self, file: u64) {
        if self.enabled {
            self.heat.record_cache_hit(file);
        }
    }

    /// Record one lookup of `key` into the coarse key-range heat buckets.
    #[inline]
    pub fn record_key_heat(&self, key: &[u8]) {
        if self.enabled {
            self.heat.record_range(key);
        }
    }

    /// Record that table `file` of `bytes` now lives on `tier`.
    pub fn set_residency(&self, file: u64, bytes: u64, tier: ResidencyTier) {
        if self.enabled {
            self.heat.residency().set_tier(file, bytes, tier);
        }
    }

    /// Drop heat and residency state for deleted tables.
    pub fn forget_tables(&self, files: &[u64]) {
        if self.enabled {
            self.heat.forget_files(files);
        }
    }

    /// Publish an event with an explicit journal-relative timestamp.
    pub fn event_at(&self, ts_ns: u64, kind: EventKind) {
        if self.enabled {
            self.journal.publish_at(ts_ns, kind);
        }
    }

    /// Journal-relative clock, for stamping start times of timed phases.
    pub fn now_ns(&self) -> u64 {
        self.journal.now_ns()
    }

    /// The event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// The histogram for `op`.
    pub fn histogram(&self, op: Op) -> &LatencyHistogram {
        &self.hists[op.index()]
    }

    /// Snapshot all per-op latency stats (empty ops omitted).
    pub fn latency_stats(&self) -> BTreeMap<String, OpStats> {
        let mut out = BTreeMap::new();
        for op in ALL_OPS {
            let snap = self.hists[op.index()].snapshot();
            if snap.count() > 0 {
                out.insert(op.name().to_string(), OpStats::from_snapshot(&snap));
            }
        }
        out
    }

    /// Begin per-op perf capture on this thread, either because the
    /// caller `requested` it (a `ReadOptions` flag) or because the
    /// sampling rate selects this op. Returns `None` — one branch — when
    /// capture stays off or is already active (the outer scope owns it).
    /// Dropping the guard folds the captured context into this observer's
    /// totals.
    #[inline]
    pub fn perf_guard(&self, requested: bool) -> Option<PerfGuard<'_>> {
        if !requested && !self.perf_sample_hit() {
            return None;
        }
        if !perf::begin() {
            return None;
        }
        Some(PerfGuard { obs: self })
    }

    #[inline]
    fn perf_sample_hit(&self) -> bool {
        let every = self.perf_sample_every;
        every != 0
            && self.enabled
            && self.perf_sample_counter.fetch_add(1, Ordering::Relaxed) % every == every - 1
    }

    /// Fold a finished capture into the process-lifetime totals.
    pub fn absorb_perf(&self, ctx: &PerfContext) {
        if ctx.is_empty() {
            return;
        }
        self.perf_totals.lock().add(ctx);
        self.perf_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Sum of every perf context captured so far.
    pub fn perf_totals(&self) -> PerfContext {
        self.perf_totals.lock().clone()
    }

    /// Number of captured (non-empty) perf contexts folded into the
    /// totals.
    pub fn perf_ops(&self) -> u64 {
        self.perf_ops.load(Ordering::Relaxed)
    }

    /// Open a trace span named `name`: a child of this thread's current
    /// span, or the root of a fresh trace when there is none. Publishes
    /// `SpanStart` now and `SpanEnd` when the guard drops; between the
    /// two, work on this thread sees the span via `perf::current_span`.
    /// Returns `None` (no events, no TLS write) when disabled.
    pub fn span(&self, name: &'static str) -> Option<SpanGuard<'_>> {
        if !self.enabled {
            return None;
        }
        let parent = perf::current_span();
        let span_id = perf::next_id();
        let trace_id = parent.map(|p| p.trace_id).unwrap_or(span_id);
        let parent_span_id = parent.map(|p| p.span_id).unwrap_or(0);
        self.journal.publish(EventKind::SpanStart {
            trace_id,
            span_id,
            parent_span_id,
            name: name.to_string(),
        });
        let prev = perf::swap_current_span(Some(SpanIds { trace_id, span_id }));
        Some(SpanGuard {
            obs: self,
            ids: SpanIds { trace_id, span_id },
            name,
            start: Instant::now(),
            prev,
        })
    }

    /// Open a span only when this thread is already inside a trace —
    /// instrumentation points (cloud GET/PUT, cache fill, SST upload)
    /// use this so they attach to whichever op triggered them without
    /// flooding the journal with orphan spans.
    pub fn child_span(&self, name: &'static str) -> Option<SpanGuard<'_>> {
        perf::current_span()?;
        self.span(name)
    }

    /// Open a span only when a perf context is being captured on this
    /// thread — foreground ops use this so traced calls get a root span
    /// while untraced hot-path calls pay one branch.
    pub fn span_if_perf(&self, name: &'static str) -> Option<SpanGuard<'_>> {
        if !perf::enabled() {
            return None;
        }
        self.span(name)
    }
}

/// Scope guard for one perf capture (see [`Observer::perf_guard`]).
#[must_use = "capture ends when the guard drops"]
pub struct PerfGuard<'a> {
    obs: &'a Observer,
}

impl Drop for PerfGuard<'_> {
    fn drop(&mut self) {
        self.obs.absorb_perf(&perf::end());
    }
}

impl std::fmt::Debug for PerfGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerfGuard").finish()
    }
}

/// Scope guard for one trace span (see [`Observer::span`]).
#[must_use = "the span closes when the guard drops"]
pub struct SpanGuard<'a> {
    obs: &'a Observer,
    ids: SpanIds,
    name: &'static str,
    start: Instant,
    prev: Option<SpanIds>,
}

impl SpanGuard<'_> {
    /// This span's trace/span ids.
    pub fn ids(&self) -> SpanIds {
        self.ids
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        perf::swap_current_span(self.prev);
        self.obs.journal.publish(EventKind::SpanEnd {
            trace_id: self.ids.trace_id,
            span_id: self.ids.span_id,
            name: self.name.to_string(),
            dur_ns: self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        });
    }
}

impl std::fmt::Debug for SpanGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard").field("ids", &self.ids).field("name", &self.name).finish()
    }
}

impl Default for Observer {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("enabled", &self.enabled)
            .field("slow_op_ns", &self.slow_op_ns)
            .field("journal", &self.journal)
            .finish()
    }
}

/// Which threshold an op's SlowOp check uses: flushes and compactions
/// are *expected* to take long, so they answer to the much higher
/// background threshold instead of the foreground one.
fn is_foreground(op: Op) -> bool {
    !matches!(op, Op::Flush | Op::Compaction)
}

/// Summary statistics for one operation's latency distribution.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OpStats {
    pub count: u64,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

impl OpStats {
    fn from_snapshot(snap: &crate::hist::HistogramSnapshot) -> OpStats {
        OpStats {
            count: snap.count(),
            mean_ns: snap.mean_ns(),
            p50_ns: snap.percentile_ns(50.0),
            p95_ns: snap.percentile_ns(95.0),
            p99_ns: snap.percentile_ns(99.0),
            max_ns: snap.max_ns(),
        }
    }

    fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            self.count,
            fmt_f64(self.mean_ns),
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.max_ns,
        ));
    }

    fn from_json(v: &Json) -> Result<OpStats, String> {
        let u64_field = |name: &str| {
            v.get(name).and_then(Json::as_u64).ok_or_else(|| format!("op stats missing {name}"))
        };
        Ok(OpStats {
            count: u64_field("count")?,
            mean_ns: v.get("mean_ns").and_then(Json::as_f64).ok_or("op stats missing mean_ns")?,
            p50_ns: u64_field("p50_ns")?,
            p95_ns: u64_field("p95_ns")?,
            p99_ns: u64_field("p99_ns")?,
            max_ns: u64_field("max_ns")?,
        })
    }
}

/// Aggregates an [`Observer`] with caller-supplied counters and gauges
/// into one exportable snapshot.
///
/// Counters are monotonically increasing totals (`_total` in Prometheus);
/// gauges are point-in-time values (byte footprints, costs, ratios).
pub struct MetricsRegistry {
    observer: Arc<Observer>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    heat: Option<HeatSnapshot>,
    levels: Option<LevelTable>,
}

impl MetricsRegistry {
    /// Registry over `observer` with no counters or gauges yet.
    pub fn new(observer: Arc<Observer>) -> Self {
        MetricsRegistry {
            observer,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            heat: None,
            levels: None,
        }
    }

    /// Attach a heat/residency snapshot; it rides along into every
    /// export surface of the built [`MetricsSnapshot`].
    pub fn attach_heat(&mut self, heat: HeatSnapshot) -> &mut Self {
        self.heat = Some(heat);
        self
    }

    /// Attach a per-level amplification table; like heat, it rides into
    /// every export surface.
    pub fn attach_levels(&mut self, levels: LevelTable) -> &mut Self {
        self.levels = Some(levels);
        self
    }

    /// Set a monotonically increasing counter (snake_case name).
    pub fn counter(&mut self, name: &str, value: u64) -> &mut Self {
        self.counters.insert(name.to_string(), value);
        self
    }

    /// Set a point-in-time gauge (snake_case name).
    pub fn gauge(&mut self, name: &str, value: f64) -> &mut Self {
        self.gauges.insert(name.to_string(), value);
        self
    }

    /// Build the snapshot: observer latency stats + journal events +
    /// registered counters and gauges. Captured perf-context totals fold
    /// in as `perf_*` counters plus per-stage share gauges
    /// (`perf_share_*`, each stage's fraction of total attributed time),
    /// so `stats --json` and Prometheus exports carry the breakdown.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = self.counters.clone();
        let mut gauges = self.gauges.clone();
        let totals = self.observer.perf_totals();
        if !totals.is_empty() {
            counters.insert("perf_sampled_ops".to_string(), self.observer.perf_ops());
            for (name, v) in totals.fields() {
                counters.insert(format!("perf_{name}"), v);
            }
            let sum = totals.stage_sum_ns();
            if sum > 0 {
                let share = |ns: u64| ns as f64 / sum as f64;
                gauges.insert("perf_share_memtable".into(), share(totals.memtable_probe_ns));
                gauges.insert("perf_share_local_sst".into(), share(totals.sst_read_ns));
                gauges.insert("perf_share_cloud".into(), share(totals.cloud_get_ns));
                gauges.insert(
                    "perf_share_cache".into(),
                    share(totals.mashcache_hit_ns + totals.mashcache_fill_ns),
                );
                gauges.insert("perf_share_decompress".into(), share(totals.decompress_ns));
                gauges.insert(
                    "perf_share_wal".into(),
                    share(totals.wal_append_ns + totals.wal_sync_ns),
                );
            }
        }
        MetricsSnapshot {
            latency: self.observer.latency_stats(),
            counters,
            gauges,
            events: self.observer.journal().events(),
            heat: self.heat.clone(),
            levels: self.levels.clone(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.counters.len())
            .field("gauges", &self.gauges.len())
            .finish()
    }
}

/// One point-in-time view of every metric, exportable as human text
/// ([`MetricsSnapshot::stats_string`]), JSON ([`MetricsSnapshot::to_json`]
/// / [`MetricsSnapshot::from_json`]), or Prometheus exposition
/// ([`MetricsSnapshot::to_prometheus`]).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// Per-op latency summaries, keyed by [`Op::name`].
    pub latency: BTreeMap<String, OpStats>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Recent journal events.
    pub events: Vec<Event>,
    /// Heat/residency snapshot, when one was attached.
    #[serde(default)]
    pub heat: Option<HeatSnapshot>,
    /// Per-level amplification table, when one was attached.
    #[serde(default)]
    pub levels: Option<LevelTable>,
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

impl MetricsSnapshot {
    /// RocksDB-style human-readable report.
    pub fn stats_string(&self) -> String {
        let mut out = String::new();
        out.push_str("** Latency (us) **\n");
        out.push_str(&format!(
            "{:<20} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "op", "count", "mean", "p50", "p95", "p99", "max"
        ));
        for op in ALL_OPS {
            if let Some(s) = self.latency.get(op.name()) {
                out.push_str(&format!(
                    "{:<20} {:>10} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
                    op.name(),
                    s.count,
                    s.mean_ns / 1000.0,
                    us(s.p50_ns),
                    us(s.p95_ns),
                    us(s.p99_ns),
                    us(s.max_ns),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("** Counters **\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<40} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("** Gauges **\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name:<40} {v:.6}\n"));
            }
        }
        if let Some(levels) = &self.levels {
            out.push_str(&levels.render());
        }
        if let Some(heat) = &self.heat {
            let r = &heat.residency;
            out.push_str("** Residency **\n");
            out.push_str(&format!(
                "local  {:>6} files {:>14} bytes\ncloud  {:>6} files {:>14} bytes \
                 ({} cache-backed)\n",
                r.local_files, r.local_bytes, r.cloud_files, r.cloud_bytes, r.cache_backed_bytes,
            ));
            if !heat.entries.is_empty() {
                out.push_str(&format!("** Heat (tick {}, hottest first) **\n", heat.tick));
                out.push_str(&format!(
                    "{:<10} {:>12} {:>8} {:>12} {:>12} {:>10}\n",
                    "file", "score", "tier", "accesses", "cloud_gets", "cache_hits"
                ));
                for e in heat.entries.iter().take(10) {
                    out.push_str(&format!(
                        "{:<10} {:>12.3} {:>8} {:>12} {:>12} {:>10}\n",
                        e.file,
                        e.score,
                        e.tier.as_deref().unwrap_or("?"),
                        e.accesses,
                        e.cloud_gets,
                        e.cache_hits,
                    ));
                }
            }
        }
        if !self.events.is_empty() {
            out.push_str(&format!("** Events ({} recent) **\n", self.events.len()));
            for e in self.events.iter().rev().take(10).rev() {
                out.push_str(&format!("  [{:>12.3} ms] {:?}\n", e.ts_ns as f64 / 1e6, e.kind));
            }
        }
        out
    }

    /// Encode as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"latency\":{");
        for (i, (name, s)) in self.latency.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", escape(name)));
            s.write_json(&mut out);
        }
        out.push_str("},\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", escape(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(name), fmt_f64(*v)));
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str("],\"heat\":");
        match &self.heat {
            Some(h) => out.push_str(&h.to_json()),
            None => out.push_str("null"),
        }
        out.push_str(",\"levels\":");
        match &self.levels {
            Some(l) => out.push_str(&l.to_json()),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Decode a snapshot from [`MetricsSnapshot::to_json`] output.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        let v = Json::parse(text)?;
        let mut latency = BTreeMap::new();
        for (name, stats) in
            v.get("latency").and_then(Json::entries).ok_or("missing latency object")?
        {
            latency.insert(name.clone(), OpStats::from_json(stats)?);
        }
        let mut counters = BTreeMap::new();
        for (name, value) in
            v.get("counters").and_then(Json::entries).ok_or("missing counters object")?
        {
            counters.insert(
                name.clone(),
                value.as_u64().ok_or_else(|| format!("counter {name} not a u64"))?,
            );
        }
        let mut gauges = BTreeMap::new();
        for (name, value) in
            v.get("gauges").and_then(Json::entries).ok_or("missing gauges object")?
        {
            gauges.insert(
                name.clone(),
                value.as_f64().ok_or_else(|| format!("gauge {name} not a number"))?,
            );
        }
        let events = v
            .get("events")
            .and_then(Json::elements)
            .ok_or("missing events array")?
            .iter()
            .map(Event::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        // Absent or null heat both decode to None, so pre-heat snapshots
        // keep parsing.
        let heat = match v.get("heat") {
            None | Some(Json::Null) => None,
            Some(h) => Some(HeatSnapshot::from_json_value(h)?),
        };
        // Same pattern for levels: absent or null keep pre-level
        // snapshots parsing.
        let levels = match v.get("levels") {
            None | Some(Json::Null) => None,
            Some(l) => Some(LevelTable::from_json_value(l)?),
        };
        Ok(MetricsSnapshot { latency, counters, gauges, events, heat, levels })
    }

    /// Prometheus text exposition (version 0.0.4). Latency renders as
    /// summary metrics with `quantile` labels plus `_count`/`_sum`;
    /// counters as `rocksmash_<name>_total`; gauges as
    /// `rocksmash_<name>`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        if !self.latency.is_empty() {
            out.push_str("# HELP rocksmash_op_latency_seconds Operation latency quantiles.\n");
            out.push_str("# TYPE rocksmash_op_latency_seconds summary\n");
            for (name, s) in &self.latency {
                for (q, ns) in [("0.5", s.p50_ns), ("0.95", s.p95_ns), ("0.99", s.p99_ns)] {
                    out.push_str(&format!(
                        "rocksmash_op_latency_seconds{{op=\"{name}\",quantile=\"{q}\"}} {}\n",
                        fmt_f64(ns as f64 / 1e9)
                    ));
                }
                out.push_str(&format!(
                    "rocksmash_op_latency_seconds_count{{op=\"{name}\"}} {}\n",
                    s.count
                ));
                out.push_str(&format!(
                    "rocksmash_op_latency_seconds_sum{{op=\"{name}\"}} {}\n",
                    fmt_f64(s.mean_ns * s.count as f64 / 1e9)
                ));
            }
        }
        for (name, v) in &self.counters {
            out.push_str(&format!("# HELP rocksmash_{name}_total Monotonic total of {name}.\n"));
            out.push_str(&format!("# TYPE rocksmash_{name}_total counter\n"));
            out.push_str(&format!("rocksmash_{name}_total {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# HELP rocksmash_{name} Point-in-time value of {name}.\n"));
            out.push_str(&format!("# TYPE rocksmash_{name} gauge\n"));
            out.push_str(&format!("rocksmash_{name} {}\n", fmt_f64(*v)));
        }
        if let Some(heat) = &self.heat {
            out.push_str("# HELP rocksmash_heat_sst_score Decayed per-SST access score.\n");
            out.push_str("# TYPE rocksmash_heat_sst_score gauge\n");
            for e in &heat.entries {
                out.push_str(&format!(
                    "rocksmash_heat_sst_score{{file=\"{}\",tier=\"{}\"}} {}\n",
                    e.file,
                    e.tier.as_deref().unwrap_or("unknown"),
                    fmt_f64(e.score)
                ));
            }
            out.push_str(
                "# HELP rocksmash_heat_sst_cloud_gets_total Billed cloud GETs per tracked SST.\n",
            );
            out.push_str("# TYPE rocksmash_heat_sst_cloud_gets_total counter\n");
            for e in &heat.entries {
                out.push_str(&format!(
                    "rocksmash_heat_sst_cloud_gets_total{{file=\"{}\"}} {}\n",
                    e.file, e.cloud_gets
                ));
            }
            out.push_str(
                "# HELP rocksmash_heat_dropped_total Accesses dropped by the bounded heat map.\n",
            );
            out.push_str("# TYPE rocksmash_heat_dropped_total counter\n");
            out.push_str(&format!("rocksmash_heat_dropped_total {}\n", heat.dropped));
            out.push_str("# HELP rocksmash_heat_tick Decay ticks applied to the heat scores.\n");
            out.push_str("# TYPE rocksmash_heat_tick gauge\n");
            out.push_str(&format!("rocksmash_heat_tick {}\n", heat.tick));
            let r = &heat.residency;
            out.push_str("# HELP rocksmash_residency_bytes Live table bytes per tier.\n");
            out.push_str("# TYPE rocksmash_residency_bytes gauge\n");
            out.push_str(&format!(
                "rocksmash_residency_bytes{{tier=\"local\"}} {}\n",
                r.local_bytes
            ));
            out.push_str(&format!(
                "rocksmash_residency_bytes{{tier=\"cloud\"}} {}\n",
                r.cloud_bytes
            ));
            out.push_str("# HELP rocksmash_residency_files Live table files per tier.\n");
            out.push_str("# TYPE rocksmash_residency_files gauge\n");
            out.push_str(&format!(
                "rocksmash_residency_files{{tier=\"local\"}} {}\n",
                r.local_files
            ));
            out.push_str(&format!(
                "rocksmash_residency_files{{tier=\"cloud\"}} {}\n",
                r.cloud_files
            ));
            out.push_str(
                "# HELP rocksmash_residency_cache_backed_bytes Cloud-resident bytes with cached \
                 blocks on local storage.\n",
            );
            out.push_str("# TYPE rocksmash_residency_cache_backed_bytes gauge\n");
            out.push_str(&format!(
                "rocksmash_residency_cache_backed_bytes {}\n",
                r.cache_backed_bytes
            ));
        }
        if let Some(levels) = &self.levels {
            out.push_str(&levels.to_prometheus());
        }
        out
    }
}

/// Lint a Prometheus text exposition body. Checks every non-comment line
/// is `name{labels} value` with a valid metric name, parseable value, and
/// balanced quoted labels, and that every sample belongs to a family with
/// both a `# HELP` and a `# TYPE` declaration earlier in the body (summary
/// `_count`/`_sum` and histogram `_bucket` samples resolve to their base
/// family). Returns the number of samples, or a description of the first
/// malformed line.
pub fn validate_prometheus(body: &str) -> Result<usize, String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    let mut samples = 0;
    let mut helped: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    let mut typed: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for (no, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            match it.next() {
                Some("HELP") => {
                    let name = it.next().ok_or_else(|| {
                        format!("line {}: HELP without a metric name: {line:?}", no + 1)
                    })?;
                    helped.insert(name);
                }
                Some("TYPE") => {
                    let name = it.next().ok_or_else(|| {
                        format!("line {}: TYPE without a metric name: {line:?}", no + 1)
                    })?;
                    typed.insert(name);
                }
                _ => {}
            }
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line:?}", no + 1);
        let (name_part, value_part) = if let Some(open) = line.find('{') {
            let close = line.rfind('}').ok_or_else(|| err("unbalanced braces"))?;
            if close < open {
                return Err(err("unbalanced braces"));
            }
            let labels = &line[open + 1..close];
            for pair in labels.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').ok_or_else(|| err("label missing '='"))?;
                if !valid_name(k.trim()) {
                    return Err(err("bad label name"));
                }
                let v = v.trim();
                if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                    return Err(err("label value not quoted"));
                }
            }
            (&line[..open], line[close + 1..].trim())
        } else {
            let mut it = line.split_whitespace();
            let name = it.next().ok_or_else(|| err("missing name"))?;
            let value = it.next().ok_or_else(|| err("missing value"))?;
            (name, value)
        };
        let name = name_part.trim();
        if !valid_name(name) {
            return Err(err("bad metric name"));
        }
        // The sample's family: its own name, or the base name of a
        // summary/histogram series sample.
        let declared = |n: &str| helped.contains(n) && typed.contains(n);
        let family_ok = declared(name)
            || ["_count", "_sum", "_bucket"]
                .iter()
                .any(|suffix| name.strip_suffix(suffix).is_some_and(declared));
        if !family_ok {
            return Err(err("sample family lacks a # HELP/# TYPE declaration"));
        }
        // Value may be followed by an optional timestamp.
        let value = value_part.split_whitespace().next().ok_or_else(|| err("missing value"))?;
        match value {
            "+Inf" | "-Inf" | "NaN" => {}
            v => {
                v.parse::<f64>().map_err(|_| err("unparseable value"))?;
            }
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observer_records_nothing() {
        let o = Observer::disabled();
        assert!(o.start().is_none());
        o.finish(Op::Get, o.start());
        o.record(Op::Get, Duration::from_millis(1));
        o.event(EventKind::FlushStart);
        assert!(o.latency_stats().is_empty());
        assert!(o.journal().events().is_empty());
    }

    #[test]
    fn observer_records_latency_and_events() {
        let o = Observer::new();
        let t = o.start();
        assert!(t.is_some());
        o.finish(Op::Get, t);
        o.record(Op::Flush, Duration::from_micros(500));
        o.event(EventKind::FlushStart);
        let stats = o.latency_stats();
        assert_eq!(stats["get"].count, 1);
        assert_eq!(stats["flush"].count, 1);
        assert_eq!(o.journal().events().len(), 1);
    }

    #[test]
    fn slow_foreground_ops_hit_the_journal() {
        let o = Observer::new().with_slow_op_threshold(Duration::from_nanos(1));
        o.finish(Op::Get, Some(Instant::now()));
        let events = o.journal().events();
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0].kind, EventKind::SlowOp { op, .. } if op == "get"));
        // Background ops never log SlowOp.
        o.finish(Op::Compaction, Some(Instant::now()));
        assert_eq!(o.journal().events().len(), 1);
    }

    #[test]
    fn slow_background_ops_use_their_own_threshold() {
        let o = Observer::new()
            .with_slow_op_threshold(Duration::from_secs(3600))
            .with_slow_background_threshold(Duration::from_nanos(1));
        // A "stalled" compaction crosses the background threshold even
        // though the foreground threshold is far away.
        o.finish(Op::Compaction, Some(Instant::now()));
        let events = o.journal().events();
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0].kind, EventKind::SlowOp { op, .. } if op == "compaction"));
        // A fast foreground get logs nothing.
        o.finish(Op::Get, Some(Instant::now()));
        assert_eq!(o.journal().events().len(), 1);
    }

    #[test]
    fn perf_guard_captures_and_absorbs_into_totals() {
        let o = Observer::new();
        {
            let _g = o.perf_guard(true).expect("requested capture arms");
            assert!(crate::perf::enabled());
            // Nested guards defer to the outer scope.
            assert!(o.perf_guard(true).is_none());
            crate::perf::count(|c| {
                c.cloud_gets += 1;
                c.cloud_get_ns += 500;
            });
        }
        assert!(!crate::perf::enabled());
        let totals = o.perf_totals();
        assert_eq!(totals.cloud_gets, 1);
        assert_eq!(totals.cloud_get_ns, 500);
        assert_eq!(o.perf_ops(), 1);
        // Unrequested, unsampled: one branch, no capture.
        assert!(o.perf_guard(false).is_none());
    }

    #[test]
    fn sampling_selects_every_nth_op() {
        let o = Observer::new().with_perf_sampling(3);
        let mut captured = 0;
        for _ in 0..9 {
            if let Some(_g) = o.perf_guard(false) {
                captured += 1;
            }
        }
        assert_eq!(captured, 3);
    }

    #[test]
    fn spans_nest_and_publish_start_end_pairs() {
        let o = Observer::new();
        let root_ids;
        let child_ids;
        {
            let root = o.span("get").expect("enabled observer spans");
            root_ids = root.ids();
            assert_eq!(crate::perf::current_span(), Some(root_ids));
            {
                let child = o.child_span("cloud_get").expect("inside a trace");
                child_ids = child.ids();
                assert_eq!(child_ids.trace_id, root_ids.trace_id);
                assert_ne!(child_ids.span_id, root_ids.span_id);
            }
            assert_eq!(crate::perf::current_span(), Some(root_ids));
        }
        assert_eq!(crate::perf::current_span(), None);
        // Outside any trace, child_span declines.
        assert!(o.child_span("cloud_get").is_none());
        let events = o.journal().events();
        let starts: Vec<_> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::SpanStart { trace_id, span_id, parent_span_id, name } => {
                    Some((*trace_id, *span_id, *parent_span_id, name.clone()))
                }
                _ => None,
            })
            .collect();
        let ends = events.iter().filter(|e| matches!(&e.kind, EventKind::SpanEnd { .. })).count();
        assert_eq!(starts.len(), 2);
        assert_eq!(ends, 2);
        assert_eq!(starts[0], (root_ids.trace_id, root_ids.span_id, 0, "get".to_string()));
        assert_eq!(
            starts[1],
            (root_ids.trace_id, child_ids.span_id, root_ids.span_id, "cloud_get".to_string())
        );
    }

    #[test]
    fn slow_op_embeds_trace_id_and_breakdown() {
        let o = Observer::new().with_slow_op_threshold(Duration::from_nanos(1));
        let trace_id;
        {
            let _g = o.perf_guard(true).expect("capture");
            let span = o.span_if_perf("get").expect("perf active opens a span");
            trace_id = span.ids().trace_id;
            crate::perf::count(|c| c.cloud_get_ns += 42);
            o.finish(Op::Get, Some(Instant::now()));
        }
        let slow: Vec<_> = o
            .journal()
            .events()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::SlowOp { op, trace_id, breakdown, .. } => {
                    Some((op, trace_id, breakdown))
                }
                _ => None,
            })
            .collect();
        assert_eq!(slow.len(), 1);
        let (op, got_trace, breakdown) = &slow[0];
        assert_eq!(op, "get");
        assert_eq!(*got_trace, trace_id);
        assert_eq!(breakdown.as_ref().expect("breakdown captured").cloud_get_ns, 42);
    }

    #[test]
    fn snapshot_folds_perf_totals_into_counters_and_shares() {
        let o = Arc::new(Observer::new());
        o.absorb_perf(&PerfContext {
            cloud_get_ns: 75,
            sst_read_ns: 25,
            cloud_gets: 2,
            ..PerfContext::default()
        });
        let snap = MetricsRegistry::new(Arc::clone(&o)).snapshot();
        assert_eq!(snap.counters["perf_cloud_get_ns"], 75);
        assert_eq!(snap.counters["perf_cloud_gets"], 2);
        assert_eq!(snap.counters["perf_sampled_ops"], 1);
        assert!((snap.gauges["perf_share_cloud"] - 0.75).abs() < 1e-9);
        assert!((snap.gauges["perf_share_local_sst"] - 0.25).abs() < 1e-9);
        validate_prometheus(&snap.to_prometheus()).expect("exposition stays lintable");
        let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn op_names_are_unique_and_snake_case() {
        let mut seen = std::collections::BTreeSet::new();
        for op in ALL_OPS {
            assert!(seen.insert(op.name()), "duplicate name {}", op.name());
            assert!(op
                .name()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()));
        }
    }

    fn sample_snapshot() -> MetricsSnapshot {
        let observer = Arc::new(Observer::new());
        observer.record(Op::Get, Duration::from_micros(120));
        observer.record(Op::Get, Duration::from_micros(80));
        observer.record(Op::CloudGet, Duration::from_millis(2));
        observer.event(EventKind::Upload { file: 7, bytes: 4096, dur_ns: 1_000_000 });
        let mut reg = MetricsRegistry::new(observer);
        reg.counter("cloud_reads", 42).counter("uploads", 3);
        reg.gauge("local_bytes", 1048576.0).gauge("cache_hit_ratio", 0.93);
        reg.snapshot()
    }

    #[test]
    fn stats_string_mentions_every_section() {
        let s = sample_snapshot().stats_string();
        assert!(s.contains("** Latency (us) **"));
        assert!(s.contains("get"));
        assert!(s.contains("cloud_get"));
        assert!(s.contains("** Counters **"));
        assert!(s.contains("cloud_reads"));
        assert!(s.contains("** Gauges **"));
        assert!(s.contains("** Events"));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_ops_are_omitted_from_json() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"get\""));
        assert!(!json.contains("\"ewal_sync\""));
    }

    #[test]
    fn prometheus_output_passes_lint() {
        let snap = sample_snapshot();
        let body = snap.to_prometheus();
        let samples = validate_prometheus(&body).expect("exposition parses");
        // 2 ops × 5 lines + 2 counters + 2 gauges.
        assert_eq!(samples, 2 * 5 + 2 + 2);
        assert!(body.contains("rocksmash_op_latency_seconds{op=\"get\",quantile=\"0.5\"}"));
        assert!(body.contains("rocksmash_cloud_reads_total 42"));
        assert!(body.contains("rocksmash_local_bytes 1048576"));
    }

    fn sample_snapshot_with_heat() -> MetricsSnapshot {
        let observer = Arc::new(Observer::new());
        observer.record_table_access(7, 4096);
        observer.record_table_access(7, 4096);
        observer.record_table_access(12, 4096);
        observer.record_cloud_get_for(7, 4096);
        observer.record_cache_hit_for(7);
        observer.set_residency(7, 1 << 20, ResidencyTier::Cloud);
        observer.set_residency(12, 2 << 20, ResidencyTier::Local);
        let mut reg = MetricsRegistry::new(Arc::clone(&observer));
        reg.counter("cloud_reads", 1);
        reg.attach_heat(observer.heat().snapshot(10, 512));
        reg.snapshot()
    }

    #[test]
    fn heat_rides_every_export_surface() {
        let snap = sample_snapshot_with_heat();
        let text = snap.stats_string();
        assert!(text.contains("** Heat"));
        assert!(text.contains("** Residency **"));
        let body = snap.to_prometheus();
        validate_prometheus(&body).expect("heat exposition lints");
        assert!(body.contains("rocksmash_heat_sst_score{file=\"7\",tier=\"cloud\"} 2"));
        assert!(body.contains("rocksmash_heat_sst_cloud_gets_total{file=\"7\"} 1"));
        assert!(body.contains("rocksmash_residency_bytes{tier=\"local\"} 2097152"));
        assert!(body.contains("rocksmash_residency_files{tier=\"cloud\"} 1"));
        assert!(body.contains("rocksmash_residency_cache_backed_bytes 512"));
        let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(back, snap);
        assert_eq!(back.heat.as_ref().unwrap().entries[0].file, 7);
    }

    #[test]
    fn heatless_snapshot_emits_null_and_old_json_still_parses() {
        let snap = sample_snapshot();
        assert!(snap.heat.is_none());
        assert!(snap.to_json().contains("\"heat\":null"));
        // A document without the field at all (pre-heat writer) parses.
        let legacy = snap.to_json().replace(",\"heat\":null", "");
        assert!(MetricsSnapshot::from_json(&legacy).expect("parses").heat.is_none());
        // And the Prometheus body simply omits the families.
        assert!(!snap.to_prometheus().contains("rocksmash_heat_"));
    }

    #[test]
    fn disabled_observer_skips_heat_recording() {
        let o = Observer::disabled();
        o.record_table_access(1, 100);
        o.record_cloud_get_for(1, 100);
        o.record_key_heat(b"k");
        o.set_residency(1, 100, ResidencyTier::Local);
        let snap = o.heat().snapshot(10, 0);
        assert!(snap.entries.is_empty());
        assert_eq!(snap.residency, crate::heat::ResidencySnapshot::default());
    }

    #[test]
    fn prometheus_lint_rejects_garbage() {
        assert!(validate_prometheus("9metric 1\n").is_err());
        assert!(validate_prometheus("metric{a=b} 1\n").is_err());
        assert!(validate_prometheus("# HELP metric x\n# TYPE metric gauge\nmetric nope\n").is_err());
        assert!(validate_prometheus("metric{a=\"b\" 1\n").is_err());
        assert_eq!(validate_prometheus("# just a comment\n").unwrap(), 0);
        let declared = "# HELP m a metric\n# TYPE m gauge\nm{l=\"x\"} 1.5 1234\n";
        assert_eq!(validate_prometheus(declared).unwrap(), 1);
    }

    #[test]
    fn prometheus_lint_requires_help_and_type_per_family() {
        // Bare sample: no declarations at all.
        assert!(validate_prometheus("m 1\n").is_err());
        // TYPE alone or HELP alone is not enough.
        assert!(validate_prometheus("# TYPE m gauge\nm 1\n").is_err());
        assert!(validate_prometheus("# HELP m a metric\nm 1\n").is_err());
        // Summary series samples resolve to their base family.
        let summary = "# HELP lat latency\n# TYPE lat summary\n\
                       lat{quantile=\"0.5\"} 1\nlat_count 2\nlat_sum 3\n";
        assert_eq!(validate_prometheus(summary).unwrap(), 3);
        // A _count sample whose base family is undeclared still fails.
        assert!(validate_prometheus("# HELP x y\n# TYPE x counter\nlat_count 2\n").is_err());
    }

    #[test]
    fn empty_snapshot_renders_everywhere() {
        let reg = MetricsRegistry::new(Arc::new(Observer::disabled()));
        let snap = reg.snapshot();
        assert_eq!(validate_prometheus(&snap.to_prometheus()).unwrap(), 0);
        assert!(snap.stats_string().contains("** Latency"));
        let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(back, snap);
    }
}
