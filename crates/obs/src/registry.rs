//! Observer, metrics registry, and export surfaces.
//!
//! The [`Observer`] is the engine-facing handle: one per database, shared
//! as an `Arc` by every crate in the stack. Hot paths ask it for a timer
//! ([`Observer::start`], a no-op returning `None` when disabled), stop it
//! with [`Observer::finish`], and publish journal events with
//! [`Observer::event`]. The [`MetricsRegistry`] folds the observer's
//! histograms together with caller-supplied counters and gauges into a
//! [`MetricsSnapshot`] that renders three ways: a RocksDB-style human
//! string, JSON, and Prometheus text exposition.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::events::{Event, EventJournal, EventKind};
use crate::hist::LatencyHistogram;
use crate::json::{escape, fmt_f64, Json};

/// Instrumented operations, one histogram each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Op {
    /// Point lookup (`Db::get`).
    Get,
    /// Batch/point write (`Db::write`).
    Write,
    /// Whole `multi_get` batch (all keys, one sample).
    MultiGet,
    /// One iterator `next()` step.
    IterNext,
    /// Memtable flush to a level-0 table.
    Flush,
    /// One compaction job.
    Compaction,
    /// A billed cloud GET (single object or range).
    CloudGet,
    /// A coalesced ranged cloud GET covering several block reads.
    CloudCoalescedGet,
    /// A cloud PUT.
    CloudPut,
    /// Persistent-cache hit (read served from the cache file).
    CacheHit,
    /// Persistent-cache miss fill (cloud fetch + cache insert).
    CacheFill,
    /// eWAL record append (buffered).
    EwalAppend,
    /// eWAL fsync.
    EwalSync,
}

/// Every operation, in display order.
pub const ALL_OPS: [Op; 13] = [
    Op::Get,
    Op::Write,
    Op::MultiGet,
    Op::IterNext,
    Op::Flush,
    Op::Compaction,
    Op::CloudGet,
    Op::CloudCoalescedGet,
    Op::CloudPut,
    Op::CacheHit,
    Op::CacheFill,
    Op::EwalAppend,
    Op::EwalSync,
];

impl Op {
    /// Stable snake_case name used in JSON keys and Prometheus labels.
    pub fn name(self) -> &'static str {
        match self {
            Op::Get => "get",
            Op::Write => "write",
            Op::MultiGet => "multi_get",
            Op::IterNext => "iter_next",
            Op::Flush => "flush",
            Op::Compaction => "compaction",
            Op::CloudGet => "cloud_get",
            Op::CloudCoalescedGet => "cloud_coalesced_get",
            Op::CloudPut => "cloud_put",
            Op::CacheHit => "cache_hit",
            Op::CacheFill => "cache_fill",
            Op::EwalAppend => "ewal_append",
            Op::EwalSync => "ewal_sync",
        }
    }

    fn index(self) -> usize {
        ALL_OPS.iter().position(|&o| o == self).expect("op listed in ALL_OPS")
    }
}

/// Default threshold above which a foreground op logs a `SlowOp` event.
pub const DEFAULT_SLOW_OP: Duration = Duration::from_millis(100);

/// Engine-wide observability handle: per-op latency histograms plus the
/// event journal. Cheap to share (`Arc<Observer>`) and safe to call from
/// any thread.
pub struct Observer {
    enabled: bool,
    hists: [LatencyHistogram; ALL_OPS.len()],
    journal: EventJournal,
    slow_op_ns: u64,
}

impl Observer {
    /// Enabled observer with the default journal capacity and slow-op
    /// threshold.
    pub fn new() -> Self {
        Observer {
            enabled: true,
            hists: std::array::from_fn(|_| LatencyHistogram::new()),
            journal: EventJournal::new(),
            slow_op_ns: DEFAULT_SLOW_OP.as_nanos() as u64,
        }
    }

    /// Disabled observer: `start()` returns `None`, `record`/`event` are
    /// no-ops. Lets callers keep unconditional `Arc<Observer>` plumbing
    /// while paying only a branch on the hot path.
    pub fn disabled() -> Self {
        Observer { enabled: false, ..Observer::new() }
    }

    /// Set the slow-op threshold; foreground ops slower than this publish
    /// a [`EventKind::SlowOp`] journal event.
    pub fn with_slow_op_threshold(mut self, threshold: Duration) -> Self {
        self.slow_op_ns = threshold.as_nanos().min(u64::MAX as u128) as u64;
        self
    }

    /// Whether this observer records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Begin timing an operation. Returns `None` when disabled so the
    /// disabled path costs a single branch and no clock read.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finish a timer from [`Observer::start`], recording the elapsed
    /// time under `op`. Accepts `None` so call sites stay branch-free.
    #[inline]
    pub fn finish(&self, op: Op, started: Option<Instant>) {
        if let Some(t0) = started {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.hists[op.index()].record(ns);
            if ns >= self.slow_op_ns && is_foreground(op) {
                self.journal.publish(EventKind::SlowOp { op: op.name().to_string(), dur_ns: ns });
            }
        }
    }

    /// Record a pre-measured duration under `op`.
    pub fn record(&self, op: Op, d: Duration) {
        if self.enabled {
            self.hists[op.index()].record_duration(d);
        }
    }

    /// Publish an event to the journal.
    pub fn event(&self, kind: EventKind) {
        if self.enabled {
            self.journal.publish(kind);
        }
    }

    /// Publish an event with an explicit journal-relative timestamp.
    pub fn event_at(&self, ts_ns: u64, kind: EventKind) {
        if self.enabled {
            self.journal.publish_at(ts_ns, kind);
        }
    }

    /// Journal-relative clock, for stamping start times of timed phases.
    pub fn now_ns(&self) -> u64 {
        self.journal.now_ns()
    }

    /// The event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// The histogram for `op`.
    pub fn histogram(&self, op: Op) -> &LatencyHistogram {
        &self.hists[op.index()]
    }

    /// Snapshot all per-op latency stats (empty ops omitted).
    pub fn latency_stats(&self) -> BTreeMap<String, OpStats> {
        let mut out = BTreeMap::new();
        for op in ALL_OPS {
            let snap = self.hists[op.index()].snapshot();
            if snap.count() > 0 {
                out.insert(op.name().to_string(), OpStats::from_snapshot(&snap));
            }
        }
        out
    }
}

impl Default for Observer {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("enabled", &self.enabled)
            .field("slow_op_ns", &self.slow_op_ns)
            .field("journal", &self.journal)
            .finish()
    }
}

/// Background work never logs SlowOp — flushes and compactions are
/// *expected* to take long; the journal already records them explicitly.
fn is_foreground(op: Op) -> bool {
    !matches!(op, Op::Flush | Op::Compaction)
}

/// Summary statistics for one operation's latency distribution.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OpStats {
    pub count: u64,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

impl OpStats {
    fn from_snapshot(snap: &crate::hist::HistogramSnapshot) -> OpStats {
        OpStats {
            count: snap.count(),
            mean_ns: snap.mean_ns(),
            p50_ns: snap.percentile_ns(50.0),
            p95_ns: snap.percentile_ns(95.0),
            p99_ns: snap.percentile_ns(99.0),
            max_ns: snap.max_ns(),
        }
    }

    fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            self.count,
            fmt_f64(self.mean_ns),
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.max_ns,
        ));
    }

    fn from_json(v: &Json) -> Result<OpStats, String> {
        let u64_field = |name: &str| {
            v.get(name).and_then(Json::as_u64).ok_or_else(|| format!("op stats missing {name}"))
        };
        Ok(OpStats {
            count: u64_field("count")?,
            mean_ns: v.get("mean_ns").and_then(Json::as_f64).ok_or("op stats missing mean_ns")?,
            p50_ns: u64_field("p50_ns")?,
            p95_ns: u64_field("p95_ns")?,
            p99_ns: u64_field("p99_ns")?,
            max_ns: u64_field("max_ns")?,
        })
    }
}

/// Aggregates an [`Observer`] with caller-supplied counters and gauges
/// into one exportable snapshot.
///
/// Counters are monotonically increasing totals (`_total` in Prometheus);
/// gauges are point-in-time values (byte footprints, costs, ratios).
pub struct MetricsRegistry {
    observer: Arc<Observer>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl MetricsRegistry {
    /// Registry over `observer` with no counters or gauges yet.
    pub fn new(observer: Arc<Observer>) -> Self {
        MetricsRegistry { observer, counters: BTreeMap::new(), gauges: BTreeMap::new() }
    }

    /// Set a monotonically increasing counter (snake_case name).
    pub fn counter(&mut self, name: &str, value: u64) -> &mut Self {
        self.counters.insert(name.to_string(), value);
        self
    }

    /// Set a point-in-time gauge (snake_case name).
    pub fn gauge(&mut self, name: &str, value: f64) -> &mut Self {
        self.gauges.insert(name.to_string(), value);
        self
    }

    /// Build the snapshot: observer latency stats + journal events +
    /// registered counters and gauges.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            latency: self.observer.latency_stats(),
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            events: self.observer.journal().events(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.counters.len())
            .field("gauges", &self.gauges.len())
            .finish()
    }
}

/// One point-in-time view of every metric, exportable as human text
/// ([`MetricsSnapshot::stats_string`]), JSON ([`MetricsSnapshot::to_json`]
/// / [`MetricsSnapshot::from_json`]), or Prometheus exposition
/// ([`MetricsSnapshot::to_prometheus`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// Per-op latency summaries, keyed by [`Op::name`].
    pub latency: BTreeMap<String, OpStats>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Recent journal events.
    pub events: Vec<Event>,
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

impl MetricsSnapshot {
    /// RocksDB-style human-readable report.
    pub fn stats_string(&self) -> String {
        let mut out = String::new();
        out.push_str("** Latency (us) **\n");
        out.push_str(&format!(
            "{:<20} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "op", "count", "mean", "p50", "p95", "p99", "max"
        ));
        for op in ALL_OPS {
            if let Some(s) = self.latency.get(op.name()) {
                out.push_str(&format!(
                    "{:<20} {:>10} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
                    op.name(),
                    s.count,
                    s.mean_ns / 1000.0,
                    us(s.p50_ns),
                    us(s.p95_ns),
                    us(s.p99_ns),
                    us(s.max_ns),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("** Counters **\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<40} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("** Gauges **\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name:<40} {v:.6}\n"));
            }
        }
        if !self.events.is_empty() {
            out.push_str(&format!("** Events ({} recent) **\n", self.events.len()));
            for e in self.events.iter().rev().take(10).rev() {
                out.push_str(&format!("  [{:>12.3} ms] {:?}\n", e.ts_ns as f64 / 1e6, e.kind));
            }
        }
        out
    }

    /// Encode as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"latency\":{");
        for (i, (name, s)) in self.latency.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", escape(name)));
            s.write_json(&mut out);
        }
        out.push_str("},\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", escape(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(name), fmt_f64(*v)));
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Decode a snapshot from [`MetricsSnapshot::to_json`] output.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        let v = Json::parse(text)?;
        let mut latency = BTreeMap::new();
        for (name, stats) in
            v.get("latency").and_then(Json::entries).ok_or("missing latency object")?
        {
            latency.insert(name.clone(), OpStats::from_json(stats)?);
        }
        let mut counters = BTreeMap::new();
        for (name, value) in
            v.get("counters").and_then(Json::entries).ok_or("missing counters object")?
        {
            counters.insert(
                name.clone(),
                value.as_u64().ok_or_else(|| format!("counter {name} not a u64"))?,
            );
        }
        let mut gauges = BTreeMap::new();
        for (name, value) in
            v.get("gauges").and_then(Json::entries).ok_or("missing gauges object")?
        {
            gauges.insert(
                name.clone(),
                value.as_f64().ok_or_else(|| format!("gauge {name} not a number"))?,
            );
        }
        let events = v
            .get("events")
            .and_then(Json::elements)
            .ok_or("missing events array")?
            .iter()
            .map(Event::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MetricsSnapshot { latency, counters, gauges, events })
    }

    /// Prometheus text exposition (version 0.0.4). Latency renders as
    /// summary metrics with `quantile` labels plus `_count`/`_sum`;
    /// counters as `rocksmash_<name>_total`; gauges as
    /// `rocksmash_<name>`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        if !self.latency.is_empty() {
            out.push_str("# HELP rocksmash_op_latency_seconds Operation latency quantiles.\n");
            out.push_str("# TYPE rocksmash_op_latency_seconds summary\n");
            for (name, s) in &self.latency {
                for (q, ns) in [("0.5", s.p50_ns), ("0.95", s.p95_ns), ("0.99", s.p99_ns)] {
                    out.push_str(&format!(
                        "rocksmash_op_latency_seconds{{op=\"{name}\",quantile=\"{q}\"}} {}\n",
                        fmt_f64(ns as f64 / 1e9)
                    ));
                }
                out.push_str(&format!(
                    "rocksmash_op_latency_seconds_count{{op=\"{name}\"}} {}\n",
                    s.count
                ));
                out.push_str(&format!(
                    "rocksmash_op_latency_seconds_sum{{op=\"{name}\"}} {}\n",
                    fmt_f64(s.mean_ns * s.count as f64 / 1e9)
                ));
            }
        }
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE rocksmash_{name}_total counter\n"));
            out.push_str(&format!("rocksmash_{name}_total {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE rocksmash_{name} gauge\n"));
            out.push_str(&format!("rocksmash_{name} {}\n", fmt_f64(*v)));
        }
        out
    }
}

/// Lint a Prometheus text exposition body. Checks every non-comment line
/// is `name{labels} value` with a valid metric name, parseable value, and
/// balanced quoted labels. Returns the number of samples, or a
/// description of the first malformed line.
pub fn validate_prometheus(body: &str) -> Result<usize, String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    let mut samples = 0;
    for (no, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line:?}", no + 1);
        let (name_part, value_part) = if let Some(open) = line.find('{') {
            let close = line.rfind('}').ok_or_else(|| err("unbalanced braces"))?;
            if close < open {
                return Err(err("unbalanced braces"));
            }
            let labels = &line[open + 1..close];
            for pair in labels.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').ok_or_else(|| err("label missing '='"))?;
                if !valid_name(k.trim()) {
                    return Err(err("bad label name"));
                }
                let v = v.trim();
                if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                    return Err(err("label value not quoted"));
                }
            }
            (&line[..open], line[close + 1..].trim())
        } else {
            let mut it = line.split_whitespace();
            let name = it.next().ok_or_else(|| err("missing name"))?;
            let value = it.next().ok_or_else(|| err("missing value"))?;
            (name, value)
        };
        if !valid_name(name_part.trim()) {
            return Err(err("bad metric name"));
        }
        // Value may be followed by an optional timestamp.
        let value = value_part.split_whitespace().next().ok_or_else(|| err("missing value"))?;
        match value {
            "+Inf" | "-Inf" | "NaN" => {}
            v => {
                v.parse::<f64>().map_err(|_| err("unparseable value"))?;
            }
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observer_records_nothing() {
        let o = Observer::disabled();
        assert!(o.start().is_none());
        o.finish(Op::Get, o.start());
        o.record(Op::Get, Duration::from_millis(1));
        o.event(EventKind::FlushStart);
        assert!(o.latency_stats().is_empty());
        assert!(o.journal().events().is_empty());
    }

    #[test]
    fn observer_records_latency_and_events() {
        let o = Observer::new();
        let t = o.start();
        assert!(t.is_some());
        o.finish(Op::Get, t);
        o.record(Op::Flush, Duration::from_micros(500));
        o.event(EventKind::FlushStart);
        let stats = o.latency_stats();
        assert_eq!(stats["get"].count, 1);
        assert_eq!(stats["flush"].count, 1);
        assert_eq!(o.journal().events().len(), 1);
    }

    #[test]
    fn slow_foreground_ops_hit_the_journal() {
        let o = Observer::new().with_slow_op_threshold(Duration::from_nanos(1));
        o.finish(Op::Get, Some(Instant::now()));
        let events = o.journal().events();
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0].kind, EventKind::SlowOp { op, .. } if op == "get"));
        // Background ops never log SlowOp.
        o.finish(Op::Compaction, Some(Instant::now()));
        assert_eq!(o.journal().events().len(), 1);
    }

    #[test]
    fn op_names_are_unique_and_snake_case() {
        let mut seen = std::collections::BTreeSet::new();
        for op in ALL_OPS {
            assert!(seen.insert(op.name()), "duplicate name {}", op.name());
            assert!(op
                .name()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()));
        }
    }

    fn sample_snapshot() -> MetricsSnapshot {
        let observer = Arc::new(Observer::new());
        observer.record(Op::Get, Duration::from_micros(120));
        observer.record(Op::Get, Duration::from_micros(80));
        observer.record(Op::CloudGet, Duration::from_millis(2));
        observer.event(EventKind::Upload { file: 7, bytes: 4096, dur_ns: 1_000_000 });
        let mut reg = MetricsRegistry::new(observer);
        reg.counter("cloud_reads", 42).counter("uploads", 3);
        reg.gauge("local_bytes", 1048576.0).gauge("cache_hit_ratio", 0.93);
        reg.snapshot()
    }

    #[test]
    fn stats_string_mentions_every_section() {
        let s = sample_snapshot().stats_string();
        assert!(s.contains("** Latency (us) **"));
        assert!(s.contains("get"));
        assert!(s.contains("cloud_get"));
        assert!(s.contains("** Counters **"));
        assert!(s.contains("cloud_reads"));
        assert!(s.contains("** Gauges **"));
        assert!(s.contains("** Events"));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_ops_are_omitted_from_json() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"get\""));
        assert!(!json.contains("\"ewal_sync\""));
    }

    #[test]
    fn prometheus_output_passes_lint() {
        let snap = sample_snapshot();
        let body = snap.to_prometheus();
        let samples = validate_prometheus(&body).expect("exposition parses");
        // 2 ops × 5 lines + 2 counters + 2 gauges.
        assert_eq!(samples, 2 * 5 + 2 + 2);
        assert!(body.contains("rocksmash_op_latency_seconds{op=\"get\",quantile=\"0.5\"}"));
        assert!(body.contains("rocksmash_cloud_reads_total 42"));
        assert!(body.contains("rocksmash_local_bytes 1048576"));
    }

    #[test]
    fn prometheus_lint_rejects_garbage() {
        assert!(validate_prometheus("9metric 1\n").is_err());
        assert!(validate_prometheus("metric{a=b} 1\n").is_err());
        assert!(validate_prometheus("metric nope\n").is_err());
        assert!(validate_prometheus("metric{a=\"b\" 1\n").is_err());
        assert_eq!(validate_prometheus("# just a comment\n").unwrap(), 0);
        assert_eq!(validate_prometheus("m{l=\"x\"} 1.5 1234\n").unwrap(), 1);
    }

    #[test]
    fn empty_snapshot_renders_everywhere() {
        let reg = MetricsRegistry::new(Arc::new(Observer::disabled()));
        let snap = reg.snapshot();
        assert_eq!(validate_prometheus(&snap.to_prometheus()).unwrap(), 0);
        assert!(snap.stats_string().contains("** Latency"));
        let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(back, snap);
    }
}
