//! Heat & residency telemetry: decayed per-SST / per-key-range access
//! frequency and per-tier byte/file accounting.
//!
//! [`HeatMap`] answers the question placement policies must ask — *which
//! tables are hot right now?* — with exponentially decayed counters: every
//! access adds one point to its table's score, and each clock tick halves
//! every score. Decay is applied **lazily**: nothing walks the table on a
//! tick; a slot's score is re-normalized the next time it is touched (or
//! read), using the tick delta packed next to it. Scores therefore stay
//! exact for a fixed tick sequence, which is what makes the decay
//! deterministic under test.
//!
//! The hot path is lock-free: slots live in a fixed open-addressed array
//! (bounded memory, no rehash), score updates are a CAS loop on one packed
//! `AtomicU64`, and companion counters are plain `fetch_add`s. When the
//! probe window is full of hotter tables, the access is counted in
//! `dropped` rather than blocking or allocating.
//!
//! [`Residency`] is the placement-side complement: per-tier bytes and file
//! counts, updated at every publish/upload/migration/delete transition, so
//! exports can show *where the data lives* next to *how hot it is*.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::json::{fmt_f64, Json};

/// Fixed-point fractional bits of a packed score.
const SCORE_FRAC_BITS: u32 = 16;
/// Bits of the packed state holding the score (low bits).
const SCORE_BITS: u32 = 48;
const SCORE_MASK: u64 = (1 << SCORE_BITS) - 1;
/// One access worth of score.
const SCORE_ONE: u64 = 1 << SCORE_FRAC_BITS;
/// Slots inspected per file before giving up (open addressing).
const PROBE_WINDOW: usize = 16;
/// Key-range buckets (first key byte >> 2).
pub const RANGE_BUCKETS: usize = 64;

/// Which tier a file currently lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResidencyTier {
    /// Local tier (fast device).
    Local,
    /// Cloud tier (object store).
    Cloud,
}

impl ResidencyTier {
    /// Stable snake_case name for exports.
    pub fn name(self) -> &'static str {
        match self {
            ResidencyTier::Local => "local",
            ResidencyTier::Cloud => "cloud",
        }
    }
}

/// Pack `(tick, score)` into one atomic word: tick in the high 16 bits,
/// fixed-point score in the low 48.
fn pack(tick: u64, score: u64) -> u64 {
    (tick & 0xFFFF) << SCORE_BITS | (score & SCORE_MASK)
}

fn unpack(state: u64) -> (u64, u64) {
    (state >> SCORE_BITS, state & SCORE_MASK)
}

/// Decay `score` from `slot_tick` to `now_tick`: one halving per elapsed
/// tick. Ticks wrap at 2^16; a wrapped delta decays to zero, which is the
/// right answer for anything untouched that long.
fn decay(score: u64, slot_tick: u64, now_tick: u64) -> u64 {
    let delta = now_tick.wrapping_sub(slot_tick) & 0xFFFF;
    if delta >= SCORE_BITS as u64 {
        0
    } else {
        score >> delta
    }
}

/// One table's heat slot.
#[derive(Debug, Default)]
struct HeatSlot {
    /// File number + 1 (0 = empty), so file number 0 stays representable.
    key: AtomicU64,
    /// Packed `(tick, decayed score)`.
    state: AtomicU64,
    /// Lifetime logical block reads against this table.
    accesses: AtomicU64,
    /// Lifetime bytes of those reads.
    access_bytes: AtomicU64,
    /// Billed cloud GETs that served this table.
    cloud_gets: AtomicU64,
    /// Bytes fetched from the cloud for this table.
    cloud_get_bytes: AtomicU64,
    /// Persistent-cache hits that served this table.
    cache_hits: AtomicU64,
}

/// Lock-free decayed access-frequency tracker over a bounded slot table.
#[derive(Debug)]
pub struct HeatMap {
    tick: AtomicU64,
    slots: Box<[HeatSlot]>,
    /// Coarse key-space heat: decayed score per `first_byte >> 2` bucket.
    range: Box<[AtomicU64]>,
    /// Accesses not recorded because the probe window was full of hotter
    /// tables.
    dropped: AtomicU64,
    residency: Residency,
}

/// Default slot capacity: covers thousands of live SSTs in ~64 KiB.
pub const DEFAULT_HEAT_SLOTS: usize = 1024;

impl Default for HeatMap {
    fn default() -> Self {
        Self::new(DEFAULT_HEAT_SLOTS)
    }
}

impl HeatMap {
    /// Tracker with capacity for `slots` concurrently tracked tables
    /// (rounded up to a power of two, minimum 16).
    pub fn new(slots: usize) -> HeatMap {
        let cap = slots.next_power_of_two().max(16);
        HeatMap {
            tick: AtomicU64::new(0),
            slots: (0..cap).map(|_| HeatSlot::default()).collect(),
            range: (0..RANGE_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            dropped: AtomicU64::new(0),
            residency: Residency::default(),
        }
    }

    /// The current decay tick.
    pub fn tick(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// Advance the decay clock by `n` ticks (each halves every score,
    /// lazily). The sampler calls this once per elapsed half-life; tests
    /// call it directly for deterministic decay.
    pub fn advance_ticks(&self, n: u64) {
        if n > 0 {
            self.tick.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Residency accounting (bytes/files per tier).
    pub fn residency(&self) -> &Residency {
        &self.residency
    }

    /// Accesses dropped because the slot table was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn slot_index(&self, file: u64) -> usize {
        // Fibonacci hashing spreads sequential file numbers.
        (file.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (self.slots.len() - 1)
    }

    /// Find `file`'s slot, claiming an empty one inside the probe window
    /// if absent. `evict` additionally allows stealing the coldest slot in
    /// the window when its decayed score has fallen below one access.
    fn slot_for(&self, file: u64, evict: bool) -> Option<&HeatSlot> {
        let key = file + 1;
        let start = self.slot_index(file);
        let mask = self.slots.len() - 1;
        let now = self.tick.load(Ordering::Relaxed);
        let mut coldest: Option<(&HeatSlot, u64)> = None;
        for i in 0..PROBE_WINDOW.min(self.slots.len()) {
            let slot = &self.slots[(start + i) & mask];
            match slot.key.load(Ordering::Relaxed) {
                k if k == key => return Some(slot),
                0 => {
                    if slot
                        .key
                        .compare_exchange(0, key, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                    {
                        return Some(slot);
                    }
                    // Lost the race; whoever won may even be tracking the
                    // same file now.
                    if slot.key.load(Ordering::Relaxed) == key {
                        return Some(slot);
                    }
                }
                _ => {
                    let (t, s) = unpack(slot.state.load(Ordering::Relaxed));
                    let score = decay(s, t, now);
                    if coldest.map(|(_, c)| score < c).unwrap_or(true) {
                        coldest = Some((slot, score));
                    }
                }
            }
        }
        if evict {
            if let Some((slot, score)) = coldest {
                if score < SCORE_ONE {
                    // Steal the cold slot. Racing recorders may briefly
                    // attribute a few counts to the wrong file — accepted:
                    // this is telemetry, and the slot was cold anyway.
                    slot.key.store(key, Ordering::Release);
                    slot.state.store(pack(now, 0), Ordering::Relaxed);
                    slot.accesses.store(0, Ordering::Relaxed);
                    slot.access_bytes.store(0, Ordering::Relaxed);
                    slot.cloud_gets.store(0, Ordering::Relaxed);
                    slot.cloud_get_bytes.store(0, Ordering::Relaxed);
                    slot.cache_hits.store(0, Ordering::Relaxed);
                    return Some(slot);
                }
            }
        }
        None
    }

    /// Add `points` of decayed score to `state_cell`.
    fn bump(&self, state_cell: &AtomicU64, points: u64) {
        let now = self.tick.load(Ordering::Relaxed);
        let mut cur = state_cell.load(Ordering::Relaxed);
        loop {
            let (t, s) = unpack(cur);
            let fresh = pack(now, (decay(s, t, now) + points).min(SCORE_MASK));
            match state_cell.compare_exchange_weak(cur, fresh, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Record one logical block read of `bytes` against `file` (the lsm
    /// read path: table gets and iterator block loads). This is the only
    /// access kind that feeds the decayed score, so local- and
    /// cloud-resident tables rank on the same scale.
    pub fn record_access(&self, file: u64, bytes: u64) {
        match self.slot_for(file, true) {
            Some(slot) => {
                self.bump(&slot.state, SCORE_ONE);
                slot.accesses.fetch_add(1, Ordering::Relaxed);
                slot.access_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Record a billed cloud GET of `bytes` attributed to `file` (the
    /// tiered router). Counts attribution only — the matching
    /// [`HeatMap::record_access`] from the read path carries the score.
    pub fn record_cloud_get(&self, file: u64, bytes: u64) {
        if let Some(slot) = self.slot_for(file, false) {
            slot.cloud_gets.fetch_add(1, Ordering::Relaxed);
            slot.cloud_get_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Record a persistent-cache hit attributed to `file`.
    pub fn record_cache_hit(&self, file: u64) {
        if let Some(slot) = self.slot_for(file, false) {
            slot.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one lookup of `key` into the coarse key-range heat buckets.
    pub fn record_range(&self, key: &[u8]) {
        let bucket = key.first().map(|&b| (b >> 2) as usize).unwrap_or(0) % RANGE_BUCKETS;
        self.bump(&self.range[bucket], SCORE_ONE);
    }

    /// Stop tracking `files` (deleted tables): their slots free up and
    /// their residency entries drop.
    pub fn forget_files(&self, files: &[u64]) {
        for &file in files {
            let key = file + 1;
            let start = self.slot_index(file);
            let mask = self.slots.len() - 1;
            for i in 0..PROBE_WINDOW.min(self.slots.len()) {
                let slot = &self.slots[(start + i) & mask];
                if slot.key.load(Ordering::Relaxed) == key {
                    slot.state.store(0, Ordering::Relaxed);
                    slot.accesses.store(0, Ordering::Relaxed);
                    slot.access_bytes.store(0, Ordering::Relaxed);
                    slot.cloud_gets.store(0, Ordering::Relaxed);
                    slot.cloud_get_bytes.store(0, Ordering::Relaxed);
                    slot.cache_hits.store(0, Ordering::Relaxed);
                    slot.key.store(0, Ordering::Release);
                    break;
                }
            }
        }
        self.residency.remove_files(files);
    }

    /// Decayed score of `file` as of the current tick (0 when untracked).
    pub fn score_of(&self, file: u64) -> f64 {
        let key = file + 1;
        let start = self.slot_index(file);
        let mask = self.slots.len() - 1;
        let now = self.tick.load(Ordering::Relaxed);
        for i in 0..PROBE_WINDOW.min(self.slots.len()) {
            let slot = &self.slots[(start + i) & mask];
            if slot.key.load(Ordering::Relaxed) == key {
                let (t, s) = unpack(slot.state.load(Ordering::Relaxed));
                return decay(s, t, now) as f64 / SCORE_ONE as f64;
            }
        }
        0.0
    }

    /// Point-in-time view: every tracked table (scores decayed to the
    /// current tick) sorted hottest-first and truncated to `top_n`, plus
    /// the key-range buckets and residency totals. `cache_backed_bytes`
    /// is supplied by the caller (the persistent cache knows its own
    /// footprint).
    pub fn snapshot(&self, top_n: usize, cache_backed_bytes: u64) -> HeatSnapshot {
        let now = self.tick.load(Ordering::Relaxed);
        let tiers = self.residency.tiers();
        let mut entries: Vec<HeatEntry> = Vec::new();
        for slot in self.slots.iter() {
            let key = slot.key.load(Ordering::Relaxed);
            if key == 0 {
                continue;
            }
            let file = key - 1;
            let (t, s) = unpack(slot.state.load(Ordering::Relaxed));
            entries.push(HeatEntry {
                file,
                score: decay(s, t, now) as f64 / SCORE_ONE as f64,
                accesses: slot.accesses.load(Ordering::Relaxed),
                access_bytes: slot.access_bytes.load(Ordering::Relaxed),
                cloud_gets: slot.cloud_gets.load(Ordering::Relaxed),
                cloud_get_bytes: slot.cloud_get_bytes.load(Ordering::Relaxed),
                cache_hits: slot.cache_hits.load(Ordering::Relaxed),
                tier: tiers.get(&file).map(|t| t.name().to_string()),
            });
        }
        entries.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        entries.truncate(top_n);
        let range = self
            .range
            .iter()
            .map(|cell| {
                let (t, s) = unpack(cell.load(Ordering::Relaxed));
                decay(s, t, now) as f64 / SCORE_ONE as f64
            })
            .collect();
        HeatSnapshot {
            tick: now,
            entries,
            range,
            dropped: self.dropped.load(Ordering::Relaxed),
            residency: self.residency.snapshot(cache_backed_bytes),
        }
    }
}

/// One table's row in a [`HeatSnapshot`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HeatEntry {
    /// SST file number.
    pub file: u64,
    /// Decayed access score as of the snapshot's tick.
    pub score: f64,
    /// Lifetime logical block reads.
    pub accesses: u64,
    /// Lifetime bytes of those reads.
    pub access_bytes: u64,
    /// Billed cloud GETs that served this table.
    pub cloud_gets: u64,
    /// Bytes fetched from the cloud for this table.
    pub cloud_get_bytes: u64,
    /// Persistent-cache hits that served this table.
    pub cache_hits: u64,
    /// Residency tier name (`local`/`cloud`), when known.
    #[serde(default)]
    pub tier: Option<String>,
}

impl HeatEntry {
    /// Fraction of this table's reads that went to the cloud.
    pub fn cloud_share(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.cloud_gets as f64 / self.accesses as f64
        }
    }
}

/// Per-tier residency totals at snapshot time.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResidencySnapshot {
    /// Live table files on the local tier.
    pub local_files: u64,
    /// Bytes of those files.
    pub local_bytes: u64,
    /// Live table files on the cloud tier.
    pub cloud_files: u64,
    /// Bytes of those files.
    pub cloud_bytes: u64,
    /// Bytes of cloud-resident data currently backed by the persistent
    /// cache (0 when no cache is configured).
    pub cache_backed_bytes: u64,
}

/// Point-in-time heat view: hottest tables, key-range buckets, residency.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HeatSnapshot {
    /// Decay tick the scores are normalized to.
    pub tick: u64,
    /// Tracked tables, hottest first.
    pub entries: Vec<HeatEntry>,
    /// Decayed score per key-range bucket (`first_byte >> 2`).
    pub range: Vec<f64>,
    /// Accesses dropped because the slot table was full.
    pub dropped: u64,
    /// Per-tier residency totals.
    pub residency: ResidencySnapshot,
}

impl HeatSnapshot {
    /// Hand-rolled JSON (see [`crate::json`]).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        let _ = write!(out, "\"tick\":{},\"dropped\":{},\"entries\":[", self.tick, self.dropped);
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":{},\"score\":{},\"accesses\":{},\"access_bytes\":{},\
                 \"cloud_gets\":{},\"cloud_get_bytes\":{},\"cache_hits\":{},\"tier\":{}}}",
                e.file,
                fmt_f64(e.score),
                e.accesses,
                e.access_bytes,
                e.cloud_gets,
                e.cloud_get_bytes,
                e.cache_hits,
                match &e.tier {
                    Some(t) => format!("\"{}\"", crate::json::escape(t)),
                    None => "null".to_string(),
                },
            );
        }
        out.push_str("],\"range\":[");
        for (i, v) in self.range.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&fmt_f64(*v));
        }
        let r = &self.residency;
        let _ = write!(
            out,
            "],\"residency\":{{\"local_files\":{},\"local_bytes\":{},\"cloud_files\":{},\
             \"cloud_bytes\":{},\"cache_backed_bytes\":{}}}}}",
            r.local_files, r.local_bytes, r.cloud_files, r.cloud_bytes, r.cache_backed_bytes,
        );
        out
    }

    /// Decode [`HeatSnapshot::to_json`] output.
    pub fn from_json_value(v: &Json) -> Result<HeatSnapshot, String> {
        let u64_of = |v: &Json, name: &str| {
            v.get(name).and_then(Json::as_u64).ok_or_else(|| format!("heat missing {name}"))
        };
        let mut entries = Vec::new();
        for e in v.get("entries").and_then(Json::elements).ok_or("heat missing entries")? {
            entries.push(HeatEntry {
                file: u64_of(e, "file")?,
                score: e.get("score").and_then(Json::as_f64).ok_or("heat entry missing score")?,
                accesses: u64_of(e, "accesses")?,
                access_bytes: u64_of(e, "access_bytes")?,
                cloud_gets: u64_of(e, "cloud_gets")?,
                cloud_get_bytes: u64_of(e, "cloud_get_bytes")?,
                cache_hits: u64_of(e, "cache_hits")?,
                tier: e.get("tier").and_then(Json::as_str).map(|s| s.to_string()),
            });
        }
        let range = v
            .get("range")
            .and_then(Json::elements)
            .ok_or("heat missing range")?
            .iter()
            .map(|x| x.as_f64().ok_or("range bucket not a number".to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        let r = v.get("residency").ok_or("heat missing residency")?;
        Ok(HeatSnapshot {
            tick: u64_of(v, "tick")?,
            dropped: u64_of(v, "dropped")?,
            entries,
            range,
            residency: ResidencySnapshot {
                local_files: u64_of(r, "local_files")?,
                local_bytes: u64_of(r, "local_bytes")?,
                cloud_files: u64_of(r, "cloud_files")?,
                cloud_bytes: u64_of(r, "cloud_bytes")?,
                cache_backed_bytes: u64_of(r, "cache_backed_bytes")?,
            },
        })
    }

    /// Parse a standalone JSON document.
    pub fn from_json(text: &str) -> Result<HeatSnapshot, String> {
        Self::from_json_value(&Json::parse(text)?)
    }
}

/// Per-tier residency accounting: which tier each live table file sits on
/// and how many bytes that adds up to. Updated on publish/migration/delete
/// transitions — never on the read hot path — so a mutex-guarded map is
/// the right tool.
#[derive(Debug, Default)]
pub struct Residency {
    files: Mutex<HashMap<u64, (u64, ResidencyTier)>>,
}

impl Residency {
    /// Place (or move) `file` of `bytes` on `tier`.
    pub fn set_tier(&self, file: u64, bytes: u64, tier: ResidencyTier) {
        self.files.lock().insert(file, (bytes, tier));
    }

    /// Forget `file` (deleted).
    pub fn remove(&self, file: u64) {
        self.files.lock().remove(&file);
    }

    /// Forget a batch of files.
    pub fn remove_files(&self, files: &[u64]) {
        let mut map = self.files.lock();
        for file in files {
            map.remove(file);
        }
    }

    /// The tier of `file`, when tracked.
    pub fn tier_of(&self, file: u64) -> Option<ResidencyTier> {
        self.files.lock().get(&file).map(|&(_, t)| t)
    }

    /// Current file → tier map (for snapshot labeling).
    fn tiers(&self) -> HashMap<u64, ResidencyTier> {
        self.files.lock().iter().map(|(&f, &(_, t))| (f, t)).collect()
    }

    /// Every tracked file as `(file, bytes, tier)`, sorted by file number.
    /// This is the inventory the tier-promotion pass plans against:
    /// residency is seeded from the recovered version at open and updated
    /// on every publish/migration/delete, so it enumerates the live SSTs
    /// without taking any engine lock.
    pub fn files(&self) -> Vec<(u64, u64, ResidencyTier)> {
        let mut out: Vec<(u64, u64, ResidencyTier)> =
            self.files.lock().iter().map(|(&f, &(b, t))| (f, b, t)).collect();
        out.sort_by_key(|&(f, _, _)| f);
        out
    }

    /// Aggregate totals.
    pub fn snapshot(&self, cache_backed_bytes: u64) -> ResidencySnapshot {
        let map = self.files.lock();
        let mut snap = ResidencySnapshot { cache_backed_bytes, ..ResidencySnapshot::default() };
        for &(bytes, tier) in map.values() {
            match tier {
                ResidencyTier::Local => {
                    snap.local_files += 1;
                    snap.local_bytes += bytes;
                }
                ResidencyTier::Cloud => {
                    snap.cloud_files += 1;
                    snap.cloud_bytes += bytes;
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_is_deterministic_under_a_fixed_clock() {
        let heat = HeatMap::new(64);
        for _ in 0..8 {
            heat.record_access(7, 4096);
        }
        assert_eq!(heat.score_of(7), 8.0);
        heat.advance_ticks(1);
        assert_eq!(heat.score_of(7), 4.0);
        heat.advance_ticks(2);
        assert_eq!(heat.score_of(7), 1.0);
        // Fresh accesses land on the decayed base, exactly.
        heat.record_access(7, 4096);
        assert_eq!(heat.score_of(7), 2.0);
        heat.advance_ticks(60);
        assert_eq!(heat.score_of(7), 0.0);
        // Lifetime counters never decay.
        let snap = heat.snapshot(10, 0);
        assert_eq!(snap.entries[0].accesses, 9);
    }

    #[test]
    fn hot_files_rank_above_cold_ones() {
        let heat = HeatMap::new(64);
        for _ in 0..100 {
            heat.record_access(1, 1024);
        }
        for _ in 0..3 {
            heat.record_access(2, 1024);
        }
        heat.record_access(3, 1024);
        let snap = heat.snapshot(2, 0);
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.entries[0].file, 1);
        assert_eq!(snap.entries[1].file, 2);
    }

    #[test]
    fn cloud_and_cache_attribution_tracks_per_file() {
        let heat = HeatMap::new(64);
        heat.record_access(5, 4096);
        heat.record_access(5, 4096);
        heat.record_cloud_get(5, 4096);
        heat.record_cache_hit(5);
        let snap = heat.snapshot(10, 0);
        let e = snap.entries.iter().find(|e| e.file == 5).expect("tracked");
        assert_eq!(e.accesses, 2);
        assert_eq!(e.cloud_gets, 1);
        assert_eq!(e.cloud_get_bytes, 4096);
        assert_eq!(e.cache_hits, 1);
        assert!((e.cloud_share() - 0.5).abs() < 1e-9);
        // Attribution alone must not inflate the decayed score.
        assert_eq!(e.score, 2.0);
    }

    #[test]
    fn full_table_evicts_cold_slots_not_hot_ones() {
        let heat = HeatMap::new(16);
        // Saturate every slot with warm files.
        for f in 0..16u64 {
            for _ in 0..4 {
                heat.record_access(f, 1);
            }
        }
        // Everything decays below one access; a new file steals a slot.
        heat.advance_ticks(8);
        heat.record_access(999, 1);
        assert_eq!(heat.score_of(999), 1.0);
        // With every slot hot, excess accesses are counted as dropped.
        let heat = HeatMap::new(16);
        for f in 0..64u64 {
            for _ in 0..4 {
                heat.record_access(f, 1);
            }
        }
        assert!(heat.dropped() > 0, "full hot table must drop, not evict");
    }

    #[test]
    fn forget_files_frees_slots_and_residency() {
        let heat = HeatMap::new(64);
        heat.record_access(9, 100);
        heat.residency().set_tier(9, 100, ResidencyTier::Cloud);
        heat.forget_files(&[9]);
        assert_eq!(heat.score_of(9), 0.0);
        assert_eq!(heat.residency().tier_of(9), None);
        assert!(heat.snapshot(10, 0).entries.is_empty());
    }

    #[test]
    fn range_buckets_accumulate_and_decay() {
        let heat = HeatMap::new(16);
        heat.record_range(b"apple");
        heat.record_range(b"apricot");
        heat.record_range(b"zebra");
        let snap = heat.snapshot(0, 0);
        let a = (b'a' >> 2) as usize;
        let z = (b'z' >> 2) as usize;
        assert_eq!(snap.range[a], 2.0);
        assert_eq!(snap.range[z], 1.0);
        heat.advance_ticks(1);
        let snap = heat.snapshot(0, 0);
        assert_eq!(snap.range[a], 1.0);
    }

    #[test]
    fn residency_transitions_move_bytes_between_tiers() {
        let r = Residency::default();
        r.set_tier(1, 1000, ResidencyTier::Local);
        r.set_tier(2, 2000, ResidencyTier::Cloud);
        let snap = r.snapshot(0);
        assert_eq!((snap.local_files, snap.local_bytes), (1, 1000));
        assert_eq!((snap.cloud_files, snap.cloud_bytes), (1, 2000));
        // Migration: local → cloud.
        r.set_tier(1, 1000, ResidencyTier::Cloud);
        let snap = r.snapshot(500);
        assert_eq!((snap.local_files, snap.local_bytes), (0, 0));
        assert_eq!((snap.cloud_files, snap.cloud_bytes), (2, 3000));
        assert_eq!(snap.cache_backed_bytes, 500);
        r.remove(2);
        assert_eq!(r.snapshot(0).cloud_bytes, 1000);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let heat = HeatMap::new(64);
        for _ in 0..5 {
            heat.record_access(3, 4096);
        }
        heat.record_cloud_get(3, 4096);
        heat.record_range(b"key");
        heat.residency().set_tier(3, 1 << 20, ResidencyTier::Cloud);
        heat.advance_ticks(1);
        let snap = heat.snapshot(10, 77);
        let back = HeatSnapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(back, snap);
        assert_eq!(back.entries[0].tier.as_deref(), Some("cloud"));
    }

    #[test]
    fn concurrent_recording_is_safe_and_lossless_when_sparse() {
        let heat = std::sync::Arc::new(HeatMap::new(256));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let heat = std::sync::Arc::clone(&heat);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        heat.record_access(t * 8 + (i % 8), 64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = heat.snapshot(64, 0);
        let total: u64 = snap.entries.iter().map(|e| e.accesses).sum();
        assert_eq!(total, 4000);
        let score: f64 = snap.entries.iter().map(|e| e.score).sum();
        assert_eq!(score, 4000.0);
    }
}
