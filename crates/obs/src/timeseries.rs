//! Bounded time-series over [`MetricsSnapshot`] samples, with windowed
//! rate queries.
//!
//! Placement and admission policies (and a human running `watch`) need
//! *rates* — ops/s right now, cloud GET bytes/s over the last minute —
//! not lifetime totals. [`TimeSeries`] keeps a fixed-capacity ring of
//! periodic counter samples (the stats-dump thread is the sampler) and
//! answers `delta / elapsed` over a trailing window by comparing the
//! newest sample against the oldest one still inside the window. Memory
//! is bounded by construction: when the ring is full the oldest sample
//! falls off, which simply shortens the longest answerable window.
//!
//! Timestamps are supplied by the caller (seconds since series start).
//! The production sampler passes wall-clock-derived values; tests pass
//! fixed ones, so window math is exact under test.

use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

use parking_lot::Mutex;

use crate::registry::MetricsSnapshot;

/// Default ring capacity: one sample per second for six minutes, enough
/// to answer the longest standard window (5m) with headroom.
pub const DEFAULT_RING_CAPACITY: usize = 360;

/// The standard trailing windows exported as `rate_*` families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateWindow {
    /// Last 10 seconds.
    Short,
    /// Last minute.
    Medium,
    /// Last five minutes.
    Long,
}

impl RateWindow {
    /// All standard windows, shortest first.
    pub const ALL: [RateWindow; 3] = [RateWindow::Short, RateWindow::Medium, RateWindow::Long];

    /// Window length in seconds.
    pub fn secs(self) -> f64 {
        match self {
            RateWindow::Short => 10.0,
            RateWindow::Medium => 60.0,
            RateWindow::Long => 300.0,
        }
    }

    /// Stable label for exports (`10s`/`1m`/`5m`).
    pub fn label(self) -> &'static str {
        match self {
            RateWindow::Short => "10s",
            RateWindow::Medium => "1m",
            RateWindow::Long => "5m",
        }
    }
}

/// One retained sample: counters (and the gauges, for completeness) at a
/// caller-supplied instant.
#[derive(Debug, Clone)]
struct Sample {
    at_secs: f64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

/// Windowed rates over the standard counter families, one value per
/// [`RateWindow`]. `None` means the ring doesn't yet span that window
/// (fewer than two samples inside it).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WindowRates {
    /// Foreground operations per second (gets + writes).
    pub ops_per_sec: Option<f64>,
    /// Cloud GET bytes per second.
    pub cloud_get_bytes_per_sec: Option<f64>,
    /// Cache hit rate over the window's lookups (0..=1).
    pub cache_hit_rate: Option<f64>,
    /// Fraction of wall time writers spent stalled (0..=1).
    pub stall_share: Option<f64>,
}

/// Fixed-capacity ring of periodic counter samples with rate queries.
#[derive(Debug)]
pub struct TimeSeries {
    start: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<Sample>>,
}

impl Default for TimeSeries {
    fn default() -> Self {
        Self::new(DEFAULT_RING_CAPACITY)
    }
}

impl TimeSeries {
    /// Series retaining the most recent `capacity` samples (minimum 2 —
    /// a rate needs two points).
    pub fn new(capacity: usize) -> TimeSeries {
        TimeSeries {
            start: Instant::now(),
            capacity: capacity.max(2),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Seconds since the series was created (the production timestamp
    /// for [`TimeSeries::push_at`]).
    pub fn now_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Record `snapshot` at the current time.
    pub fn push(&self, snapshot: &MetricsSnapshot) {
        self.push_at(self.now_secs(), snapshot);
    }

    /// Record `snapshot` at `at_secs` (monotonic, caller-supplied).
    /// Out-of-order samples are dropped — the ring stays sorted by
    /// construction so window scans never need to.
    pub fn push_at(&self, at_secs: f64, snapshot: &MetricsSnapshot) {
        let mut ring = self.ring.lock();
        if ring.back().map(|s| at_secs <= s.at_secs).unwrap_or(false) {
            return;
        }
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(Sample {
            at_secs,
            counters: snapshot.counters.clone(),
            gauges: snapshot.gauges.clone(),
        });
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Timestamp of the newest sample, if any.
    pub fn newest_secs(&self) -> Option<f64> {
        self.ring.lock().back().map(|s| s.at_secs)
    }

    /// The base sample for a trailing window: the oldest retained sample
    /// no older than `window_secs` before the newest. Returns the pair
    /// (base, newest) when at least two samples span a non-zero interval.
    fn window_pair(&self, window_secs: f64) -> Option<(Sample, Sample)> {
        let ring = self.ring.lock();
        let newest = ring.back()?;
        let cutoff = newest.at_secs - window_secs;
        let base = ring.iter().find(|s| s.at_secs >= cutoff)?;
        if base.at_secs >= newest.at_secs {
            return None;
        }
        Some((base.clone(), newest.clone()))
    }

    /// Increase of counter `name` over the trailing window, with the
    /// actual elapsed seconds between the two samples used. A decrease
    /// (process restart behind the same series) is treated as a reset:
    /// the newest value is the delta.
    pub fn delta_since(&self, name: &str, window_secs: f64) -> Option<(u64, f64)> {
        let (base, newest) = self.window_pair(window_secs)?;
        let old = base.counters.get(name).copied().unwrap_or(0);
        let new = newest.counters.get(name).copied().unwrap_or(0);
        let delta = if new >= old { new - old } else { new };
        Some((delta, newest.at_secs - base.at_secs))
    }

    /// Per-second rate of counter `name` over the trailing window.
    pub fn rate(&self, name: &str, window_secs: f64) -> Option<f64> {
        let (delta, elapsed) = self.delta_since(name, window_secs)?;
        (elapsed > 0.0).then(|| delta as f64 / elapsed)
    }

    /// `delta(numerator) / delta(denominator)` over the trailing window
    /// (e.g. cache hits over lookups). `None` when the denominator did
    /// not move.
    pub fn ratio(&self, numerator: &str, denominator: &str, window_secs: f64) -> Option<f64> {
        let (num, _) = self.delta_since(numerator, window_secs)?;
        let (den, _) = self.delta_since(denominator, window_secs)?;
        (den > 0).then(|| num as f64 / den as f64)
    }

    /// Latest value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.ring.lock().back().and_then(|s| s.gauges.get(name).copied())
    }

    /// Gauge `name` at the base and newest samples of the trailing window
    /// (the health doctor's trend queries: debt then vs. debt now). `None`
    /// unless both samples carry the gauge — a gauge that appeared
    /// mid-window has no trend yet.
    pub fn gauge_window(&self, name: &str, window_secs: f64) -> Option<(f64, f64)> {
        let (base, newest) = self.window_pair(window_secs)?;
        Some((*base.gauges.get(name)?, *newest.gauges.get(name)?))
    }

    /// The standard rate families over `window`, computed from the
    /// well-known engine counters.
    pub fn window_rates(&self, window: RateWindow) -> WindowRates {
        let w = window.secs();
        let ops = match (self.delta_since("engine_gets", w), self.delta_since("engine_writes", w)) {
            (Some((g, el)), Some((p, _))) if el > 0.0 => Some((g + p) as f64 / el),
            (Some((g, el)), None) if el > 0.0 => Some(g as f64 / el),
            (None, Some((p, el))) if el > 0.0 => Some(p as f64 / el),
            _ => None,
        };
        let stall_share = self
            .delta_since("stall_ns", w)
            .and_then(|(ns, el)| (el > 0.0).then(|| (ns as f64 / 1e9 / el).min(1.0)));
        let hits = self.delta_since("cache_hits", w);
        let misses = self.delta_since("cache_misses", w);
        let cache_hit_rate = match (hits, misses) {
            (Some((h, _)), Some((m, _))) if h + m > 0 => Some(h as f64 / (h + m) as f64),
            _ => None,
        };
        WindowRates {
            ops_per_sec: ops,
            cloud_get_bytes_per_sec: self.rate("cloud_bytes_read", w),
            cache_hit_rate,
            stall_share,
        }
    }

    /// All standard windows as `(label, rates)` rows, for exports.
    pub fn all_window_rates(&self) -> Vec<(&'static str, WindowRates)> {
        RateWindow::ALL.iter().map(|&w| (w.label(), self.window_rates(w))).collect()
    }

    /// Prometheus exposition of the standard windowed rates, one
    /// `rate_*` gauge family per quantity with a `window` label. Rates
    /// whose window the ring can't answer yet are omitted (absence, not
    /// a lying zero).
    pub fn to_prometheus(&self) -> String {
        type Family = (&'static str, &'static str, fn(&WindowRates) -> Option<f64>);
        let mut out = String::new();
        let families: [Family; 4] = [
            ("rate_ops_per_sec", "Foreground operations per second.", |r| r.ops_per_sec),
            ("rate_cloud_get_bytes_per_sec", "Cloud GET bytes per second.", |r| {
                r.cloud_get_bytes_per_sec
            }),
            ("rate_cache_hit_ratio", "Cache hit rate over the window.", |r| r.cache_hit_rate),
            ("rate_stall_share", "Fraction of wall time writers stalled.", |r| r.stall_share),
        ];
        let rows = self.all_window_rates();
        for (name, help, pick) in families {
            if !rows.iter().any(|(_, r)| pick(r).is_some()) {
                continue;
            }
            out.push_str(&format!("# HELP rocksmash_{name} {help}\n"));
            out.push_str(&format!("# TYPE rocksmash_{name} gauge\n"));
            for (label, rates) in &rows {
                if let Some(v) = pick(rates) {
                    out.push_str(&format!(
                        "rocksmash_{name}{{window=\"{label}\"}} {}\n",
                        crate::json::fmt_f64(v)
                    ));
                }
            }
        }
        out
    }

    /// Hand-rolled JSON for the `/timeseries.json` endpoint: the ring's
    /// retained samples (timestamps + counters) plus the standard rates.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let ring = self.ring.lock();
        let mut out = String::from("{\"samples\":[");
        for (i, s) in ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ =
                write!(out, "{{\"at_secs\":{},\"counters\":{{", crate::json::fmt_f64(s.at_secs));
            for (j, (k, v)) in s.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", crate::json::escape(k), v);
            }
            out.push_str("}}");
        }
        drop(ring);
        out.push_str("],\"rates\":{");
        for (i, (label, rates)) in self.all_window_rates().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let opt = |v: Option<f64>| match v {
                Some(v) => crate::json::fmt_f64(v),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "\"{}\":{{\"ops_per_sec\":{},\"cloud_get_bytes_per_sec\":{},\
                 \"cache_hit_rate\":{},\"stall_share\":{}}}",
                label,
                opt(rates.ops_per_sec),
                opt(rates.cloud_get_bytes_per_sec),
                opt(rates.cache_hit_rate),
                opt(rates.stall_share),
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, u64)]) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        for &(k, v) in pairs {
            s.counters.insert(k.to_string(), v);
        }
        s
    }

    #[test]
    fn rates_use_actual_elapsed_time_between_samples() {
        let ts = TimeSeries::new(16);
        ts.push_at(0.0, &snap(&[("engine_gets", 0)]));
        ts.push_at(2.0, &snap(&[("engine_gets", 100)]));
        assert_eq!(ts.rate("engine_gets", 10.0), Some(50.0));
        assert_eq!(ts.delta_since("engine_gets", 10.0), Some((100, 2.0)));
        // A narrower window that excludes the base sample has one point.
        ts.push_at(20.0, &snap(&[("engine_gets", 100)]));
        assert_eq!(ts.rate("engine_gets", 5.0), None);
    }

    #[test]
    fn window_selects_oldest_sample_inside_the_window() {
        let ts = TimeSeries::new(16);
        for (t, v) in [(0.0, 0u64), (5.0, 50), (10.0, 100), (15.0, 150)] {
            ts.push_at(t, &snap(&[("engine_gets", v)]));
        }
        // 10s window from t=15 reaches back to t=5: delta 100 over 10s.
        assert_eq!(ts.rate("engine_gets", 10.0), Some(10.0));
        // A huge window uses the very first sample.
        assert_eq!(ts.rate("engine_gets", 1000.0), Some(10.0));
    }

    #[test]
    fn ring_wraparound_shortens_the_answerable_window() {
        let ts = TimeSeries::new(4);
        for i in 0..10u64 {
            ts.push_at(i as f64, &snap(&[("engine_gets", i * 10)]));
        }
        assert_eq!(ts.len(), 4);
        // Only t=6..9 retained; a 1000s window can reach no further back.
        assert_eq!(ts.delta_since("engine_gets", 1000.0), Some((30, 3.0)));
        assert_eq!(ts.rate("engine_gets", 1000.0), Some(10.0));
    }

    #[test]
    fn counter_reset_is_treated_as_restart() {
        let ts = TimeSeries::new(8);
        ts.push_at(0.0, &snap(&[("engine_gets", 500)]));
        ts.push_at(10.0, &snap(&[("engine_gets", 40)]));
        assert_eq!(ts.delta_since("engine_gets", 60.0), Some((40, 10.0)));
    }

    #[test]
    fn out_of_order_samples_are_dropped() {
        let ts = TimeSeries::new(8);
        ts.push_at(5.0, &snap(&[("engine_gets", 50)]));
        ts.push_at(3.0, &snap(&[("engine_gets", 999)]));
        ts.push_at(5.0, &snap(&[("engine_gets", 999)]));
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn standard_window_rates_cover_all_families() {
        let ts = TimeSeries::new(16);
        ts.push_at(
            0.0,
            &snap(&[
                ("engine_gets", 0),
                ("engine_writes", 0),
                ("cloud_bytes_read", 0),
                ("cache_hits", 0),
                ("cache_misses", 0),
                ("stall_ns", 0),
            ]),
        );
        ts.push_at(
            5.0,
            &snap(&[
                ("engine_gets", 600),
                ("engine_writes", 400),
                ("cloud_bytes_read", 5_000_000),
                ("cache_hits", 75),
                ("cache_misses", 25),
                ("stall_ns", 1_000_000_000),
            ]),
        );
        let r = ts.window_rates(RateWindow::Short);
        assert_eq!(r.ops_per_sec, Some(200.0));
        assert_eq!(r.cloud_get_bytes_per_sec, Some(1_000_000.0));
        assert_eq!(r.cache_hit_rate, Some(0.75));
        assert_eq!(r.stall_share, Some(0.2));
    }

    #[test]
    fn ratio_handles_idle_denominator() {
        let ts = TimeSeries::new(8);
        ts.push_at(0.0, &snap(&[("cache_hits", 10), ("cache_misses", 10)]));
        ts.push_at(1.0, &snap(&[("cache_hits", 10), ("cache_misses", 10)]));
        assert_eq!(ts.ratio("cache_hits", "cache_misses", 60.0), None);
        let r = ts.window_rates(RateWindow::Short);
        assert_eq!(r.cache_hit_rate, None);
    }

    fn snap_g(counters: &[(&str, u64)], gauges: &[(&str, f64)]) -> MetricsSnapshot {
        let mut s = snap(counters);
        for &(k, v) in gauges {
            s.gauges.insert(k.to_string(), v);
        }
        s
    }

    #[test]
    fn gauge_window_returns_base_and_newest() {
        let ts = TimeSeries::new(8);
        ts.push_at(0.0, &snap_g(&[], &[("debt", 10.0)]));
        ts.push_at(5.0, &snap_g(&[], &[("debt", 20.0)]));
        ts.push_at(10.0, &snap_g(&[], &[("debt", 40.0)]));
        assert_eq!(ts.gauge_window("debt", 10.0), Some((10.0, 40.0)));
        assert_eq!(ts.gauge_window("debt", 5.0), Some((20.0, 40.0)));
        // Gauge absent from either endpoint: no trend.
        ts.push_at(15.0, &snap_g(&[], &[]));
        assert_eq!(ts.gauge_window("debt", 5.0), None);
        assert_eq!(ts.gauge("debt"), None);
    }

    #[test]
    fn exactly_full_ring_still_answers_its_longest_window() {
        // Capacity 4, exactly 4 samples pushed: no wrap has happened yet,
        // and the window spanning precisely the retained range answers.
        let ts = TimeSeries::new(4);
        for i in 0..4u64 {
            ts.push_at(i as f64, &snap(&[("engine_gets", i * 10)]));
        }
        assert_eq!(ts.len(), 4);
        // Window of exactly the retained span (3s) reaches the oldest
        // sample: cutoff is inclusive.
        assert_eq!(ts.delta_since("engine_gets", 3.0), Some((30, 3.0)));
        // One more push wraps: the oldest falls off, the answer shortens.
        ts.push_at(4.0, &snap(&[("engine_gets", 40)]));
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.delta_since("engine_gets", 1000.0), Some((30, 3.0)));
    }

    #[test]
    fn wrapped_ring_keeps_rates_continuous() {
        // Push far past capacity: every post-wrap query must keep using
        // the sliding retained window, with no seam at the wrap point.
        let ts = TimeSeries::new(8);
        for i in 0..100u64 {
            ts.push_at(i as f64, &snap(&[("engine_gets", i * 10)]));
            if i >= 8 {
                // Steady 10/s whatever the wrap position.
                assert_eq!(ts.rate("engine_gets", 7.0), Some(10.0));
                assert_eq!(ts.len(), 8);
            }
        }
    }

    #[test]
    fn gap_in_samples_yields_absent_not_zero() {
        // Sampler paused for longer than the ring retains: a short window
        // holds a single sample, and every rate answers None — never a
        // fabricated zero.
        let ts = TimeSeries::new(8);
        ts.push_at(0.0, &snap(&[("engine_gets", 0), ("stall_ns", 0)]));
        ts.push_at(1.0, &snap(&[("engine_gets", 10), ("stall_ns", 0)]));
        // 10-minute gap, then one sample.
        ts.push_at(601.0, &snap(&[("engine_gets", 20), ("stall_ns", 0)]));
        let r = ts.window_rates(RateWindow::Short);
        assert_eq!(r.ops_per_sec, None);
        assert_eq!(r.stall_share, None);
        assert_eq!(ts.rate("engine_gets", 10.0), None);
        assert_eq!(ts.gauge_window("anything", 10.0), None);
        // The long window still spans the gap and answers with the real
        // elapsed time, not the window length.
        assert_eq!(ts.delta_since("engine_gets", 3600.0), Some((20, 601.0)));
    }

    #[test]
    fn json_export_parses_and_carries_rates() {
        let ts = TimeSeries::new(8);
        ts.push_at(0.0, &snap(&[("engine_gets", 0)]));
        ts.push_at(2.0, &snap(&[("engine_gets", 100)]));
        let doc = crate::json::Json::parse(&ts.to_json()).expect("valid json");
        let samples = doc.get("samples").unwrap().elements().unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(
            samples[1].get("counters").unwrap().get("engine_gets").unwrap().as_u64(),
            Some(100)
        );
        let rates = doc.get("rates").unwrap().get("10s").unwrap();
        assert_eq!(rates.get("ops_per_sec").unwrap().as_f64(), Some(50.0));
    }
}
