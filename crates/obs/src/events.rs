//! Bounded structured event journal.
//!
//! Background activity in an LSM store — flushes, compactions, uploads,
//! stalls, evictions — is invisible in counters: a counter says *how many*
//! compactions ran, not *when*, at what level, or how long each took. The
//! journal keeps the last `capacity` events in a fixed ring so a stats dump
//! or a post-mortem can reconstruct the recent timeline.
//!
//! Publishing is cheap and never blocks behind readers: a single
//! `fetch_add` on the head reserves a slot, then the event is stored under
//! that slot's own tiny mutex (uncontended unless the ring wraps a full
//! lap onto an in-flight writer, which at realistic event rates it never
//! does). Draining snapshots the slots and returns events sorted by
//! timestamp.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::json::{escape, Json};
use crate::perf::PerfContext;

/// Default ring capacity: enough to hold hours of background activity at
/// realistic flush/compaction rates.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// A typed engine event. `dur_ns` fields are wall-clock durations of the
/// completed phase; byte fields are on-disk sizes.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
#[serde(tag = "type")]
pub enum EventKind {
    /// A memtable flush began.
    FlushStart,
    /// A memtable flush finished, producing a level-0 table.
    FlushEnd { bytes: u64, dur_ns: u64 },
    /// A compaction at `level` (its input level) began.
    CompactionStart { level: u32 },
    /// A compaction finished.
    CompactionEnd { level: u32, bytes_in: u64, bytes_out: u64, dur_ns: u64 },
    /// A table file migrated from the local tier to cloud storage.
    Upload { file: u64, bytes: u64, dur_ns: u64 },
    /// A writer stalled waiting for flush/compaction to make room.
    WriterStall { dur_ns: u64 },
    /// The persistent block cache evicted an extent to make room.
    CacheEvict { file: u64, slots: u64 },
    /// A readahead prefetch was dropped (queue full or fetch failed).
    PrefetchDrop { blocks: u64 },
    /// An operation exceeded its slow-op threshold (foreground ops use
    /// the foreground threshold, flush/compaction the higher background
    /// one). `trace_id` is 0 when the op carried no trace; `breakdown`
    /// is the op's captured perf context, when one was active.
    SlowOp {
        op: String,
        dur_ns: u64,
        #[serde(default)]
        trace_id: u64,
        #[serde(default)]
        breakdown: Option<Box<PerfContext>>,
    },
    /// A trace span opened. `parent_span_id` is 0 for root spans.
    SpanStart { trace_id: u64, span_id: u64, parent_span_id: u64, name: String },
    /// A trace span closed, `dur_ns` after its `SpanStart`.
    SpanEnd { trace_id: u64, span_id: u64, name: String, dur_ns: u64 },
    /// A cloud request failed transiently and is about to be retried
    /// (`attempt` is the try that just failed, 1-based).
    RetryAttempt { op: String, attempt: u64, backoff_us: u64 },
    /// A cloud request gave up after `attempts` tries (attempts, deadline,
    /// or retry budget exhausted).
    RetryExhausted { op: String, attempts: u64 },
    /// A background job (flush or compaction) failed. `context` names the
    /// job, `backoff_ms` is how long the scheduler will wait before
    /// retrying background work.
    BgError { context: String, error: String, backoff_ms: u64 },
    /// A tier-promotion pass began: the heat-aware policy decided to move
    /// `promote` cloud SSTs local and `demote` local SSTs to the cloud
    /// (counts after the per-pass caps were applied).
    PromotionStart { promote: u64, demote: u64 },
    /// A tier-promotion pass finished, having moved `promoted`+`demoted`
    /// files totalling `bytes` across tiers (`skipped` files vanished
    /// mid-pass, e.g. compacted away).
    PromotionDone { promoted: u64, demoted: u64, skipped: u64, bytes: u64, dur_ns: u64 },
    /// The health doctor raised a finding that was not active on the
    /// previous check (`severity` is its stable lowercase label). Cleared
    /// findings do not publish; the journal records onsets, not state.
    HealthFinding { rule: String, severity: String, summary: String },
    /// On-disk corruption was detected but tolerated (e.g. a bloom filter
    /// that failed to decode: reads continue without it). `context` names
    /// the corrupt structure, `detail` describes the instance.
    Corruption { context: String, detail: String },
}

impl EventKind {
    /// The `"type"` tag used in the JSON encoding.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::FlushStart => "FlushStart",
            EventKind::FlushEnd { .. } => "FlushEnd",
            EventKind::CompactionStart { .. } => "CompactionStart",
            EventKind::CompactionEnd { .. } => "CompactionEnd",
            EventKind::Upload { .. } => "Upload",
            EventKind::WriterStall { .. } => "WriterStall",
            EventKind::CacheEvict { .. } => "CacheEvict",
            EventKind::PrefetchDrop { .. } => "PrefetchDrop",
            EventKind::SlowOp { .. } => "SlowOp",
            EventKind::SpanStart { .. } => "SpanStart",
            EventKind::SpanEnd { .. } => "SpanEnd",
            EventKind::RetryAttempt { .. } => "RetryAttempt",
            EventKind::RetryExhausted { .. } => "RetryExhausted",
            EventKind::BgError { .. } => "BgError",
            EventKind::PromotionStart { .. } => "PromotionStart",
            EventKind::PromotionDone { .. } => "PromotionDone",
            EventKind::HealthFinding { .. } => "HealthFinding",
            EventKind::Corruption { .. } => "Corruption",
        }
    }

    fn write_fields(&self, out: &mut String) {
        match self {
            EventKind::FlushStart => {}
            EventKind::FlushEnd { bytes, dur_ns } => {
                out.push_str(&format!(",\"bytes\":{bytes},\"dur_ns\":{dur_ns}"));
            }
            EventKind::CompactionStart { level } => {
                out.push_str(&format!(",\"level\":{level}"));
            }
            EventKind::CompactionEnd { level, bytes_in, bytes_out, dur_ns } => {
                out.push_str(&format!(
                    ",\"level\":{level},\"bytes_in\":{bytes_in},\"bytes_out\":{bytes_out},\"dur_ns\":{dur_ns}"
                ));
            }
            EventKind::Upload { file, bytes, dur_ns } => {
                out.push_str(&format!(",\"file\":{file},\"bytes\":{bytes},\"dur_ns\":{dur_ns}"));
            }
            EventKind::WriterStall { dur_ns } => {
                out.push_str(&format!(",\"dur_ns\":{dur_ns}"));
            }
            EventKind::CacheEvict { file, slots } => {
                out.push_str(&format!(",\"file\":{file},\"slots\":{slots}"));
            }
            EventKind::PrefetchDrop { blocks } => {
                out.push_str(&format!(",\"blocks\":{blocks}"));
            }
            EventKind::SlowOp { op, dur_ns, trace_id, breakdown } => {
                out.push_str(&format!(
                    ",\"op\":\"{}\",\"dur_ns\":{dur_ns},\"trace_id\":{trace_id}",
                    escape(op)
                ));
                if let Some(b) = breakdown {
                    out.push_str(&format!(",\"breakdown\":{}", b.to_json()));
                }
            }
            EventKind::SpanStart { trace_id, span_id, parent_span_id, name } => {
                out.push_str(&format!(
                    ",\"trace_id\":{trace_id},\"span_id\":{span_id},\
                     \"parent_span_id\":{parent_span_id},\"name\":\"{}\"",
                    escape(name)
                ));
            }
            EventKind::SpanEnd { trace_id, span_id, name, dur_ns } => {
                out.push_str(&format!(
                    ",\"trace_id\":{trace_id},\"span_id\":{span_id},\"name\":\"{}\",\
                     \"dur_ns\":{dur_ns}",
                    escape(name)
                ));
            }
            EventKind::RetryAttempt { op, attempt, backoff_us } => {
                out.push_str(&format!(
                    ",\"op\":\"{}\",\"attempt\":{attempt},\"backoff_us\":{backoff_us}",
                    escape(op)
                ));
            }
            EventKind::RetryExhausted { op, attempts } => {
                out.push_str(&format!(",\"op\":\"{}\",\"attempts\":{attempts}", escape(op)));
            }
            EventKind::BgError { context, error, backoff_ms } => {
                out.push_str(&format!(
                    ",\"context\":\"{}\",\"error\":\"{}\",\"backoff_ms\":{backoff_ms}",
                    escape(context),
                    escape(error)
                ));
            }
            EventKind::PromotionStart { promote, demote } => {
                out.push_str(&format!(",\"promote\":{promote},\"demote\":{demote}"));
            }
            EventKind::PromotionDone { promoted, demoted, skipped, bytes, dur_ns } => {
                out.push_str(&format!(
                    ",\"promoted\":{promoted},\"demoted\":{demoted},\"skipped\":{skipped},\
                     \"bytes\":{bytes},\"dur_ns\":{dur_ns}"
                ));
            }
            EventKind::HealthFinding { rule, severity, summary } => {
                out.push_str(&format!(
                    ",\"rule\":\"{}\",\"severity\":\"{}\",\"summary\":\"{}\"",
                    escape(rule),
                    escape(severity),
                    escape(summary)
                ));
            }
            EventKind::Corruption { context, detail } => {
                out.push_str(&format!(
                    ",\"context\":\"{}\",\"detail\":\"{}\"",
                    escape(context),
                    escape(detail)
                ));
            }
        }
    }

    fn from_json(v: &Json) -> Result<EventKind, String> {
        let tag = v.get("type").and_then(Json::as_str).ok_or("event missing type tag")?;
        let u64_field = |name: &str| {
            v.get(name).and_then(Json::as_u64).ok_or_else(|| format!("{tag} missing {name}"))
        };
        let u32_field = |name: &str| {
            v.get(name).and_then(Json::as_u32).ok_or_else(|| format!("{tag} missing {name}"))
        };
        Ok(match tag {
            "FlushStart" => EventKind::FlushStart,
            "FlushEnd" => {
                EventKind::FlushEnd { bytes: u64_field("bytes")?, dur_ns: u64_field("dur_ns")? }
            }
            "CompactionStart" => EventKind::CompactionStart { level: u32_field("level")? },
            "CompactionEnd" => EventKind::CompactionEnd {
                level: u32_field("level")?,
                bytes_in: u64_field("bytes_in")?,
                bytes_out: u64_field("bytes_out")?,
                dur_ns: u64_field("dur_ns")?,
            },
            "Upload" => EventKind::Upload {
                file: u64_field("file")?,
                bytes: u64_field("bytes")?,
                dur_ns: u64_field("dur_ns")?,
            },
            "WriterStall" => EventKind::WriterStall { dur_ns: u64_field("dur_ns")? },
            "CacheEvict" => {
                EventKind::CacheEvict { file: u64_field("file")?, slots: u64_field("slots")? }
            }
            "PrefetchDrop" => EventKind::PrefetchDrop { blocks: u64_field("blocks")? },
            "SlowOp" => EventKind::SlowOp {
                op: v.get("op").and_then(Json::as_str).ok_or("SlowOp missing op")?.to_string(),
                dur_ns: u64_field("dur_ns")?,
                // Both fields are absent in journals written before perf
                // contexts existed; default rather than reject.
                trace_id: v.get("trace_id").and_then(Json::as_u64).unwrap_or(0),
                breakdown: match v.get("breakdown") {
                    None | Some(Json::Null) => None,
                    Some(b) => Some(Box::new(PerfContext::from_json(b)?)),
                },
            },
            "SpanStart" => EventKind::SpanStart {
                trace_id: u64_field("trace_id")?,
                span_id: u64_field("span_id")?,
                parent_span_id: u64_field("parent_span_id")?,
                name: v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("SpanStart missing name")?
                    .to_string(),
            },
            "SpanEnd" => EventKind::SpanEnd {
                trace_id: u64_field("trace_id")?,
                span_id: u64_field("span_id")?,
                name: v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("SpanEnd missing name")?
                    .to_string(),
                dur_ns: u64_field("dur_ns")?,
            },
            "RetryAttempt" => EventKind::RetryAttempt {
                op: v
                    .get("op")
                    .and_then(Json::as_str)
                    .ok_or("RetryAttempt missing op")?
                    .to_string(),
                attempt: u64_field("attempt")?,
                backoff_us: u64_field("backoff_us")?,
            },
            "RetryExhausted" => EventKind::RetryExhausted {
                op: v
                    .get("op")
                    .and_then(Json::as_str)
                    .ok_or("RetryExhausted missing op")?
                    .to_string(),
                attempts: u64_field("attempts")?,
            },
            "BgError" => EventKind::BgError {
                context: v
                    .get("context")
                    .and_then(Json::as_str)
                    .ok_or("BgError missing context")?
                    .to_string(),
                error: v
                    .get("error")
                    .and_then(Json::as_str)
                    .ok_or("BgError missing error")?
                    .to_string(),
                backoff_ms: u64_field("backoff_ms")?,
            },
            "PromotionStart" => EventKind::PromotionStart {
                promote: u64_field("promote")?,
                demote: u64_field("demote")?,
            },
            "PromotionDone" => EventKind::PromotionDone {
                promoted: u64_field("promoted")?,
                demoted: u64_field("demoted")?,
                skipped: u64_field("skipped")?,
                bytes: u64_field("bytes")?,
                dur_ns: u64_field("dur_ns")?,
            },
            "HealthFinding" => {
                let s = |name: &str| {
                    v.get(name)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("HealthFinding missing {name}"))
                };
                EventKind::HealthFinding {
                    rule: s("rule")?,
                    severity: s("severity")?,
                    summary: s("summary")?,
                }
            }
            "Corruption" => {
                let s = |name: &str| {
                    v.get(name)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("Corruption missing {name}"))
                };
                EventKind::Corruption { context: s("context")?, detail: s("detail")? }
            }
            other => return Err(format!("unknown event type {other:?}")),
        })
    }
}

/// A journal entry: a monotonically increasing sequence number, a
/// timestamp in nanoseconds since the journal was created, and the event.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Event {
    pub seq: u64,
    pub ts_ns: u64,
    #[serde(flatten)]
    pub kind: EventKind,
}

impl Event {
    /// Encode as one JSON object, e.g.
    /// `{"seq":3,"ts_ns":812345,"type":"FlushEnd","bytes":4096,"dur_ns":91}`.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"ts_ns\":{},\"type\":\"{}\"",
            self.seq,
            self.ts_ns,
            self.kind.tag()
        );
        self.kind.write_fields(&mut out);
        out.push('}');
        out
    }

    /// Decode an event from its JSON form.
    pub fn from_json(text: &str) -> Result<Event, String> {
        let v = Json::parse(text)?;
        Event::from_json_value(&v)
    }

    pub(crate) fn from_json_value(v: &Json) -> Result<Event, String> {
        Ok(Event {
            seq: v.get("seq").and_then(Json::as_u64).ok_or("event missing seq")?,
            ts_ns: v.get("ts_ns").and_then(Json::as_u64).ok_or("event missing ts_ns")?,
            kind: EventKind::from_json(v)?,
        })
    }
}

/// Bounded ring of recent [`Event`]s.
pub struct EventJournal {
    epoch: Instant,
    head: AtomicU64,
    slots: Vec<Mutex<Option<Event>>>,
}

impl EventJournal {
    /// Journal holding the most recent `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventJournal {
            epoch: Instant::now(),
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Journal with [`DEFAULT_JOURNAL_CAPACITY`] slots.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// Nanoseconds since the journal was created.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Publish an event, stamped with the current time.
    pub fn publish(&self, kind: EventKind) {
        self.publish_at(self.now_ns(), kind);
    }

    /// Publish an event with an explicit timestamp (e.g. the *start* time
    /// of a phase whose duration was measured separately).
    pub fn publish_at(&self, ts_ns: u64, kind: EventKind) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock() = Some(Event { seq, ts_ns, kind });
    }

    /// Total events ever published (including ones the ring has dropped).
    pub fn published(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Snapshot of the retained events, sorted by `(ts_ns, seq)`.
    pub fn events(&self) -> Vec<Event> {
        let mut out: Vec<Event> = self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        out.sort_by_key(|e| (e.ts_ns, e.seq));
        out
    }

    /// Remove and return the retained events, sorted by `(ts_ns, seq)`.
    pub fn drain(&self) -> Vec<Event> {
        let mut out: Vec<Event> = self.slots.iter().filter_map(|s| s.lock().take()).collect();
        out.sort_by_key(|e| (e.ts_ns, e.seq));
        out
    }

    /// Render the retained events as JSON lines (one event per line),
    /// without consuming them.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

impl Default for EventJournal {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventJournal")
            .field("capacity", &self.slots.len())
            .field("published", &self.published())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_in_timestamp_order() {
        let j = EventJournal::with_capacity(16);
        j.publish(EventKind::FlushStart);
        j.publish(EventKind::FlushEnd { bytes: 1024, dur_ns: 5000 });
        j.publish(EventKind::CompactionStart { level: 0 });
        let events = j.events();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| (w[0].ts_ns, w[0].seq) <= (w[1].ts_ns, w[1].seq)));
        assert_eq!(events[0].kind, EventKind::FlushStart);
        assert_eq!(events[2].kind, EventKind::CompactionStart { level: 0 });
    }

    #[test]
    fn ring_keeps_most_recent() {
        let j = EventJournal::with_capacity(4);
        for i in 0..10u64 {
            j.publish(EventKind::CacheEvict { file: i, slots: 1 });
        }
        let events = j.events();
        assert_eq!(events.len(), 4);
        assert_eq!(j.published(), 10);
        // The survivors are the last four published.
        let files: Vec<u64> = events
            .iter()
            .map(|e| match &e.kind {
                EventKind::CacheEvict { file, .. } => *file,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(files, vec![6, 7, 8, 9]);
    }

    #[test]
    fn drain_empties_the_ring() {
        let j = EventJournal::with_capacity(8);
        j.publish(EventKind::WriterStall { dur_ns: 123 });
        assert_eq!(j.drain().len(), 1);
        assert!(j.events().is_empty());
        assert_eq!(j.published(), 1);
    }

    #[test]
    fn every_event_kind_round_trips_through_json() {
        let kinds = vec![
            EventKind::FlushStart,
            EventKind::FlushEnd { bytes: 4096, dur_ns: 91 },
            EventKind::CompactionStart { level: 2 },
            EventKind::CompactionEnd { level: 1, bytes_in: 10, bytes_out: 7, dur_ns: 55 },
            EventKind::Upload { file: 12, bytes: 1 << 20, dur_ns: 777 },
            EventKind::WriterStall { dur_ns: 5 },
            EventKind::CacheEvict { file: 3, slots: 8 },
            EventKind::PrefetchDrop { blocks: 64 },
            EventKind::SlowOp {
                op: "get \"quoted\"".into(),
                dur_ns: u64::MAX,
                trace_id: 0,
                breakdown: None,
            },
            EventKind::SlowOp {
                op: "get".into(),
                dur_ns: 40_000_000,
                trace_id: 17,
                breakdown: Some(Box::new(PerfContext {
                    cloud_gets: 1,
                    cloud_get_ns: 39_000_000,
                    sst_read_ns: 900_000,
                    ..PerfContext::default()
                })),
            },
            EventKind::SpanStart {
                trace_id: 17,
                span_id: 17,
                parent_span_id: 0,
                name: "get".into(),
            },
            EventKind::SpanEnd { trace_id: 17, span_id: 18, name: "cloud_get".into(), dur_ns: 12 },
            EventKind::RetryAttempt { op: "put".into(), attempt: 2, backoff_us: 1500 },
            EventKind::RetryExhausted { op: "get".into(), attempts: 5 },
            EventKind::BgError {
                context: "flush".into(),
                error: "io error: \"disk full\"".into(),
                backoff_ms: 40,
            },
            EventKind::PromotionStart { promote: 3, demote: 2 },
            EventKind::PromotionDone {
                promoted: 3,
                demoted: 2,
                skipped: 1,
                bytes: 5 << 20,
                dur_ns: 9_000_000,
            },
            EventKind::HealthFinding {
                rule: "stall_spike".into(),
                severity: "critical".into(),
                summary: "writers stalled 41% of the last 10s (\"burst\")".into(),
            },
            EventKind::Corruption {
                context: "bloom-filter".into(),
                detail: "table 9: filter block failed to decode (\"k=0\")".into(),
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let event = Event { seq: i as u64, ts_ns: 1000 + i as u64, kind };
            let back = Event::from_json(&event.to_json()).expect("round trip");
            assert_eq!(back, event);
        }
    }

    #[test]
    fn slow_op_without_breakdown_parses_from_old_journals() {
        // A journal line written before trace ids and breakdowns existed.
        let old = "{\"seq\":4,\"ts_ns\":99,\"type\":\"SlowOp\",\"op\":\"get\",\"dur_ns\":123}";
        let event = Event::from_json(old).expect("old encoding still parses");
        assert_eq!(
            event.kind,
            EventKind::SlowOp { op: "get".into(), dur_ns: 123, trace_id: 0, breakdown: None }
        );
        // And the current encoding of that event parses back losslessly.
        assert_eq!(Event::from_json(&event.to_json()).unwrap(), event);
    }

    #[test]
    fn json_lines_parse_back() {
        let j = EventJournal::with_capacity(8);
        j.publish(EventKind::CompactionEnd {
            level: 1,
            bytes_in: 4096,
            bytes_out: 2048,
            dur_ns: 7_000,
        });
        j.publish(EventKind::SlowOp {
            op: "get".into(),
            dur_ns: 2_000_000,
            trace_id: 0,
            breakdown: None,
        });
        let lines = j.to_json_lines();
        let parsed: Vec<Event> = lines.lines().map(|l| Event::from_json(l).unwrap()).collect();
        assert_eq!(parsed, j.events());
        assert!(lines.contains("\"type\":\"CompactionEnd\""));
        assert!(lines.contains("\"type\":\"SlowOp\""));
    }

    #[test]
    fn concurrent_publish_is_safe() {
        let j = std::sync::Arc::new(EventJournal::with_capacity(128));
        let mut handles = vec![];
        for _ in 0..4 {
            let j = std::sync::Arc::clone(&j);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    j.publish(EventKind::PrefetchDrop { blocks: i });
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(j.published(), 4000);
        assert_eq!(j.events().len(), 128);
    }
}
