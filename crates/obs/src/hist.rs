//! Lock-free log-bucketed latency histogram (HdrHistogram-lite).
//!
//! Buckets are powers of two of nanoseconds with 16 linear sub-buckets
//! each, giving ≤ ~6% relative error on percentile reads — plenty for the
//! p50/p95/p99 rows the evaluation reports.
//!
//! Recording is wait-free: counts live in relaxed atomics sharded over a
//! small set of stripes (threads hash to a stripe, so concurrent writers
//! rarely touch the same cache lines), and the only coordination is
//! `fetch_add`/`fetch_min`/`fetch_max`. Reads ([`LatencyHistogram::snapshot`])
//! sum the stripes into an immutable [`HistogramSnapshot`] that answers
//! percentile queries.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const SUB: usize = 16;
const BUCKETS: usize = 40; // up to ~2^40 ns ≈ 18 minutes
const SLOTS: usize = BUCKETS * SUB;
/// Count stripes. A small power of two: enough to keep concurrent writers
/// off each other's cache lines, small enough that snapshot merges and the
/// memory footprint stay trivial.
const STRIPES: usize = 4;

struct Stripe {
    counts: Box<[AtomicU64; SLOTS]>,
    total: AtomicU64,
    /// Wrapping sum of samples; `u64` holds ~584 years of summed
    /// nanoseconds, so wrap only occurs for adversarial inputs.
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    min_ns: AtomicU64,
}

impl Stripe {
    fn new() -> Stripe {
        Stripe {
            counts: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            total: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
        }
    }
}

/// Which stripe this thread records into. Assigned round-robin at first
/// use so writer threads spread evenly.
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

/// Lock-free latency histogram over nanosecond samples.
pub struct LatencyHistogram {
    stripes: [Stripe; STRIPES],
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { stripes: std::array::from_fn(|_| Stripe::new()) }
    }

    fn index(ns: u64) -> usize {
        let ns = ns.max(1);
        let bucket = (63 - ns.leading_zeros()) as usize;
        let bucket = bucket.min(BUCKETS - 1);
        let base = 1u64 << bucket;
        let sub = if bucket == 0 {
            0
        } else {
            ((ns - base) as u128 * SUB as u128 / base as u128) as usize
        };
        bucket * SUB + sub.min(SUB - 1)
    }

    fn bucket_value(index: usize) -> u64 {
        let bucket = index / SUB;
        let sub = (index % SUB) as u64;
        let base = 1u64 << bucket;
        // Midpoint of the sub-bucket.
        base + base * sub / SUB as u64 + base / (2 * SUB as u64)
    }

    /// Record one sample in nanoseconds. Wait-free; callable from any
    /// thread through a shared reference.
    pub fn record(&self, ns: u64) {
        let stripe = &self.stripes[stripe_index()];
        stripe.counts[Self::index(ns)].fetch_add(1, Ordering::Relaxed);
        stripe.total.fetch_add(1, Ordering::Relaxed);
        stripe.sum_ns.fetch_add(ns, Ordering::Relaxed);
        stripe.max_ns.fetch_max(ns, Ordering::Relaxed);
        stripe.min_ns.fetch_min(ns, Ordering::Relaxed);
    }

    /// Record a `std::time::Duration` sample.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Merge another histogram's current contents into this one.
    pub fn merge(&self, other: &LatencyHistogram) {
        self.absorb(&other.snapshot());
    }

    /// Merge a snapshot into this histogram (all into stripe 0; merges are
    /// read-path operations, not hot).
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        if snap.total == 0 {
            return;
        }
        let stripe = &self.stripes[0];
        for (slot, &c) in snap.counts.iter().enumerate() {
            if c > 0 {
                stripe.counts[slot].fetch_add(c, Ordering::Relaxed);
            }
        }
        stripe.total.fetch_add(snap.total, Ordering::Relaxed);
        stripe.sum_ns.fetch_add(snap.sum_ns, Ordering::Relaxed);
        stripe.max_ns.fetch_max(snap.max_ns, Ordering::Relaxed);
        stripe.min_ns.fetch_min(snap.min_ns, Ordering::Relaxed);
    }

    /// Immutable point-in-time copy answering percentile queries.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; SLOTS];
        let mut total = 0u64;
        let mut sum_ns = 0u64;
        let mut max_ns = 0u64;
        let mut min_ns = u64::MAX;
        for stripe in &self.stripes {
            for (slot, c) in stripe.counts.iter().enumerate() {
                counts[slot] += c.load(Ordering::Relaxed);
            }
            total += stripe.total.load(Ordering::Relaxed);
            sum_ns = sum_ns.wrapping_add(stripe.sum_ns.load(Ordering::Relaxed));
            max_ns = max_ns.max(stripe.max_ns.load(Ordering::Relaxed));
            min_ns = min_ns.min(stripe.min_ns.load(Ordering::Relaxed));
        }
        HistogramSnapshot { counts, total, sum_ns, max_ns, min_ns }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.stripes.iter().map(|s| s.total.load(Ordering::Relaxed)).sum()
    }

    /// Mean in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        self.snapshot().mean_ns()
    }

    /// Largest sample seen (exact).
    pub fn max_ns(&self) -> u64 {
        self.snapshot().max_ns()
    }

    /// Smallest sample seen (exact).
    pub fn min_ns(&self) -> u64 {
        self.snapshot().min_ns()
    }

    /// Approximate `p`-th percentile in nanoseconds, `p` in [0, 100].
    pub fn percentile_ns(&self, p: f64) -> u64 {
        self.snapshot().percentile_ns(p)
    }

    /// Compact one-line summary (microseconds).
    pub fn summary(&self) -> String {
        self.snapshot().summary()
    }

    /// Reset every stripe to the empty state. Samples recorded
    /// concurrently with a reset may be partially lost; the histogram
    /// stays internally consistent for statistics purposes.
    pub fn reset(&self) {
        for stripe in &self.stripes {
            for c in stripe.counts.iter() {
                c.store(0, Ordering::Relaxed);
            }
            stripe.total.store(0, Ordering::Relaxed);
            stripe.sum_ns.store(0, Ordering::Relaxed);
            stripe.max_ns.store(0, Ordering::Relaxed);
            stripe.min_ns.store(u64::MAX, Ordering::Relaxed);
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for LatencyHistogram {
    fn clone(&self) -> Self {
        let fresh = LatencyHistogram::new();
        fresh.absorb(&self.snapshot());
        fresh
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LatencyHistogram {{ {} }}", self.summary())
    }
}

/// Point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u64,
    max_ns: u64,
    min_ns: u64,
}

impl HistogramSnapshot {
    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Largest sample seen (exact).
    pub fn max_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max_ns
        }
    }

    /// Smallest sample seen (exact).
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Approximate `p`-th percentile in nanoseconds, `p` in [0, 100].
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return LatencyHistogram::bucket_value(i);
            }
        }
        self.max_ns
    }

    /// Compact one-line summary (microseconds).
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.1}us p50={:.1}us p95={:.1}us p99={:.1}us max={:.1}us",
            self.total,
            self.mean_ns() / 1000.0,
            self.percentile_ns(50.0) as f64 / 1000.0,
            self.percentile_ns(95.0) as f64 / 1000.0,
            self.percentile_ns(99.0) as f64 / 1000.0,
            self.max_ns() as f64 / 1000.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.percentile_ns(99.0), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.min_ns(), 0);
    }

    #[test]
    fn single_sample() {
        let h = LatencyHistogram::new();
        h.record(1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_ns(), 1000);
        assert_eq!(h.min_ns(), 1000);
        let p50 = h.percentile_ns(50.0);
        assert!((900..=1100).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn zero_and_max_samples_do_not_panic() {
        let h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), u64::MAX);
        assert!(h.percentile_ns(100.0) > 0);
        // Percentiles stay ordered even at the extremes.
        assert!(h.percentile_ns(50.0) <= h.percentile_ns(99.0));
    }

    #[test]
    fn percentiles_are_monotonic_and_bounded() {
        let h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 100);
        }
        let p50 = h.percentile_ns(50.0);
        let p95 = h.percentile_ns(95.0);
        let p99 = h.percentile_ns(99.0);
        let max = h.max_ns();
        assert!(p50 <= p95 && p95 <= p99 && p99 <= max);
        // Within ~7% of the true values.
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.08, "p50 {p50}");
        assert!((p99 as f64 - 990_000.0).abs() / 990_000.0 < 0.08, "p99 {p99}");
    }

    #[test]
    fn relative_error_is_bounded_on_bucket_boundaries() {
        // A histogram holding exactly one sample reads that sample back
        // within the documented ≤ ~6% relative error (1/SUB with a
        // half-sub-bucket midpoint correction), across the full range of
        // magnitudes.
        for shift in 1..40u32 {
            for tweak in [0u64, 1, 7] {
                let v = (1u64 << shift) + tweak * ((1u64 << shift) / 16);
                let h = LatencyHistogram::new();
                h.record(v);
                let read = h.percentile_ns(50.0);
                let err = (read as f64 - v as f64).abs() / v as f64;
                assert!(err <= 0.0625, "value {v}: read {read}, err {err}");
            }
        }
    }

    fn xorshift(x: &mut u64) -> u64 {
        *x ^= *x << 13;
        *x ^= *x >> 7;
        *x ^= *x << 17;
        *x
    }

    #[test]
    fn percentile_error_bounded_on_random_samples() {
        // Random samples spread across six decades, checked against the
        // exact sorted-order percentiles: the documented ≤ ~6% relative
        // error must hold away from bucket boundaries too.
        let h = LatencyHistogram::new();
        let mut samples = Vec::new();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..10_000 {
            let magnitude = 10u64.pow((xorshift(&mut x) % 6) as u32 + 3);
            let v = xorshift(&mut x) % magnitude + 1;
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            // The same rank the histogram walk targets, as an exact
            // order statistic.
            let rank = ((p / 100.0) * samples.len() as f64).ceil().max(1.0) as usize;
            let exact = samples[rank - 1] as f64;
            let approx = h.percentile_ns(p) as f64;
            let err = (approx - exact).abs() / exact;
            assert!(err < 0.07, "p{p}: exact {exact}, approx {approx}, err {err:.4}");
        }
    }

    #[test]
    fn absorb_round_trips_snapshots_losslessly() {
        let a = LatencyHistogram::new();
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..5000 {
            a.record(xorshift(&mut x) % 1_000_000_000 + 1);
        }
        let snap = a.snapshot();
        let b = LatencyHistogram::new();
        b.absorb(&snap);
        assert_eq!(b.snapshot(), snap, "absorb must reproduce the snapshot exactly");
        // A second absorb doubles every count but keeps the extremes and
        // percentile positions.
        b.absorb(&snap);
        let doubled = b.snapshot();
        assert_eq!(doubled.count(), 2 * snap.count());
        assert_eq!(doubled.max_ns(), snap.max_ns());
        assert_eq!(doubled.min_ns(), snap.min_ns());
        assert_eq!(doubled.percentile_ns(50.0), snap.percentile_ns(50.0));
        assert_eq!(doubled.percentile_ns(99.0), snap.percentile_ns(99.0));
    }

    #[test]
    fn mean_is_exact() {
        let h = LatencyHistogram::new();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        assert!((h.mean_ns() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(100);
        b.record(10_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 10_000);
        assert_eq!(a.min_ns(), 100);
        // Percentile mass from both sides is visible.
        assert!(a.percentile_ns(99.0) >= 9_000);
        assert!(a.percentile_ns(1.0) <= 200);
    }

    #[test]
    fn merge_preserves_counts_and_sum() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for i in 1..=100u64 {
            a.record(i * 10);
            b.record(i * 1000);
        }
        let mean_a = a.mean_ns();
        let mean_b = b.mean_ns();
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert!((a.mean_ns() - (mean_a + mean_b) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let mut handles = vec![];
        for t in 0..8 {
            let h = std::sync::Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    h.record((t + 1) * 100 + i % 50);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 80_000);
    }

    #[test]
    fn clone_and_reset() {
        let h = LatencyHistogram::new();
        h.record(500);
        let copy = h.clone();
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(copy.count(), 1);
        assert_eq!(copy.max_ns(), 500);
    }
}
