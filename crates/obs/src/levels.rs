//! Per-level amplification accounting: the snapshot types shared by the
//! engine (which maintains the live counters at version-edit-apply time)
//! and every export surface (stats string, JSON, Prometheus, CLI).
//!
//! The questions this table answers are the paper's own: every byte of
//! write amplification becomes a cloud PUT dollar, every extra sorted run
//! a GET probe. [`LevelStats`] is one level's row — shape (files, bytes,
//! score), byte flows (flush / compaction / subcompaction writes, reads,
//! moves), and the per-tier residency split filled in by the tiered
//! layer. [`LevelTable`] aggregates rows into the derived amplification
//! factors and the compaction debt the health doctor watches.

use crate::json::{escape, fmt_f64, Json};

/// Accounting row for one LSM level.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LevelStats {
    /// Level index (0 = memtable flush target).
    pub level: usize,
    /// Live file count.
    pub files: u64,
    /// Live bytes.
    pub bytes: u64,
    /// Compaction pressure score (≥ 1.0 means the level wants compaction;
    /// the last level is never scored).
    pub score: f64,
    /// Bytes written into this level by memtable flushes (L0 only).
    pub flush_bytes: u64,
    /// Bytes that arrived from the level above as compaction input (the
    /// denominator of this level's W-amp).
    pub ingest_bytes: u64,
    /// Total bytes read by compactions writing into this level (inputs
    /// from both the upper and this level).
    pub compact_bytes_read: u64,
    /// Bytes written into this level by compactions.
    pub compact_bytes_written: u64,
    /// Subset of `compact_bytes_written` produced by parallel
    /// subcompaction workers (split jobs).
    pub subcompact_bytes_written: u64,
    /// Bytes moved into this level without a rewrite (trivial moves; this
    /// engine rewrites every compaction input, so currently always 0).
    pub moved_bytes: u64,
    /// Compactions that wrote into this level.
    pub compactions: u64,
    /// Live bytes resident on the local tier (filled by the tiered layer;
    /// 0 for a plain engine).
    #[serde(default)]
    pub local_bytes: u64,
    /// Live bytes resident on the cloud tier (filled by the tiered layer).
    #[serde(default)]
    pub cloud_bytes: u64,
}

impl LevelStats {
    /// Total bytes ever written into this level (flush + compaction +
    /// moves).
    pub fn written_bytes(&self) -> u64 {
        self.flush_bytes + self.compact_bytes_written + self.moved_bytes
    }

    /// Per-level write amplification: bytes written into the level per
    /// byte arriving from the level above (flush bytes for L0). 0.0 when
    /// nothing has arrived yet.
    pub fn write_amp(&self) -> f64 {
        let ingest = if self.level == 0 { self.flush_bytes } else { self.ingest_bytes };
        if ingest == 0 {
            0.0
        } else {
            self.written_bytes() as f64 / ingest as f64
        }
    }
}

/// The whole per-level accounting table plus the derived aggregates.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LevelTable {
    /// One row per level, L0 first.
    pub levels: Vec<LevelStats>,
    /// Bytes of compaction work outstanding: L0 bytes once the level is
    /// at/over its trigger, plus each deeper level's overage beyond its
    /// byte budget. The doctor watches this for unbounded growth.
    pub compaction_debt_bytes: u64,
}

impl LevelTable {
    /// Total flush bytes (user bytes entering the tree).
    pub fn total_flush_bytes(&self) -> u64 {
        self.levels.iter().map(|l| l.flush_bytes).sum()
    }

    /// Total bytes written by compactions across all levels.
    pub fn total_compact_bytes_written(&self) -> u64 {
        self.levels.iter().map(|l| l.compact_bytes_written).sum()
    }

    /// Total bytes read by compactions across all levels.
    pub fn total_compact_bytes_read(&self) -> u64 {
        self.levels.iter().map(|l| l.compact_bytes_read).sum()
    }

    /// Total live bytes.
    pub fn total_bytes(&self) -> u64 {
        self.levels.iter().map(|l| l.bytes).sum()
    }

    /// Total bytes ever written to storage (flush + compaction + moves).
    pub fn total_written_bytes(&self) -> u64 {
        self.levels.iter().map(LevelStats::written_bytes).sum()
    }

    /// Overall write amplification: storage bytes written per user byte
    /// flushed. 0.0 before the first flush.
    pub fn write_amp(&self) -> f64 {
        let flush = self.total_flush_bytes();
        if flush == 0 {
            0.0
        } else {
            self.total_written_bytes() as f64 / flush as f64
        }
    }

    /// Read amplification as the number of sorted runs a point lookup may
    /// probe: every L0 file is its own run, each non-empty deeper level
    /// is one.
    pub fn read_amp(&self) -> u64 {
        let l0 = self.levels.first().map(|l| l.files).unwrap_or(0);
        let deeper = self.levels.iter().skip(1).filter(|l| l.bytes > 0).count() as u64;
        l0 + deeper
    }

    /// Space amplification: total live bytes over the bottom-most
    /// non-empty level's bytes (the logical dataset lower bound). 1.0
    /// when empty.
    pub fn space_amp(&self) -> f64 {
        let last = self.levels.iter().rev().find(|l| l.bytes > 0).map(|l| l.bytes).unwrap_or(0);
        if last == 0 {
            1.0
        } else {
            self.total_bytes() as f64 / last as f64
        }
    }

    /// True once any per-tier residency split has been filled in (the
    /// tiered layer did; a plain engine leaves both columns 0).
    pub fn has_tier_split(&self) -> bool {
        self.levels.iter().any(|l| l.local_bytes > 0 || l.cloud_bytes > 0)
    }

    /// RocksDB-style human table: one row per level, a Sum row, and the
    /// derived amplification line.
    pub fn render(&self) -> String {
        const MB: f64 = 1048576.0;
        let tiered = self.has_tier_split();
        let mut out = String::from("** Level stats **\n");
        out.push_str(&format!(
            "{:<6} {:>6} {:>10} {:>6} {:>10} {:>10} {:>10} {:>6} {:>4}",
            "level",
            "files",
            "size(MB)",
            "score",
            "write(MB)",
            "read(MB)",
            "sub(MB)",
            "w-amp",
            "cmp"
        ));
        if tiered {
            out.push_str(&format!(" {:>10} {:>10}", "local(MB)", "cloud(MB)"));
        }
        out.push('\n');
        let mut row = |label: String, l: &LevelStats, score: Option<f64>| {
            out.push_str(&format!(
                "{:<6} {:>6} {:>10.1} {:>6} {:>10.1} {:>10.1} {:>10.1} {:>6.1} {:>4}",
                label,
                l.files,
                l.bytes as f64 / MB,
                score.map(|s| format!("{s:.2}")).unwrap_or_else(|| "-".to_string()),
                l.written_bytes() as f64 / MB,
                l.compact_bytes_read as f64 / MB,
                l.subcompact_bytes_written as f64 / MB,
                l.write_amp(),
                l.compactions,
            ));
            if tiered {
                out.push_str(&format!(
                    " {:>10.1} {:>10.1}",
                    l.local_bytes as f64 / MB,
                    l.cloud_bytes as f64 / MB
                ));
            }
            out.push('\n');
        };
        let mut sum = LevelStats::default();
        for l in &self.levels {
            sum.files += l.files;
            sum.bytes += l.bytes;
            sum.flush_bytes += l.flush_bytes;
            sum.ingest_bytes += l.ingest_bytes;
            sum.compact_bytes_read += l.compact_bytes_read;
            sum.compact_bytes_written += l.compact_bytes_written;
            sum.subcompact_bytes_written += l.subcompact_bytes_written;
            sum.moved_bytes += l.moved_bytes;
            sum.compactions += l.compactions;
            sum.local_bytes += l.local_bytes;
            sum.cloud_bytes += l.cloud_bytes;
            row(format!("L{}", l.level), l, Some(l.score));
        }
        // The Sum row's W-amp is the overall figure, not the per-level
        // formula (sum.level == 0 would divide by flush bytes anyway).
        row("sum".to_string(), &sum, None);
        out.push_str(&format!(
            "w-amp {:.2}  r-amp {}  space-amp {:.2}  compaction-debt(MB) {:.1}\n",
            self.write_amp(),
            self.read_amp(),
            self.space_amp(),
            self.compaction_debt_bytes as f64 / MB,
        ));
        out
    }

    /// Hand-rolled JSON document (object with `levels` + aggregates).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"levels\":[");
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"level\":{},\"files\":{},\"bytes\":{},\"score\":{},\"flush_bytes\":{},\
                 \"ingest_bytes\":{},\"compact_bytes_read\":{},\"compact_bytes_written\":{},\
                 \"subcompact_bytes_written\":{},\"moved_bytes\":{},\"compactions\":{},\
                 \"local_bytes\":{},\"cloud_bytes\":{},\"write_amp\":{}}}",
                l.level,
                l.files,
                l.bytes,
                fmt_f64(l.score),
                l.flush_bytes,
                l.ingest_bytes,
                l.compact_bytes_read,
                l.compact_bytes_written,
                l.subcompact_bytes_written,
                l.moved_bytes,
                l.compactions,
                l.local_bytes,
                l.cloud_bytes,
                fmt_f64(l.write_amp()),
            );
        }
        let _ = write!(
            out,
            "],\"compaction_debt_bytes\":{},\"write_amp\":{},\"read_amp\":{},\"space_amp\":{}}}",
            self.compaction_debt_bytes,
            fmt_f64(self.write_amp()),
            self.read_amp(),
            fmt_f64(self.space_amp()),
        );
        out
    }

    /// Decode a table from a parsed JSON value (the inverse of
    /// [`LevelTable::to_json`]; derived aggregate fields are recomputed,
    /// not trusted).
    pub fn from_json_value(v: &Json) -> Result<LevelTable, String> {
        let rows = v.get("levels").and_then(Json::elements).ok_or("level table missing levels")?;
        let mut levels = Vec::with_capacity(rows.len());
        for row in rows {
            let u = |name: &str| {
                row.get(name)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("level row missing {name}"))
            };
            levels.push(LevelStats {
                level: u("level")? as usize,
                files: u("files")?,
                bytes: u("bytes")?,
                score: row.get("score").and_then(Json::as_f64).unwrap_or(0.0),
                flush_bytes: u("flush_bytes")?,
                ingest_bytes: u("ingest_bytes")?,
                compact_bytes_read: u("compact_bytes_read")?,
                compact_bytes_written: u("compact_bytes_written")?,
                subcompact_bytes_written: u("subcompact_bytes_written")?,
                moved_bytes: u("moved_bytes")?,
                compactions: u("compactions")?,
                local_bytes: row.get("local_bytes").and_then(Json::as_u64).unwrap_or(0),
                cloud_bytes: row.get("cloud_bytes").and_then(Json::as_u64).unwrap_or(0),
            });
        }
        let compaction_debt_bytes =
            v.get("compaction_debt_bytes").and_then(Json::as_u64).unwrap_or(0);
        Ok(LevelTable { levels, compaction_debt_bytes })
    }

    /// Parse a document produced by [`LevelTable::to_json`].
    pub fn from_json(text: &str) -> Result<LevelTable, String> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// Prometheus exposition: `level_*` families with a `level` label and
    /// the derived `amp_*` gauges. Empty table emits nothing.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        if self.levels.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        type Family = (&'static str, &'static str, &'static str, fn(&LevelStats) -> f64);
        let families: [Family; 8] = [
            ("level_files", "gauge", "Live files per level.", |l| l.files as f64),
            ("level_bytes", "gauge", "Live bytes per level.", |l| l.bytes as f64),
            ("level_score", "gauge", "Compaction pressure score per level.", |l| l.score),
            ("level_flush_bytes_total", "counter", "Bytes flushed into the level.", |l| {
                l.flush_bytes as f64
            }),
            (
                "level_compact_read_bytes_total",
                "counter",
                "Bytes read by compactions writing into the level.",
                |l| l.compact_bytes_read as f64,
            ),
            (
                "level_compact_write_bytes_total",
                "counter",
                "Bytes written into the level by compactions.",
                |l| l.compact_bytes_written as f64,
            ),
            (
                "level_subcompact_write_bytes_total",
                "counter",
                "Bytes written into the level by parallel subcompaction workers.",
                |l| l.subcompact_bytes_written as f64,
            ),
            ("level_compactions_total", "counter", "Compactions that wrote into the level.", |l| {
                l.compactions as f64
            }),
        ];
        for (name, kind, help, pick) in families {
            let _ = write!(out, "# HELP rocksmash_{name} {help}\n# TYPE rocksmash_{name} {kind}\n");
            for l in &self.levels {
                let _ =
                    writeln!(out, "rocksmash_{name}{{level=\"{}\"}} {}", l.level, fmt_f64(pick(l)));
            }
        }
        if self.has_tier_split() {
            out.push_str(
                "# HELP rocksmash_level_tier_bytes Live bytes per level split by tier.\n\
                 # TYPE rocksmash_level_tier_bytes gauge\n",
            );
            for l in &self.levels {
                let _ = writeln!(
                    out,
                    "rocksmash_level_tier_bytes{{level=\"{}\",tier=\"local\"}} {}",
                    l.level, l.local_bytes
                );
                let _ = writeln!(
                    out,
                    "rocksmash_level_tier_bytes{{level=\"{}\",tier=\"cloud\"}} {}",
                    l.level, l.cloud_bytes
                );
            }
        }
        let _ = write!(
            out,
            "# HELP rocksmash_amp_write Overall write amplification (storage bytes per flushed byte).\n\
             # TYPE rocksmash_amp_write gauge\n\
             rocksmash_amp_write {}\n\
             # HELP rocksmash_amp_read Sorted runs a point lookup may probe.\n\
             # TYPE rocksmash_amp_read gauge\n\
             rocksmash_amp_read {}\n\
             # HELP rocksmash_amp_space Live bytes over the bottom-most level's bytes.\n\
             # TYPE rocksmash_amp_space gauge\n\
             rocksmash_amp_space {}\n\
             # HELP rocksmash_amp_compaction_debt_bytes Outstanding compaction work in bytes.\n\
             # TYPE rocksmash_amp_compaction_debt_bytes gauge\n\
             rocksmash_amp_compaction_debt_bytes {}\n",
            fmt_f64(self.write_amp()),
            self.read_amp(),
            fmt_f64(self.space_amp()),
            self.compaction_debt_bytes,
        );
        let _ = escape; // keep the shared import surface consistent
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> LevelTable {
        LevelTable {
            levels: vec![
                LevelStats {
                    level: 0,
                    files: 2,
                    bytes: 2 << 20,
                    score: 0.5,
                    flush_bytes: 8 << 20,
                    compact_bytes_read: 6 << 20,
                    ..LevelStats::default()
                },
                LevelStats {
                    level: 1,
                    files: 4,
                    bytes: 6 << 20,
                    score: 0.6,
                    ingest_bytes: 6 << 20,
                    compact_bytes_read: 9 << 20,
                    compact_bytes_written: 9 << 20,
                    subcompact_bytes_written: 3 << 20,
                    compactions: 3,
                    local_bytes: 2 << 20,
                    cloud_bytes: 4 << 20,
                    ..LevelStats::default()
                },
            ],
            compaction_debt_bytes: 1 << 20,
        }
    }

    #[test]
    fn aggregates_follow_their_definitions() {
        let t = sample_table();
        assert_eq!(t.total_flush_bytes(), 8 << 20);
        assert_eq!(t.total_compact_bytes_written(), 9 << 20);
        // W-amp = (flush + compact written) / flush = 17/8.
        assert!((t.write_amp() - 17.0 / 8.0).abs() < 1e-9);
        // R-amp = 2 L0 files + 1 non-empty deeper level.
        assert_eq!(t.read_amp(), 3);
        // Space-amp = 8 MiB live / 6 MiB bottom level.
        assert!((t.space_amp() - 8.0 / 6.0).abs() < 1e-9);
        // Per-level W-amp at L1 = written / ingested = 9/6.
        assert!((t.levels[1].write_amp() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_table_is_benign() {
        let t = LevelTable::default();
        assert_eq!(t.write_amp(), 0.0);
        assert_eq!(t.read_amp(), 0);
        assert_eq!(t.space_amp(), 1.0);
        assert!(t.to_prometheus().is_empty());
        let back = LevelTable::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_round_trips() {
        let t = sample_table();
        let back = LevelTable::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn render_has_rows_sum_and_amp_line() {
        let t = sample_table();
        let s = t.render();
        assert!(s.contains("L0"));
        assert!(s.contains("L1"));
        assert!(s.contains("sum"));
        assert!(s.contains("w-amp 2.12"));
        assert!(s.contains("local(MB)"), "tier split columns render: {s}");
    }

    #[test]
    fn prometheus_exposition_lints_and_names_families() {
        let t = sample_table();
        let body = t.to_prometheus();
        crate::registry::validate_prometheus(&body).expect("level families lint");
        assert!(body.contains("rocksmash_level_bytes{level=\"1\"}"));
        assert!(body.contains("rocksmash_level_tier_bytes{level=\"1\",tier=\"cloud\"} 4194304"));
        assert!(body.contains("rocksmash_amp_write "));
        assert!(body.contains("rocksmash_amp_compaction_debt_bytes 1048576"));
    }
}
