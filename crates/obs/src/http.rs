//! Dependency-free HTTP/1.1 metrics exporter.
//!
//! The build is offline/vendored, so there is no hyper here: a
//! std-`TcpListener` accept loop on its own thread, one short-lived
//! connection per scrape. That is exactly the shape Prometheus scraping
//! needs — `GET <path>`, one response, close — and nothing more, so the
//! whole server is a request-line parser and a response writer.
//!
//! The server owns no metrics: the caller passes a handler mapping a
//! path to `(content-type, body)`. Handlers must materialize the body
//! from pre-snapshotted state — never while holding engine locks — so a
//! slow or stalled scraper can't wedge the database (and vice versa: a
//! write stall can't wedge a scrape).
//!
//! Shutdown is synchronous on [`Drop`]: set the stop flag, self-connect
//! to unblock the blocking `accept`, join the thread. No socket outlives
//! the owner.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A route handler: path (without query string) → `(content-type, body)`,
/// or `None` for 404.
pub type Handler = Arc<dyn Fn(&str) -> Option<(&'static str, String)> + Send + Sync>;

/// Per-connection socket timeout: a stalled peer can hold a connection
/// (and the accept thread) at most this long.
const IO_TIMEOUT: Duration = Duration::from_secs(5);
/// Longest request head (request line + headers) we'll read.
const MAX_HEAD_BYTES: u64 = 16 * 1024;

/// A background HTTP/1.1 server bound to one address, serving scrapes
/// until dropped.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer").field("addr", &self.addr).finish()
    }
}

impl MetricsServer {
    /// Bind `listen` (e.g. `"127.0.0.1:9184"`; port 0 picks an ephemeral
    /// port — read it back via [`MetricsServer::addr`]) and serve
    /// `handler` on a background thread.
    pub fn start(listen: &str, handler: Handler) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle =
            std::thread::Builder::new().name("rocksmash-metrics-http".into()).spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Serve inline: scrapes are small, rare, and bounded
                    // by IO_TIMEOUT, so one connection at a time is fine
                    // and keeps the server at exactly one thread.
                    let _ = serve_one(stream, &handler);
                }
            })?;
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop; if the server is mid-connection the
        // socket timeouts bound how long this join can take.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Read one request, write one response, close.
fn serve_one(stream: TcpStream, handler: &Handler) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?).take(MAX_HEAD_BYTES);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return respond(stream, 400, "Bad Request", "text/plain", "bad request\n"),
    };
    // Drain headers so the peer sees a clean close after our response.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    if method != "GET" {
        return respond(stream, 405, "Method Not Allowed", "text/plain", "GET only\n");
    }
    let path = target.split('?').next().unwrap_or(target);
    match handler(path) {
        Some((content_type, body)) => respond(stream, 200, "OK", content_type, &body),
        None => respond(stream, 404, "Not Found", "text/plain", "no such endpoint\n"),
    }
}

fn respond(
    mut stream: TcpStream,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Minimal scrape client for tests and the CLI: `GET path` against
/// `addr`, returning `(status, body)`.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status =
        raw.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
        })?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server() -> MetricsServer {
        let handler: Handler = Arc::new(|path| match path {
            "/metrics" => Some(("text/plain; version=0.0.4", "rocksmash_up 1\n".to_string())),
            "/stats.json" => Some(("application/json", "{\"ok\":true}".to_string())),
            _ => None,
        });
        MetricsServer::start("127.0.0.1:0", handler).expect("bind ephemeral")
    }

    #[test]
    fn serves_routes_over_a_real_socket() {
        let server = test_server();
        let addr = server.addr().to_string();
        let (status, body) = http_get(&addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "rocksmash_up 1\n");
        let (status, body) = http_get(&addr, "/stats.json").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
    }

    #[test]
    fn query_strings_are_ignored_for_routing() {
        let server = test_server();
        let (status, _) = http_get(&server.addr().to_string(), "/metrics?foo=bar").unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn unknown_paths_get_404_and_non_get_405() {
        let server = test_server();
        let addr = server.addr().to_string();
        let (status, _) = http_get(&addr, "/nope").unwrap();
        assert_eq!(status, 404);
        let mut stream = TcpStream::connect(&addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "got {raw:?}");
    }

    #[test]
    fn consecutive_scrapes_reuse_the_single_thread() {
        let server = test_server();
        let addr = server.addr().to_string();
        for _ in 0..10 {
            let (status, _) = http_get(&addr, "/metrics").unwrap();
            assert_eq!(status, 200);
        }
    }

    #[test]
    fn drop_shuts_down_and_releases_the_port() {
        let server = test_server();
        let addr = server.addr();
        drop(server);
        // The listener is gone: rebinding the exact address succeeds.
        let rebound = TcpListener::bind(addr).expect("port released after Drop");
        drop(rebound);
    }

    #[test]
    fn garbage_request_line_gets_400() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 400"), "got {raw:?}");
    }
}
