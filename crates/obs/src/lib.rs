//! Engine-wide observability for RocksMash.
//!
//! Three pillars, shared by every crate in the workspace:
//!
//! * [`LatencyHistogram`] — a lock-free log-bucketed histogram (≤ ~6%
//!   relative error) recording per-operation latency; the engine itself
//!   now measures p50/p95/p99/max for gets, writes, flushes, compactions,
//!   cloud GET/PUT, cache hits/fills, and eWAL appends/syncs.
//! * [`EventJournal`] — a bounded ring of timestamped typed events
//!   ([`EventKind`]) recording *when* background work happened: flushes,
//!   compactions, uploads, writer stalls, cache evictions, prefetch
//!   drops, and slow foreground ops.
//! * [`MetricsRegistry`] / [`MetricsSnapshot`] — one aggregated snapshot
//!   rendered as a RocksDB-style human report, serde JSON, or Prometheus
//!   text exposition (lintable with [`validate_prometheus`]).
//! * [`PerfContext`] / [`perf`] — per-operation stage breakdowns and
//!   causal trace spans, captured on demand (a `ReadOptions` flag, a
//!   sampling rate, or `with_perf_context`) and attached to `SlowOp`
//!   events so a slow call explains itself.
//!
//! The engine-facing handle is [`Observer`]; construct one per database
//! ([`Observer::new`] or [`Observer::disabled`]) and share it as an
//! `Arc`. Timers are `Option<Instant>` so a disabled observer costs a
//! single branch on the hot path.

mod events;
pub mod health;
pub mod heat;
mod hist;
pub mod http;
pub mod json;
pub mod levels;
pub mod perf;
mod registry;
pub mod timeseries;

pub use events::{Event, EventJournal, EventKind, DEFAULT_JOURNAL_CAPACITY};
pub use health::{
    Doctor, DoctorThresholds, Finding, HealthMonitor, HealthReport, Severity, ALL_RULES,
};
pub use heat::{
    HeatEntry, HeatMap, HeatSnapshot, Residency, ResidencySnapshot, ResidencyTier,
    DEFAULT_HEAT_SLOTS,
};
pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use http::MetricsServer;
pub use levels::{LevelStats, LevelTable};
pub use perf::{PerfContext, SpanIds};
pub use registry::{
    validate_prometheus, MetricsRegistry, MetricsSnapshot, Observer, Op, OpStats, PerfGuard,
    SpanGuard, ALL_OPS, DEFAULT_SLOW_BACKGROUND, DEFAULT_SLOW_OP,
};
pub use timeseries::{RateWindow, TimeSeries, WindowRates, DEFAULT_RING_CAPACITY};
