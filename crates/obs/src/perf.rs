//! Per-operation performance contexts and causal trace spans.
//!
//! A [`PerfContext`] is a thread-local bundle of stage timers and counters
//! that explains *where* one operation's latency went: memtable probe,
//! local SST read, cloud GET, persistent-cache hit/fill, decompression,
//! WAL append/sync, retries. Capture is off by default and costs a single
//! `Cell<bool>` load per instrumentation site; it is switched on per call
//! (`ReadOptions::perf_context`, `TieredDb::with_perf_context`) or by the
//! observer's sampling rate.
//!
//! On top of the context sit **trace spans**: when capture is active, the
//! foreground operation opens a root span and every piece of work it
//! triggers on the same thread (cloud GETs, cache fills, SST uploads)
//! opens a child span carrying the same trace id. Span start/end records
//! flow into the [`crate::EventJournal`], so a `SlowOp` event's trace id
//! links to the exact cloud requests that made it slow. Background jobs
//! (flush, compaction, migration) always open root spans of their own.
//!
//! The design mirrors RocksDB's `PerfContext`/`IOStatsContext` pair:
//! plain thread-local state, explicitly propagated across thread pools
//! (see `lsm::Db::multi_get`), merged into process-wide totals when the
//! capture guard drops.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::json::Json;

/// Stage timers and counters for one operation. All fields are plain
/// totals in nanoseconds (`*_ns`) or counts, so contexts can be added
/// together and diffed.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PerfContext {
    /// Time probing the active and immutable memtables.
    pub memtable_probe_ns: u64,
    /// Time in local SST lookup machinery (index/bloom/block reads),
    /// *excluding* the nested cloud, persistent-cache, and decompress
    /// stages below — the stages are disjoint and sum to ≈ the op total.
    pub sst_read_ns: u64,
    /// Block-cache (in-memory) hits.
    pub block_cache_hits: u64,
    /// Block-cache misses that had to read the table file.
    pub block_cache_misses: u64,
    /// Persistent-cache (mashcache) hits.
    pub mashcache_hits: u64,
    /// Time serving persistent-cache hits.
    pub mashcache_hit_ns: u64,
    /// Persistent-cache fills (insert after a cloud fetch).
    pub mashcache_fills: u64,
    /// Time writing persistent-cache fills.
    pub mashcache_fill_ns: u64,
    /// Logical cloud GET operations issued (one per `get`/`get_range`/
    /// vectored `get_ranges` call, before coalescing).
    pub cloud_gets: u64,
    /// Billed single-range GETs.
    pub cloud_billed_gets: u64,
    /// Billed coalesced GETs (one request covering several block reads).
    pub cloud_coalesced_gets: u64,
    /// Bytes fetched from the cloud tier.
    pub cloud_get_bytes: u64,
    /// Wall-clock time inside cloud GETs, including simulated latency,
    /// injected faults, and retry backoff.
    pub cloud_get_ns: u64,
    /// Time decompressing block contents.
    pub decompress_ns: u64,
    /// Time appending to the WAL / eWAL buffer.
    pub wal_append_ns: u64,
    /// Time in WAL / eWAL fsync.
    pub wal_sync_ns: u64,
    /// Cloud retry attempts performed on behalf of this operation.
    pub retry_attempts: u64,
    /// Backoff slept before those retries (a subset of `cloud_get_ns`
    /// when the retried operation was a GET).
    pub retry_backoff_ns: u64,
}

impl PerfContext {
    /// Every field as `(name, value)`, in declaration order. The single
    /// source of truth for JSON encoding and metrics export.
    pub fn fields(&self) -> [(&'static str, u64); 18] {
        [
            ("memtable_probe_ns", self.memtable_probe_ns),
            ("sst_read_ns", self.sst_read_ns),
            ("block_cache_hits", self.block_cache_hits),
            ("block_cache_misses", self.block_cache_misses),
            ("mashcache_hits", self.mashcache_hits),
            ("mashcache_hit_ns", self.mashcache_hit_ns),
            ("mashcache_fills", self.mashcache_fills),
            ("mashcache_fill_ns", self.mashcache_fill_ns),
            ("cloud_gets", self.cloud_gets),
            ("cloud_billed_gets", self.cloud_billed_gets),
            ("cloud_coalesced_gets", self.cloud_coalesced_gets),
            ("cloud_get_bytes", self.cloud_get_bytes),
            ("cloud_get_ns", self.cloud_get_ns),
            ("decompress_ns", self.decompress_ns),
            ("wal_append_ns", self.wal_append_ns),
            ("wal_sync_ns", self.wal_sync_ns),
            ("retry_attempts", self.retry_attempts),
            ("retry_backoff_ns", self.retry_backoff_ns),
        ]
    }

    fn field_mut(&mut self, name: &str) -> Option<&mut u64> {
        Some(match name {
            "memtable_probe_ns" => &mut self.memtable_probe_ns,
            "sst_read_ns" => &mut self.sst_read_ns,
            "block_cache_hits" => &mut self.block_cache_hits,
            "block_cache_misses" => &mut self.block_cache_misses,
            "mashcache_hits" => &mut self.mashcache_hits,
            "mashcache_hit_ns" => &mut self.mashcache_hit_ns,
            "mashcache_fills" => &mut self.mashcache_fills,
            "mashcache_fill_ns" => &mut self.mashcache_fill_ns,
            "cloud_gets" => &mut self.cloud_gets,
            "cloud_billed_gets" => &mut self.cloud_billed_gets,
            "cloud_coalesced_gets" => &mut self.cloud_coalesced_gets,
            "cloud_get_bytes" => &mut self.cloud_get_bytes,
            "cloud_get_ns" => &mut self.cloud_get_ns,
            "decompress_ns" => &mut self.decompress_ns,
            "wal_append_ns" => &mut self.wal_append_ns,
            "wal_sync_ns" => &mut self.wal_sync_ns,
            "retry_attempts" => &mut self.retry_attempts,
            "retry_backoff_ns" => &mut self.retry_backoff_ns,
            _ => return None,
        })
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.fields().iter().all(|&(_, v)| v == 0)
    }

    /// Add `other` into `self`, field by field (saturating).
    pub fn add(&mut self, other: &PerfContext) {
        for (name, v) in other.fields() {
            let f = self.field_mut(name).expect("own field");
            *f = f.saturating_add(v);
        }
    }

    /// Field-wise `self − other` (saturating), for before/after deltas
    /// against accumulated totals.
    pub fn delta_since(&self, other: &PerfContext) -> PerfContext {
        let mut out = self.clone();
        for (name, v) in other.fields() {
            let f = out.field_mut(name).expect("own field");
            *f = f.saturating_sub(v);
        }
        out
    }

    /// Sum of the disjoint timed stages. For a captured operation this is
    /// ≈ the operation's wall-clock total (instrumentation gaps aside):
    /// `sst_read_ns` already excludes the nested cloud/cache/decompress
    /// time, and `retry_backoff_ns` is informational (contained in
    /// `cloud_get_ns`).
    pub fn stage_sum_ns(&self) -> u64 {
        self.memtable_probe_ns
            .saturating_add(self.sst_read_ns)
            .saturating_add(self.cloud_get_ns)
            .saturating_add(self.mashcache_hit_ns)
            .saturating_add(self.mashcache_fill_ns)
            .saturating_add(self.decompress_ns)
            .saturating_add(self.wal_append_ns)
            .saturating_add(self.wal_sync_ns)
    }

    /// Encode as one JSON object (every field, fixed order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.fields().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push('}');
        out
    }

    /// Decode from [`PerfContext::to_json`] output. Missing fields read
    /// as 0 and unknown fields are ignored, so old and new encodings
    /// round-trip against each other.
    pub fn from_json(v: &Json) -> Result<PerfContext, String> {
        let mut out = PerfContext::default();
        for (name, value) in v.entries().ok_or("perf context not an object")? {
            if let Some(f) = out.field_mut(name) {
                *f = value.as_u64().ok_or_else(|| format!("perf field {name} not a u64"))?;
            }
        }
        Ok(out)
    }
}

/// Identity of the innermost span active on this thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanIds {
    /// Trace the span belongs to (the root span's id).
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static CTX: RefCell<PerfContext> = RefCell::new(PerfContext::default());
    static CURRENT_SPAN: Cell<Option<SpanIds>> = const { Cell::new(None) };
}

/// Process-wide span/trace id allocator (ids are never 0; 0 means "no
/// parent" in span events).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh span/trace id.
pub fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Whether a perf context is being captured on this thread. The one
/// branch every instrumentation site pays when capture is off.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Begin capture on this thread. Returns `false` (and changes nothing)
/// when capture is already active, so nested scopes never reset or
/// double-report the outer context.
pub fn begin() -> bool {
    ACTIVE.with(|a| {
        if a.get() {
            false
        } else {
            a.set(true);
            true
        }
    })
}

/// End capture, returning (and clearing) the accumulated context.
pub fn end() -> PerfContext {
    ACTIVE.with(|a| a.set(false));
    CTX.with(|c| std::mem::take(&mut *c.borrow_mut()))
}

/// Clone the context accumulated so far (None when capture is off).
pub fn snapshot() -> Option<PerfContext> {
    if enabled() {
        Some(CTX.with(|c| c.borrow().clone()))
    } else {
        None
    }
}

/// Apply `f` to the live context when capture is active; a single branch
/// otherwise.
#[inline]
pub fn count(f: impl FnOnce(&mut PerfContext)) {
    if enabled() {
        CTX.with(|c| f(&mut c.borrow_mut()));
    }
}

/// Start a stage timer (None when capture is off).
#[inline]
pub fn start_stage() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Finish a stage timer, handing `f` the live context and the elapsed
/// nanoseconds.
#[inline]
pub fn finish_stage(started: Option<Instant>, f: impl FnOnce(&mut PerfContext, u64)) {
    if let Some(t0) = started {
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        CTX.with(|c| f(&mut c.borrow_mut(), ns));
    }
}

/// A stage timer that subtracts time already attributed to the nested
/// cloud / persistent-cache / decompress stages, so wrapping a call tree
/// cannot double-count its instrumented children.
#[derive(Debug)]
pub struct ExclusiveStage {
    start: Instant,
    nested_before: u64,
}

fn nested_ns(ctx: &PerfContext) -> u64 {
    ctx.cloud_get_ns
        .saturating_add(ctx.mashcache_hit_ns)
        .saturating_add(ctx.mashcache_fill_ns)
        .saturating_add(ctx.decompress_ns)
}

/// Start an exclusive stage timer (None when capture is off).
#[inline]
pub fn start_exclusive() -> Option<ExclusiveStage> {
    if enabled() {
        Some(ExclusiveStage {
            start: Instant::now(),
            nested_before: CTX.with(|c| nested_ns(&c.borrow())),
        })
    } else {
        None
    }
}

/// Finish an exclusive stage: `f` receives elapsed nanoseconds minus
/// whatever the nested stages recorded inside the window.
#[inline]
pub fn finish_exclusive(stage: Option<ExclusiveStage>, f: impl FnOnce(&mut PerfContext, u64)) {
    if let Some(stage) = stage {
        let elapsed = stage.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        CTX.with(|c| {
            let mut ctx = c.borrow_mut();
            let nested = nested_ns(&ctx).saturating_sub(stage.nested_before);
            f(&mut ctx, elapsed.saturating_sub(nested));
        });
    }
}

/// The innermost span active on this thread, if any.
#[inline]
pub fn current_span() -> Option<SpanIds> {
    CURRENT_SPAN.with(|s| s.get())
}

/// Install `span` as this thread's innermost span, returning the previous
/// value (restore it when the scope ends). Used by the observer's span
/// guards and by explicit cross-thread handoff in `multi_get`.
pub fn swap_current_span(span: Option<SpanIds>) -> Option<SpanIds> {
    CURRENT_SPAN.with(|s| s.replace(span))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_is_off_by_default_and_scoped() {
        assert!(!enabled());
        assert!(start_stage().is_none());
        assert!(snapshot().is_none());
        assert!(begin());
        assert!(enabled());
        assert!(!begin(), "nested begin must not re-arm");
        count(|c| c.cloud_gets += 2);
        let ctx = end();
        assert!(!enabled());
        assert_eq!(ctx.cloud_gets, 2);
        // A second end() sees a cleared context.
        assert!(end().is_empty());
    }

    #[test]
    fn stage_timers_record_only_when_active() {
        assert!(begin());
        let t = start_stage();
        std::thread::sleep(std::time::Duration::from_millis(2));
        finish_stage(t, |c, ns| c.memtable_probe_ns += ns);
        let ctx = end();
        assert!(ctx.memtable_probe_ns >= 1_000_000, "{ctx:?}");
        finish_stage(None, |c, ns| c.memtable_probe_ns += ns);
    }

    #[test]
    fn exclusive_stage_subtracts_nested_time() {
        assert!(begin());
        let outer = start_exclusive();
        count(|c| c.cloud_get_ns += 1_000_000_000); // pretend a nested cloud GET
        finish_exclusive(outer, |c, ns| c.sst_read_ns += ns);
        let ctx = end();
        // The outer window is microseconds of real time; a full second of
        // nested cloud time must not leak into the exclusive stage.
        assert!(ctx.sst_read_ns < 1_000_000_000, "{ctx:?}");
    }

    #[test]
    fn add_and_delta_are_inverse() {
        let mut a = PerfContext { cloud_gets: 3, cloud_get_ns: 500, ..PerfContext::default() };
        let b = PerfContext { cloud_gets: 1, wal_sync_ns: 9, ..PerfContext::default() };
        let before = a.clone();
        a.add(&b);
        assert_eq!(a.cloud_gets, 4);
        assert_eq!(a.wal_sync_ns, 9);
        assert_eq!(a.delta_since(&b), before);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut ctx = PerfContext::default();
        for (i, (name, _)) in ctx.clone().fields().iter().enumerate() {
            *ctx.field_mut(name).unwrap() = (i as u64 + 1) * 17;
        }
        let v = Json::parse(&ctx.to_json()).unwrap();
        assert_eq!(PerfContext::from_json(&v).unwrap(), ctx);
    }

    #[test]
    fn from_json_tolerates_missing_and_unknown_fields() {
        let v = Json::parse("{\"cloud_gets\":5,\"future_field\":1}").unwrap();
        let ctx = PerfContext::from_json(&v).unwrap();
        assert_eq!(ctx.cloud_gets, 5);
        assert_eq!(ctx.cloud_get_ns, 0);
    }

    #[test]
    fn stage_sum_counts_each_stage_once() {
        let ctx = PerfContext {
            memtable_probe_ns: 1,
            sst_read_ns: 10,
            cloud_get_ns: 100,
            mashcache_hit_ns: 1_000,
            mashcache_fill_ns: 10_000,
            decompress_ns: 100_000,
            wal_append_ns: 1_000_000,
            wal_sync_ns: 10_000_000,
            retry_backoff_ns: 7, // nested inside cloud_get_ns; not summed
            ..PerfContext::default()
        };
        assert_eq!(ctx.stage_sum_ns(), 11_111_111);
    }

    #[test]
    fn span_handoff_restores_previous() {
        assert_eq!(current_span(), None);
        let prev = swap_current_span(Some(SpanIds { trace_id: 7, span_id: 9 }));
        assert_eq!(prev, None);
        assert_eq!(current_span(), Some(SpanIds { trace_id: 7, span_id: 9 }));
        swap_current_span(prev);
        assert_eq!(current_span(), None);
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_id();
        let b = next_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
