//! Minimal self-contained JSON emit/parse.
//!
//! The observability surfaces must serialize without pulling runtime
//! machinery into the engine's dependency set, so the snapshot types
//! hand-roll their JSON through this module: [`escape`] and [`fmt_f64`]
//! on the emit side, [`Json::parse`] (a strict recursive-descent reader)
//! on the read side. Numbers keep their raw token so `u64` values
//! round-trip exactly — no detour through `f64`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Raw number token, e.g. `"18446744073709551615"` — converted on
    /// access so integer precision survives.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's fields, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn elements(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Exact integer value, if this is a number token that fits `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Exact integer value, if this is a number token that fits `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Floating-point value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        if raw.parse::<f64>().is_err() {
            return Err(format!("bad number {raw:?} at byte {start}"));
        }
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "short \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            // Surrogates map to the replacement char; the
                            // emit side never produces them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte {b:#x} in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so this is
                    // always well-formed).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }
}

/// Escape a string for embedding inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a JSON number. Rust's `f64` `Display` is the
/// shortest representation that round-trips, which is exactly what a
/// snapshot needs; non-finite values (which no metric produces) become 0.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
        assert_eq!(Json::parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
    }

    #[test]
    fn u64_round_trips_exactly() {
        let v = Json::parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": "x\ny"}], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(false)));
        let arr = v.get("a").unwrap().elements().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode\u{2603}";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn float_format_round_trips() {
        for v in [0.0, 0.1, 123.456, 1e-9, 1e20] {
            let s = fmt_f64(v);
            assert_eq!(Json::parse(&s).unwrap().as_f64(), Some(v));
        }
        assert_eq!(fmt_f64(f64::NAN), "0");
    }
}
