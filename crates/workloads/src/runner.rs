//! Drives operation streams against a store and measures them.

use std::collections::HashMap;
use std::time::Instant;

use lsm::Result;
use rocksmash::TieredDb;

use crate::hist::LatencyHistogram;
use crate::ycsb::Op;

/// Anything the workloads can be run against.
pub trait KvStore {
    /// Point read.
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;
    /// Insert or overwrite.
    fn kv_put(&self, key: &[u8], value: &[u8]) -> Result<()>;
    /// Delete.
    fn kv_delete(&self, key: &[u8]) -> Result<()>;
    /// Range scan of up to `limit` records from `from`.
    fn kv_scan(&self, from: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;
    /// Range scan over `[from, to)` of up to `limit` records. Stores that
    /// support bound pushdown stop reading (and prefetching) at `to`;
    /// the default falls back to an unbounded scan plus a post-filter.
    fn kv_scan_bounded(
        &self,
        from: &[u8],
        to: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut rows = self.kv_scan(from, limit)?;
        rows.retain(|(k, _)| k.as_slice() < to);
        Ok(rows)
    }
}

impl KvStore for TieredDb {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get(key)
    }

    fn kv_put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.put(key, value)
    }

    fn kv_delete(&self, key: &[u8]) -> Result<()> {
        self.delete(key)
    }

    fn kv_scan(&self, from: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan(from, limit)
    }

    fn kv_scan_bounded(
        &self,
        from: &[u8],
        to: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan_bounded(from, to, limit)
    }
}

/// Measured outcome of one run.
#[derive(Debug)]
pub struct RunResult {
    /// Operations executed.
    pub ops: u64,
    /// Wall-clock seconds.
    pub elapsed_secs: f64,
    /// Latency histogram per operation kind.
    pub latency: HashMap<&'static str, LatencyHistogram>,
    /// Records touched by scans (scan ops count once in `ops`).
    pub scanned_records: u64,
    /// Reads that found no value (sanity signal: should be ~0 after load).
    pub not_found: u64,
}

impl RunResult {
    /// Operations per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / self.elapsed_secs
        }
    }

    /// Merged histogram over all operation kinds.
    pub fn overall_latency(&self) -> LatencyHistogram {
        let all = LatencyHistogram::new();
        for h in self.latency.values() {
            all.merge(h);
        }
        all
    }
}

/// Execute `ops` against `store`, timing each operation.
pub fn run_ops(store: &impl KvStore, ops: impl IntoIterator<Item = Op>) -> Result<RunResult> {
    let mut latency: HashMap<&'static str, LatencyHistogram> = HashMap::new();
    let mut count = 0u64;
    let mut scanned = 0u64;
    let mut not_found = 0u64;
    let started = Instant::now();
    for op in ops {
        let kind = op.kind();
        let t0 = Instant::now();
        match op {
            Op::Read(key) => {
                if store.kv_get(&key)?.is_none() {
                    not_found += 1;
                }
            }
            Op::Update(key, value) | Op::Insert(key, value) => {
                store.kv_put(&key, &value)?;
            }
            Op::Scan(from, limit) => {
                scanned += store.kv_scan(&from, limit)?.len() as u64;
            }
            Op::ScanBounded(from, to, limit) => {
                scanned += store.kv_scan_bounded(&from, &to, limit)?.len() as u64;
            }
            Op::ReadModifyWrite(key, new_value) => {
                let _ = store.kv_get(&key)?;
                store.kv_put(&key, &new_value)?;
            }
        }
        latency.entry(kind).or_default().record_duration(t0.elapsed());
        count += 1;
    }
    Ok(RunResult {
        ops: count,
        elapsed_secs: started.elapsed().as_secs_f64(),
        latency,
        scanned_records: scanned,
        not_found,
    })
}

/// Execute `ops` against `store` from `threads` concurrent clients.
///
/// Operations are dealt round-robin to the clients, so each client sees an
/// unbiased sample of the mix. Results are merged; throughput is measured
/// over the whole wall-clock window. With a latency-bound store (cloud
/// tiers), concurrency overlaps request waits exactly as multi-client YCSB
/// does in the paper's testbed.
pub fn run_ops_concurrent<S: KvStore + Sync>(
    store: &S,
    ops: impl IntoIterator<Item = Op>,
    threads: usize,
) -> Result<RunResult> {
    let threads = threads.max(1);
    let mut lanes: Vec<Vec<Op>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, op) in ops.into_iter().enumerate() {
        lanes[i % threads].push(op);
    }
    let started = Instant::now();
    let results: Vec<Result<RunResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            lanes.into_iter().map(|lane| scope.spawn(move || run_ops(store, lane))).collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    let elapsed_secs = started.elapsed().as_secs_f64();
    let mut merged = RunResult {
        ops: 0,
        elapsed_secs,
        latency: HashMap::new(),
        scanned_records: 0,
        not_found: 0,
    };
    for result in results {
        let r = result?;
        merged.ops += r.ops;
        merged.scanned_records += r.scanned_records;
        merged.not_found += r.not_found;
        for (kind, hist) in r.latency {
            merged.latency.entry(kind).or_default().merge(&hist);
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microbench::{fillrandom, readrandom, readseq};
    use crate::ycsb::WorkloadSpec;
    use crate::KeyDistribution;
    use lsm::Options;
    use rocksmash::{Scheme, TieredConfig};
    use std::sync::Arc;
    use storage::MemEnv;

    fn test_db(scheme: Scheme) -> TieredDb {
        let base = TieredConfig {
            options: Options {
                write_buffer_size: 32 << 10,
                target_file_size: 16 << 10,
                max_bytes_for_level_base: 64 << 10,
                l0_compaction_trigger: 2,
                ..Options::small_for_tests()
            },
            cache_admission: false,
            ..TieredConfig::small_for_tests()
        };
        scheme.open(Arc::new(MemEnv::new()), base).unwrap()
    }

    #[test]
    fn microbench_load_and_read() {
        let db = test_db(Scheme::RocksMash);
        let load = run_ops(&db, fillrandom(500, 64, 1)).unwrap();
        assert_eq!(load.ops, 500);
        db.flush().unwrap();
        let reads =
            run_ops(&db, readrandom(500, 300, KeyDistribution::zipfian_default(), 2)).unwrap();
        assert_eq!(reads.ops, 300);
        assert_eq!(reads.not_found, 0, "all loaded keys must be found");
        assert!(reads.throughput() > 0.0);
        assert!(reads.latency.contains_key("read"));
    }

    #[test]
    fn scans_count_records() {
        let db = test_db(Scheme::LocalOnly);
        run_ops(&db, fillrandom(200, 32, 3)).unwrap();
        db.flush().unwrap();
        let result = run_ops(&db, readseq(200, 50)).unwrap();
        assert_eq!(result.ops, 4);
        assert_eq!(result.scanned_records, 200);
    }

    #[test]
    fn concurrent_runner_matches_serial_semantics() {
        let db = test_db(Scheme::RocksMash);
        run_ops(&db, fillrandom(400, 64, 5)).unwrap();
        db.flush().unwrap();
        let result =
            run_ops_concurrent(&db, readrandom(400, 600, KeyDistribution::zipfian_default(), 6), 4)
                .unwrap();
        assert_eq!(result.ops, 600);
        assert_eq!(result.not_found, 0);
        assert_eq!(result.overall_latency().count(), 600);
        assert!(result.throughput() > 0.0);
    }

    #[test]
    fn concurrent_runner_single_thread_degenerates() {
        let db = test_db(Scheme::LocalOnly);
        run_ops(&db, fillrandom(100, 32, 7)).unwrap();
        let r =
            run_ops_concurrent(&db, readrandom(100, 50, KeyDistribution::Uniform, 8), 1).unwrap();
        assert_eq!(r.ops, 50);
    }

    #[test]
    fn ycsb_a_runs_clean() {
        let db = test_db(Scheme::NaiveHybrid);
        let spec = WorkloadSpec::a(300, 64);
        run_ops(&db, spec.load_ops()).unwrap();
        db.flush().unwrap();
        let result = run_ops(&db, spec.run_ops(1000, 11)).unwrap();
        assert_eq!(result.ops, 1000);
        assert_eq!(result.not_found, 0);
        let overall = result.overall_latency();
        assert_eq!(overall.count(), 1000);
    }
}
