//! Key-popularity distributions.

use rand::rngs::StdRng;
use rand::Rng;

/// How keys are chosen from a keyspace of `n` records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Every key equally likely.
    Uniform,
    /// YCSB zipfian with the given theta (0.99 is the YCSB default),
    /// scrambled so hot keys spread over the keyspace.
    Zipfian {
        /// Skew parameter; higher is more skewed. Must be in (0, 1).
        theta: f64,
    },
    /// Skewed towards recently inserted records (YCSB-D style).
    Latest {
        /// Skew of the recency preference.
        theta: f64,
    },
    /// Zipfian WITHOUT scrambling, offset so the hot ranks form one
    /// contiguous run starting at `start * n` (wrapping). Unlike
    /// [`KeyDistribution::Zipfian`], whose scrambling spreads the popular
    /// keys across every SSTable, this concentrates the hot set in a few
    /// adjacent tables — the shape that exercises SST-granular tiering
    /// (heat-driven promotion), and whose `start` can be moved between
    /// phases to model a hotspot shift.
    ZipfCluster {
        /// Skew parameter; higher is more skewed. Must be in (0, 1).
        theta: f64,
        /// Hotspot position as a fraction of the keyspace, in [0, 1).
        start: f64,
        /// Fraction of the keyspace the cluster covers, in (0, 1]. Every
        /// draw lands within `span * n` keys of the origin, so a tiered
        /// store can serve the whole phase locally once that window is
        /// resident — the unbounded Zipf tail would otherwise drag the
        /// p99 read across the entire keyspace.
        span: f64,
    },
    /// 0, 1, 2, ... in order, wrapping.
    Sequential,
}

impl KeyDistribution {
    /// YCSB default zipfian.
    pub fn zipfian_default() -> Self {
        KeyDistribution::Zipfian { theta: 0.99 }
    }

    /// Build a stateful sampler over `[0, n)`.
    pub fn sampler(self, n: u64, rng: StdRng) -> KeySampler {
        let zipf = match self {
            KeyDistribution::Zipfian { theta } | KeyDistribution::Latest { theta } => {
                Some(ZipfianGenerator::new(n, theta))
            }
            // Ranks are drawn over the window, not the full keyspace, so
            // the cluster's probability mass is entirely inside it.
            KeyDistribution::ZipfCluster { theta, span, .. } => {
                Some(ZipfianGenerator::new(cluster_window(n, span), theta))
            }
            _ => None,
        };
        KeySampler { dist: self, n, rng, zipf, next_seq: 0 }
    }
}

/// Stateful sampler for one distribution.
pub struct KeySampler {
    dist: KeyDistribution,
    n: u64,
    rng: StdRng,
    zipf: Option<ZipfianGenerator>,
    next_seq: u64,
}

impl KeySampler {
    /// Draw the next key index in `[0, current_n)`.
    pub fn next_key(&mut self) -> u64 {
        match self.dist {
            KeyDistribution::Uniform => self.rng.gen_range(0..self.n.max(1)),
            KeyDistribution::Zipfian { .. } => {
                let rank = self.zipf.as_mut().expect("zipf").next(&mut self.rng);
                // Scramble so the popular ranks are not clustered at the
                // low end of the keyspace (YCSB ScrambledZipfian).
                fnv_scramble(rank) % self.n.max(1)
            }
            KeyDistribution::Latest { .. } => {
                let rank = self.zipf.as_mut().expect("zipf").next(&mut self.rng);
                // Rank 0 = newest record.
                self.n.saturating_sub(1).saturating_sub(rank % self.n.max(1))
            }
            KeyDistribution::ZipfCluster { start, .. } => {
                // The generator was built over the window, so rank < span*n.
                let rank = self.zipf.as_mut().expect("zipf").next(&mut self.rng);
                let n = self.n.max(1);
                // No scramble: rank r maps to the key r slots past the
                // hotspot origin, so popularity decays with key distance
                // and the hot run sits wherever `start` points.
                let origin = ((start.clamp(0.0, 1.0) * n as f64) as u64).min(n - 1);
                (origin + rank) % n
            }
            KeyDistribution::Sequential => {
                let k = self.next_seq % self.n.max(1);
                self.next_seq += 1;
                k
            }
        }
    }

    /// Record that the keyspace grew (inserts); Latest adapts to it.
    pub fn grow(&mut self, new_n: u64) {
        if new_n > self.n {
            self.n = new_n;
            // Zipf ranks need not be recomputed exactly for Latest: ranks
            // are taken modulo n. For Zipfian we keep the original n,
            // matching YCSB's insert-aware generators approximately.
        }
    }

    /// Current keyspace size.
    pub fn n(&self) -> u64 {
        self.n
    }
}

/// Size of a [`KeyDistribution::ZipfCluster`] window over `n` keys.
fn cluster_window(n: u64, span: f64) -> u64 {
    ((span.clamp(0.0, 1.0) * n.max(1) as f64).ceil() as u64).clamp(1, n.max(1))
}

fn fnv_scramble(v: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The YCSB zipfian generator (Gray et al.'s rejection-free algorithm):
/// draws ranks in `[0, n)` where rank r has probability ∝ 1/(r+1)^theta.
pub struct ZipfianGenerator {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl ZipfianGenerator {
    /// Generator over `[0, n)` with skew `theta`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian over empty keyspace");
        assert!((0.0..1.0).contains(&theta), "theta must be in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        ZipfianGenerator { n, theta, alpha, zetan, eta, zeta2theta }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact up to a cutoff, then the Euler–Maclaurin integral
        // approximation: keeps construction O(1)-ish for huge n.
        const EXACT: u64 = 1_000_000;
        if n <= EXACT {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=EXACT).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            let tail =
                ((n as f64).powf(1.0 - theta) - (EXACT as f64).powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    /// Draw the next rank.
    pub fn next(&mut self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability mass of rank 0 (the hottest key).
    pub fn hottest_mass(&self) -> f64 {
        let _ = self.zeta2theta;
        1.0 / self.zetan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_covers_keyspace() {
        let mut s = KeyDistribution::Uniform.sampler(100, rng());
        let mut seen = [false; 100];
        for _ in 0..10_000 {
            seen[s.next_key() as usize] = true;
        }
        assert!(seen.iter().filter(|&&b| b).count() > 95);
    }

    #[test]
    fn sequential_wraps() {
        let mut s = KeyDistribution::Sequential.sampler(3, rng());
        let keys: Vec<u64> = (0..7).map(|_| s.next_key()).collect();
        assert_eq!(keys, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn zipfian_ranks_are_skewed() {
        let mut z = ZipfianGenerator::new(1000, 0.99);
        let mut rng = rng();
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            counts[z.next(&mut rng) as usize] += 1;
        }
        // Rank 0 must dominate; top-10 ranks take a large share.
        assert!(counts[0] > counts[100] * 10, "rank0={} rank100={}", counts[0], counts[100]);
        let top10: u64 = counts[..10].iter().sum();
        let total: u64 = counts.iter().sum();
        assert!(top10 as f64 / total as f64 > 0.3, "top10 share too small");
    }

    #[test]
    fn zipfian_stays_in_range() {
        let mut z = ZipfianGenerator::new(50, 0.7);
        let mut rng = rng();
        for _ in 0..10_000 {
            assert!(z.next(&mut rng) < 50);
        }
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let mut rng1 = rng();
        let mut rng2 = rng();
        let mut lo = ZipfianGenerator::new(10_000, 0.5);
        let mut hi = ZipfianGenerator::new(10_000, 0.99);
        let head_share = |g: &mut ZipfianGenerator, rng: &mut StdRng| {
            let mut head = 0;
            for _ in 0..20_000 {
                if g.next(rng) < 100 {
                    head += 1;
                }
            }
            head as f64 / 20_000.0
        };
        assert!(head_share(&mut hi, &mut rng1) > head_share(&mut lo, &mut rng2));
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let mut s = KeyDistribution::zipfian_default().sampler(10_000, rng());
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(s.next_key()).or_insert(0u64) += 1;
        }
        // The two hottest keys should not be adjacent (scrambling).
        let mut by_count: Vec<(u64, u64)> = counts.into_iter().map(|(k, c)| (c, k)).collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        let hottest = by_count[0].1;
        let second = by_count[1].1;
        assert!(hottest.abs_diff(second) > 1, "hot keys clustered: {hottest} {second}");
    }

    #[test]
    fn zipf_cluster_concentrates_around_its_origin() {
        let n = 10_000u64;
        let mut s =
            KeyDistribution::ZipfCluster { theta: 0.9, start: 0.5, span: 1.0 }.sampler(n, rng());
        let mut in_run = 0;
        for _ in 0..20_000 {
            let k = s.next_key();
            // Hot run: the 5% of the keyspace just past the origin.
            if (5_000..5_500).contains(&k) {
                in_run += 1;
            }
        }
        assert!(in_run as f64 / 20_000.0 > 0.5, "hot run share too small: {in_run}");
    }

    #[test]
    fn moving_the_cluster_moves_the_hot_keys() {
        let n = 10_000u64;
        let hottest = |start: f64| {
            let mut s =
                KeyDistribution::ZipfCluster { theta: 0.99, start, span: 1.0 }.sampler(n, rng());
            let mut counts = std::collections::HashMap::new();
            for _ in 0..20_000 {
                *counts.entry(s.next_key()).or_insert(0u64) += 1;
            }
            counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        assert_eq!(hottest(0.0), 0);
        assert_eq!(hottest(0.5), 5_000);
    }

    #[test]
    fn span_confines_the_cluster() {
        let n = 10_000u64;
        let mut s =
            KeyDistribution::ZipfCluster { theta: 0.9, start: 0.1, span: 0.25 }.sampler(n, rng());
        for _ in 0..20_000 {
            let k = s.next_key();
            assert!((1_000..3_500).contains(&k), "key {k} escaped the [1000, 3500) window");
        }
    }

    #[test]
    fn latest_prefers_high_indices() {
        let mut s = KeyDistribution::Latest { theta: 0.99 }.sampler(1000, rng());
        let mut high = 0;
        for _ in 0..10_000 {
            if s.next_key() >= 900 {
                high += 1;
            }
        }
        assert!(high > 5_000, "latest distribution not recent-skewed: {high}");
    }

    #[test]
    fn zeta_approximation_continuous_at_cutoff() {
        // The approximate zeta just above the exact cutoff should be close
        // to an exact computation on a smaller scale ratio.
        let z1 = ZipfianGenerator::zeta(1_000_000, 0.99);
        let z2 = ZipfianGenerator::zeta(1_000_001, 0.99);
        assert!(z2 > z1);
        assert!(z2 - z1 < 1e-4);
    }
}
