//! Workload generation and measurement for the RocksMash evaluation.
//!
//! * [`dist`] — key-popularity distributions (uniform, YCSB zipfian with
//!   scrambling, latest, sequential).
//! * [`keys`] — deterministic key/value materialization.
//! * [`ycsb`] — the YCSB core workloads A–F as operation streams.
//! * [`microbench`] — db_bench-style fill/read/seek microbenchmarks.
//! * [`hist`] — latency histograms (p50/p95/p99...), re-exported from
//!   the engine-wide `obs` crate.
//! * [`runner`] — drives an operation stream against a store and reports
//!   throughput and latency.

pub mod dist;
pub mod hist;
pub mod keys;
pub mod microbench;
pub mod runner;
pub mod trace;
pub mod ycsb;

pub use dist::KeyDistribution;
pub use hist::LatencyHistogram;
pub use runner::{run_ops, run_ops_concurrent, KvStore, RunResult};
pub use ycsb::{Op, WorkloadSpec};
