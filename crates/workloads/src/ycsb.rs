//! The YCSB core workloads as operation streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::{KeyDistribution, KeySampler};
use crate::keys::{user_key, value_for};

/// One operation of a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Point read.
    Read(Vec<u8>),
    /// Overwrite an existing record.
    Update(Vec<u8>, Vec<u8>),
    /// Insert a new record.
    Insert(Vec<u8>, Vec<u8>),
    /// Range scan of up to `usize` records.
    Scan(Vec<u8>, usize),
    /// Range scan over `[start, end)` of up to `usize` records, with the
    /// end key pushed down as an iterator upper bound.
    ScanBounded(Vec<u8>, Vec<u8>, usize),
    /// Read, then write back a modified value.
    ReadModifyWrite(Vec<u8>, Vec<u8>),
}

impl Op {
    /// Short label for stats tables.
    pub fn kind(&self) -> &'static str {
        match self {
            Op::Read(_) => "read",
            Op::Update(..) => "update",
            Op::Insert(..) => "insert",
            Op::Scan(..) => "scan",
            Op::ScanBounded(..) => "scan",
            Op::ReadModifyWrite(..) => "rmw",
        }
    }
}

/// A YCSB-style workload mix.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Human-readable name ("ycsb-a", ...).
    pub name: &'static str,
    /// Proportion of reads (0..=1).
    pub read: f64,
    /// Proportion of updates.
    pub update: f64,
    /// Proportion of inserts.
    pub insert: f64,
    /// Proportion of scans.
    pub scan: f64,
    /// Proportion of read-modify-writes.
    pub rmw: f64,
    /// Key popularity distribution.
    pub dist: KeyDistribution,
    /// Records loaded before the run.
    pub record_count: u64,
    /// Value payload size in bytes.
    pub value_size: usize,
    /// Maximum scan length.
    pub max_scan_len: usize,
}

impl WorkloadSpec {
    /// YCSB-A: 50% read / 50% update, zipfian.
    pub fn a(record_count: u64, value_size: usize) -> Self {
        WorkloadSpec {
            name: "ycsb-a",
            read: 0.5,
            update: 0.5,
            insert: 0.0,
            scan: 0.0,
            rmw: 0.0,
            dist: KeyDistribution::zipfian_default(),
            record_count,
            value_size,
            max_scan_len: 100,
        }
    }

    /// YCSB-B: 95% read / 5% update, zipfian.
    pub fn b(record_count: u64, value_size: usize) -> Self {
        WorkloadSpec {
            name: "ycsb-b",
            read: 0.95,
            update: 0.05,
            ..Self::a(record_count, value_size)
        }
    }

    /// YCSB-C: 100% read, zipfian.
    pub fn c(record_count: u64, value_size: usize) -> Self {
        WorkloadSpec { name: "ycsb-c", read: 1.0, update: 0.0, ..Self::a(record_count, value_size) }
    }

    /// YCSB-D: 95% read of recent records / 5% insert.
    pub fn d(record_count: u64, value_size: usize) -> Self {
        WorkloadSpec {
            name: "ycsb-d",
            read: 0.95,
            update: 0.0,
            insert: 0.05,
            dist: KeyDistribution::Latest { theta: 0.99 },
            ..Self::a(record_count, value_size)
        }
    }

    /// YCSB-E: 95% scan / 5% insert.
    pub fn e(record_count: u64, value_size: usize) -> Self {
        WorkloadSpec {
            name: "ycsb-e",
            read: 0.0,
            update: 0.0,
            insert: 0.05,
            scan: 0.95,
            ..Self::a(record_count, value_size)
        }
    }

    /// YCSB-F: 50% read / 50% read-modify-write.
    pub fn f(record_count: u64, value_size: usize) -> Self {
        WorkloadSpec {
            name: "ycsb-f",
            read: 0.5,
            update: 0.0,
            rmw: 0.5,
            ..Self::a(record_count, value_size)
        }
    }

    /// All six core workloads.
    pub fn core_suite(record_count: u64, value_size: usize) -> Vec<WorkloadSpec> {
        vec![
            Self::a(record_count, value_size),
            Self::b(record_count, value_size),
            Self::c(record_count, value_size),
            Self::d(record_count, value_size),
            Self::e(record_count, value_size),
            Self::f(record_count, value_size),
        ]
    }

    /// The load phase: insert every record once, in order.
    pub fn load_ops(&self) -> impl Iterator<Item = Op> + '_ {
        (0..self.record_count)
            .map(move |i| Op::Insert(user_key(i), value_for(i, 0, self.value_size)))
    }

    /// The transaction phase: `op_count` operations drawn from the mix.
    pub fn run_ops(&self, op_count: u64, seed: u64) -> OpStream {
        let total = self.read + self.update + self.insert + self.scan + self.rmw;
        assert!((total - 1.0).abs() < 1e-6, "{}: proportions sum to {total}", self.name);
        OpStream {
            spec: self.clone(),
            remaining: op_count,
            sampler: self.dist.sampler(self.record_count, StdRng::seed_from_u64(seed)),
            rng: StdRng::seed_from_u64(seed ^ 0x5eed),
            next_insert: self.record_count,
            version: 1,
        }
    }
}

/// Iterator producing the transaction phase operations.
pub struct OpStream {
    spec: WorkloadSpec,
    remaining: u64,
    sampler: KeySampler,
    rng: StdRng,
    next_insert: u64,
    version: u64,
}

impl Iterator for OpStream {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let spec = &self.spec;
        let roll: f64 = self.rng.gen();
        let key_index = self.sampler.next_key();
        let key = user_key(key_index);
        self.version += 1;
        let op = if roll < spec.read {
            Op::Read(key)
        } else if roll < spec.read + spec.update {
            Op::Update(key, value_for(key_index, self.version, spec.value_size))
        } else if roll < spec.read + spec.update + spec.insert {
            let i = self.next_insert;
            self.next_insert += 1;
            self.sampler.grow(self.next_insert);
            Op::Insert(user_key(i), value_for(i, 0, spec.value_size))
        } else if roll < spec.read + spec.update + spec.insert + spec.scan {
            let len = self.rng.gen_range(1..=spec.max_scan_len.max(1));
            Op::Scan(key, len)
        } else {
            Op::ReadModifyWrite(key, value_for(key_index, self.version, spec.value_size))
        };
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix_of(spec: &WorkloadSpec, n: u64) -> std::collections::HashMap<&'static str, u64> {
        let mut counts = std::collections::HashMap::new();
        for op in spec.run_ops(n, 7) {
            *counts.entry(op.kind()).or_insert(0) += 1;
        }
        counts
    }

    #[test]
    fn workload_a_is_half_read_half_update() {
        let counts = mix_of(&WorkloadSpec::a(1000, 64), 20_000);
        let reads = counts["read"] as f64;
        let updates = counts["update"] as f64;
        assert!((reads / 20_000.0 - 0.5).abs() < 0.02);
        assert!((updates / 20_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn workload_c_is_read_only() {
        let counts = mix_of(&WorkloadSpec::c(1000, 64), 5_000);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts["read"], 5_000);
    }

    #[test]
    fn workload_e_scans_dominate() {
        let counts = mix_of(&WorkloadSpec::e(1000, 64), 10_000);
        assert!(counts["scan"] > 9_000);
        assert!(counts.contains_key("insert"));
    }

    #[test]
    fn load_phase_covers_every_record_once() {
        let spec = WorkloadSpec::a(500, 32);
        let ops: Vec<Op> = spec.load_ops().collect();
        assert_eq!(ops.len(), 500);
        match &ops[499] {
            Op::Insert(k, v) => {
                assert_eq!(k, &user_key(499));
                assert_eq!(v.len(), 32);
            }
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn inserts_extend_the_keyspace_without_collisions() {
        let spec = WorkloadSpec::d(100, 16);
        let mut inserted = std::collections::HashSet::new();
        for op in spec.run_ops(5_000, 3) {
            if let Op::Insert(k, _) = op {
                assert!(inserted.insert(k), "duplicate insert key");
            }
        }
        assert!(!inserted.is_empty());
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let spec = WorkloadSpec::b(1000, 64);
        let a: Vec<Op> = spec.run_ops(100, 9).collect();
        let b: Vec<Op> = spec.run_ops(100, 9).collect();
        let c: Vec<Op> = spec.run_ops(100, 10).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn suite_has_six_distinct_workloads() {
        let suite = WorkloadSpec::core_suite(10, 8);
        let names: std::collections::HashSet<_> = suite.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 6);
    }
}
