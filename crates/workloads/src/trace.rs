//! Operation trace record/replay.
//!
//! Traces make benchmark runs portable and exactly repeatable: record any
//! operation stream to a compact binary file, then replay it against any
//! scheme. The format is length-framed and versioned:
//!
//! ```text
//! header : magic "RMTRACE1"
//! record : tag u8
//!          tag 0 Read   : varstring(key)
//!          tag 1 Update : varstring(key) varstring(value)
//!          tag 2 Insert : varstring(key) varstring(value)
//!          tag 3 Scan   : varstring(key) varint(limit)
//!          tag 4 RMW    : varstring(key) varstring(value)
//! ```

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::ycsb::Op;

const MAGIC: &[u8; 8] = b"RMTRACE1";

/// Errors from trace files.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the trace file.
    Malformed(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace io: {e}"),
            TraceError::Malformed(msg) => write!(f, "malformed trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

fn write_varint(w: &mut impl Write, mut v: u64) -> std::io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint(r: &mut impl Read) -> Result<u64, TraceError> {
    let mut out = 0u64;
    for shift in (0..70).step_by(7) {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        out |= ((byte[0] & 0x7f) as u64) << shift;
        if byte[0] < 0x80 {
            return Ok(out);
        }
    }
    Err(TraceError::Malformed("varint too long".into()))
}

fn write_bytes(w: &mut impl Write, data: &[u8]) -> std::io::Result<()> {
    write_varint(w, data.len() as u64)?;
    w.write_all(data)
}

fn read_bytes(r: &mut impl Read) -> Result<Vec<u8>, TraceError> {
    let len = read_varint(r)? as usize;
    if len > 64 << 20 {
        return Err(TraceError::Malformed("record too large".into()));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Record `ops` to a trace file at `path`. Returns the operation count.
pub fn record(path: &Path, ops: impl IntoIterator<Item = Op>) -> Result<u64, TraceError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC)?;
    let mut count = 0u64;
    for op in ops {
        match &op {
            Op::Read(k) => {
                w.write_all(&[0])?;
                write_bytes(&mut w, k)?;
            }
            Op::Update(k, v) => {
                w.write_all(&[1])?;
                write_bytes(&mut w, k)?;
                write_bytes(&mut w, v)?;
            }
            Op::Insert(k, v) => {
                w.write_all(&[2])?;
                write_bytes(&mut w, k)?;
                write_bytes(&mut w, v)?;
            }
            Op::Scan(k, limit) => {
                w.write_all(&[3])?;
                write_bytes(&mut w, k)?;
                write_varint(&mut w, *limit as u64)?;
            }
            Op::ReadModifyWrite(k, v) => {
                w.write_all(&[4])?;
                write_bytes(&mut w, k)?;
                write_bytes(&mut w, v)?;
            }
            Op::ScanBounded(from, to, limit) => {
                w.write_all(&[5])?;
                write_bytes(&mut w, from)?;
                write_bytes(&mut w, to)?;
                write_varint(&mut w, *limit as u64)?;
            }
        }
        count += 1;
    }
    w.flush()?;
    Ok(count)
}

/// Load every operation from a trace file.
pub fn replay(path: &Path) -> Result<Vec<Op>, TraceError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceError::Malformed("bad magic".into()));
    }
    let mut ops = Vec::new();
    loop {
        let mut tag = [0u8; 1];
        match r.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let op = match tag[0] {
            0 => Op::Read(read_bytes(&mut r)?),
            1 => Op::Update(read_bytes(&mut r)?, read_bytes(&mut r)?),
            2 => Op::Insert(read_bytes(&mut r)?, read_bytes(&mut r)?),
            3 => {
                let key = read_bytes(&mut r)?;
                let limit = read_varint(&mut r)? as usize;
                Op::Scan(key, limit)
            }
            4 => Op::ReadModifyWrite(read_bytes(&mut r)?, read_bytes(&mut r)?),
            5 => {
                let from = read_bytes(&mut r)?;
                let to = read_bytes(&mut r)?;
                let limit = read_varint(&mut r)? as usize;
                Op::ScanBounded(from, to, limit)
            }
            other => return Err(TraceError::Malformed(format!("unknown tag {other}"))),
        };
        ops.push(op);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ycsb::WorkloadSpec;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "rocksmash-trace-{tag}-{}-{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn roundtrip_all_op_kinds() {
        let ops = vec![
            Op::Read(b"k1".to_vec()),
            Op::Update(b"k2".to_vec(), b"v2".to_vec()),
            Op::Insert(b"k3".to_vec(), vec![0u8; 1000]),
            Op::Scan(b"k4".to_vec(), 57),
            Op::ReadModifyWrite(b"k5".to_vec(), b"".to_vec()),
        ];
        let path = temp_path("kinds");
        assert_eq!(record(&path, ops.clone()).unwrap(), 5);
        assert_eq!(replay(&path).unwrap(), ops);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ycsb_stream_roundtrips() {
        let spec = WorkloadSpec::a(500, 64);
        let ops: Vec<Op> = spec.run_ops(2_000, 9).collect();
        let path = temp_path("ycsb");
        record(&path, ops.clone()).unwrap();
        assert_eq!(replay(&path).unwrap(), ops);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_bad_magic() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTATRACE").unwrap();
        assert!(matches!(replay(&path), Err(TraceError::Malformed(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_truncation_mid_record() {
        let path = temp_path("trunc");
        record(&path, vec![Op::Update(b"key".to_vec(), vec![7u8; 500])]).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 10]).unwrap();
        assert!(replay(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_trace_is_valid() {
        let path = temp_path("empty");
        record(&path, Vec::new()).unwrap();
        assert!(replay(&path).unwrap().is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
