//! Deterministic key and value materialization (YCSB style).

/// Render key index `i` as a fixed-width user key.
pub fn user_key(i: u64) -> Vec<u8> {
    format!("user{i:012}").into_bytes()
}

/// Parse a key produced by [`user_key`] back to its index.
pub fn parse_user_key(key: &[u8]) -> Option<u64> {
    std::str::from_utf8(key).ok()?.strip_prefix("user")?.parse().ok()
}

/// Deterministic pseudo-random value of `len` bytes for key index `i` at
/// version `version`: reproducible across runs and schemes, compressible
/// like YCSB field payloads.
pub fn value_for(i: u64, version: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut state =
        i.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(version.wrapping_mul(0xc2b2ae3d27d4eb4f))
            | 1;
    while out.len() < len {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let word = state.wrapping_mul(0x2545F4914F6CDD1D);
        // Restrict to printable range so payloads resemble serialized
        // application fields rather than white noise.
        for b in word.to_le_bytes() {
            if out.len() == len {
                break;
            }
            out.push(b'a' + (b % 26));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_fixed_width_and_ordered() {
        let a = user_key(5);
        let b = user_key(6);
        let c = user_key(10_000);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), c.len());
        assert!(a < b && b < c);
    }

    #[test]
    fn key_parse_roundtrip() {
        for i in [0u64, 1, 999, u32::MAX as u64] {
            assert_eq!(parse_user_key(&user_key(i)), Some(i));
        }
        assert_eq!(parse_user_key(b"other"), None);
    }

    #[test]
    fn values_are_deterministic_and_version_sensitive() {
        assert_eq!(value_for(7, 0, 100), value_for(7, 0, 100));
        assert_ne!(value_for(7, 0, 100), value_for(7, 1, 100));
        assert_ne!(value_for(7, 0, 100), value_for(8, 0, 100));
        assert_eq!(value_for(7, 3, 1000).len(), 1000);
        assert_eq!(value_for(7, 3, 0).len(), 0);
    }

    #[test]
    fn values_are_printable() {
        assert!(value_for(42, 1, 256).iter().all(|b| b.is_ascii_lowercase()));
    }
}
