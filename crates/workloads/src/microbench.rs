//! db_bench-style microbenchmark operation streams.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dist::KeyDistribution;
use crate::keys::{user_key, value_for};
use crate::ycsb::Op;

/// Sequential load: keys 0..n in order (fastest possible ingest; builds a
/// perfectly sorted tree).
pub fn fillseq(n: u64, value_size: usize) -> Vec<Op> {
    (0..n).map(|i| Op::Insert(user_key(i), value_for(i, 0, value_size))).collect()
}

/// Random-order load of the same keyspace (compaction-heavy ingest).
pub fn fillrandom(n: u64, value_size: usize, seed: u64) -> Vec<Op> {
    let mut indices: Vec<u64> = (0..n).collect();
    indices.shuffle(&mut StdRng::seed_from_u64(seed));
    indices.into_iter().map(|i| Op::Insert(user_key(i), value_for(i, 0, value_size))).collect()
}

/// Point reads with the given distribution over an `n`-record keyspace.
pub fn readrandom(n: u64, ops: u64, dist: KeyDistribution, seed: u64) -> Vec<Op> {
    let mut sampler = dist.sampler(n, StdRng::seed_from_u64(seed));
    (0..ops).map(|_| Op::Read(user_key(sampler.next_key()))).collect()
}

/// Sequential full scan as `ops` chunks of `chunk` records each.
pub fn readseq(n: u64, chunk: usize) -> Vec<Op> {
    let mut out = Vec::new();
    let mut i = 0u64;
    while i < n {
        out.push(Op::Scan(user_key(i), chunk));
        i += chunk as u64;
    }
    out
}

/// Random seeks each followed by a short scan.
pub fn seekrandom(n: u64, ops: u64, scan_len: usize, dist: KeyDistribution, seed: u64) -> Vec<Op> {
    let mut sampler = dist.sampler(n, StdRng::seed_from_u64(seed));
    (0..ops).map(|_| Op::Scan(user_key(sampler.next_key()), scan_len)).collect()
}

/// Random seeks each followed by a short scan with a pushed-down upper
/// bound: the end key of each scan is known in advance (`start + len`), so
/// the iterator stops — and stops prefetching — exactly at the bound.
pub fn seekrandom_bounded(
    n: u64,
    ops: u64,
    scan_len: usize,
    dist: KeyDistribution,
    seed: u64,
) -> Vec<Op> {
    let mut sampler = dist.sampler(n, StdRng::seed_from_u64(seed));
    (0..ops)
        .map(|_| {
            let start = sampler.next_key();
            let end = (start + scan_len as u64).min(n);
            Op::ScanBounded(user_key(start), user_key(end), scan_len)
        })
        .collect()
}

/// Overwrites of existing keys (update-in-place pattern).
pub fn overwrite(n: u64, ops: u64, value_size: usize, dist: KeyDistribution, seed: u64) -> Vec<Op> {
    let mut sampler = dist.sampler(n, StdRng::seed_from_u64(seed));
    (0..ops)
        .map(|v| {
            let i = sampler.next_key();
            Op::Update(user_key(i), value_for(i, v + 1, value_size))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fillseq_is_ordered_and_complete() {
        let ops = fillseq(100, 16);
        assert_eq!(ops.len(), 100);
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Insert(k, _) => assert_eq!(k, &user_key(i as u64)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn fillrandom_is_a_permutation() {
        let ops = fillrandom(1000, 16, 5);
        let mut keys: Vec<Vec<u8>> = ops
            .iter()
            .map(|op| match op {
                Op::Insert(k, _) => k.clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        // Not already sorted (overwhelmingly likely for a real shuffle).
        assert!(keys.windows(2).any(|w| w[0] > w[1]));
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 1000);
    }

    #[test]
    fn readrandom_respects_keyspace() {
        for op in readrandom(50, 1000, KeyDistribution::zipfian_default(), 1) {
            match op {
                Op::Read(k) => assert!(crate::keys::parse_user_key(&k).unwrap() < 50),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn readseq_covers_keyspace_in_chunks() {
        let ops = readseq(100, 30);
        assert_eq!(ops.len(), 4); // 30+30+30+10
        match &ops[3] {
            Op::Scan(k, len) => {
                assert_eq!(crate::keys::parse_user_key(k).unwrap(), 90);
                assert_eq!(*len, 30);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn overwrite_versions_differ() {
        let ops = overwrite(10, 20, 32, KeyDistribution::Uniform, 2);
        let mut values = std::collections::HashSet::new();
        for op in ops {
            match op {
                Op::Update(_, v) => {
                    values.insert(v);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(values.len() > 15, "updates should carry distinct payloads");
    }
}
