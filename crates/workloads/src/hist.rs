//! Latency histograms — now provided by the engine-wide [`obs`] crate.
//!
//! The log-bucketed histogram originally lived here, measuring workloads
//! from the outside. It moved to `obs` (gaining lock-free sharded-atomic
//! recording) so the engine itself records the same distributions from
//! the inside; this module re-exports it for existing callers.

pub use obs::{HistogramSnapshot, LatencyHistogram};

#[cfg(test)]
mod tests {
    use super::*;

    // The harness-facing behaviours the runner depends on; the full edge
    // case suite (0-ns, u64::MAX, error bounds, merge) lives in `obs`.

    #[test]
    fn record_through_shared_reference() {
        let h = LatencyHistogram::new();
        h.record(1000);
        h.record_duration(std::time::Duration::from_micros(2));
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_ns(), 2000);
    }

    #[test]
    fn merge_for_per_thread_aggregation() {
        let overall = LatencyHistogram::new();
        let worker = LatencyHistogram::new();
        worker.record(500);
        overall.merge(&worker);
        assert_eq!(overall.count(), 1);
    }
}
