//! Log-bucketed latency histogram (HdrHistogram-lite).
//!
//! Buckets are powers of two of nanoseconds with 16 linear sub-buckets
//! each, giving ≤ ~6% relative error on percentile reads — plenty for the
//! p50/p95/p99 rows the evaluation reports.

const SUB: usize = 16;
const BUCKETS: usize = 40; // up to ~2^40 ns ≈ 18 minutes

/// Latency histogram over nanosecond samples.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS * SUB],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    fn index(ns: u64) -> usize {
        let ns = ns.max(1);
        let bucket = (63 - ns.leading_zeros()) as usize;
        let bucket = bucket.min(BUCKETS - 1);
        let base = 1u64 << bucket;
        let sub = if bucket == 0 {
            0
        } else {
            ((ns - base) as u128 * SUB as u128 / base as u128) as usize
        };
        bucket * SUB + sub.min(SUB - 1)
    }

    fn bucket_value(index: usize) -> u64 {
        let bucket = index / SUB;
        let sub = (index % SUB) as u64;
        let base = 1u64 << bucket;
        // Midpoint of the sub-bucket.
        base + base * sub / SUB as u64 + base / (2 * SUB as u64)
    }

    /// Record one sample in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::index(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Record a `std::time::Duration` sample.
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Largest sample seen (exact).
    pub fn max_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max_ns
        }
    }

    /// Smallest sample seen (exact).
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Approximate `p`-th percentile in nanoseconds, `p` in [0, 100].
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i);
            }
        }
        self.max_ns
    }

    /// Compact one-line summary (microseconds).
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.1}us p50={:.1}us p95={:.1}us p99={:.1}us max={:.1}us",
            self.total,
            self.mean_ns() / 1000.0,
            self.percentile_ns(50.0) as f64 / 1000.0,
            self.percentile_ns(95.0) as f64 / 1000.0,
            self.percentile_ns(99.0) as f64 / 1000.0,
            self.max_ns() as f64 / 1000.0,
        )
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.percentile_ns(99.0), 0);
    }

    #[test]
    fn single_sample() {
        let mut h = LatencyHistogram::new();
        h.record(1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_ns(), 1000);
        assert_eq!(h.min_ns(), 1000);
        let p50 = h.percentile_ns(50.0);
        assert!((900..=1100).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn percentiles_are_monotonic_and_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 100);
        }
        let p50 = h.percentile_ns(50.0);
        let p95 = h.percentile_ns(95.0);
        let p99 = h.percentile_ns(99.0);
        assert!(p50 <= p95 && p95 <= p99);
        // Within ~7% of the true values.
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.08, "p50 {p50}");
        assert!((p99 as f64 - 990_000.0).abs() / 990_000.0 < 0.08, "p99 {p99}");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        assert!((h.mean_ns() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(100);
        b.record(10_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 10_000);
        assert_eq!(a.min_ns(), 100);
    }

    #[test]
    fn huge_and_tiny_samples_do_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.percentile_ns(100.0) > 0);
    }
}
