//! SSTable construction.

use storage::WritableFile;

use crate::error::Result;
use crate::options::Options;
use crate::sstable::block::BlockBuilder;
use crate::sstable::bloom::BloomFilter;
use crate::sstable::{BlockHandle, Footer, FORMAT_MONOLITHIC, FORMAT_PARTITIONED};
use crate::types::extract_user_key;
use crate::util::{crc32c_extend, mask_crc};

/// One completed index/filter partition, buffered until `finish` lays the
/// blocks out on disk. A partition covers `partitioned_index_granularity`
/// consecutive data blocks (the final partition may cover fewer).
struct FinishedPartition {
    /// Internal key of the partition's last entry; the top-level index and
    /// filter index both key on it.
    last_key: Vec<u8>,
    /// Finished index-block contents for this partition's data blocks.
    index_contents: Vec<u8>,
    /// Encoded bloom filter over this partition's user keys, if enabled.
    filter: Option<Vec<u8>>,
}

/// Builds one table file from entries added in internal-key order.
pub struct TableBuilder {
    file: Box<dyn WritableFile>,
    options: Options,
    data_block: BlockBuilder,
    index_block: BlockBuilder,
    /// Last key added (full internal key); becomes the index entry key when
    /// the data block is cut.
    last_key: Vec<u8>,
    /// User keys for the bloom filter (whole file in monolithic mode, the
    /// current partition in partitioned mode).
    filter_keys: Vec<Vec<u8>>,
    offset: u64,
    pending_index: Option<(Vec<u8>, BlockHandle)>,
    num_entries: u64,
    smallest: Option<Vec<u8>>,
    /// Data blocks indexed into the current partition (partitioned mode).
    blocks_in_partition: usize,
    /// Partitions completed so far (partitioned mode).
    partitions: Vec<FinishedPartition>,
}

impl TableBuilder {
    /// Start building into `file`.
    pub fn new(file: Box<dyn WritableFile>, options: Options) -> Self {
        let restart = options.block_restart_interval;
        TableBuilder {
            file,
            options,
            data_block: BlockBuilder::new(restart),
            index_block: BlockBuilder::new(1),
            last_key: Vec::new(),
            filter_keys: Vec::new(),
            offset: 0,
            pending_index: None,
            num_entries: 0,
            smallest: None,
            blocks_in_partition: 0,
            partitions: Vec::new(),
        }
    }

    /// Append an entry. Keys must arrive in strictly increasing
    /// internal-key order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.flush_pending_index();
        if self.smallest.is_none() {
            self.smallest = Some(key.to_vec());
        }
        self.data_block.add(key, value);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        if self.options.bloom_bits_per_key > 0 {
            let user_key = extract_user_key(key);
            // Consecutive versions of one user key need only one filter
            // probe entry.
            if self.filter_keys.last().map(|k| k.as_slice()) != Some(user_key) {
                self.filter_keys.push(user_key.to_vec());
            }
        }
        self.num_entries += 1;
        if self.data_block.size_estimate() >= self.options.block_size {
            self.cut_data_block()?;
        }
        Ok(())
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Bytes written to the file so far (excluding buffered block).
    pub fn file_size(&self) -> u64 {
        self.offset
    }

    /// Estimated final size if finished now.
    pub fn estimated_size(&self) -> u64 {
        self.offset + self.data_block.size_estimate() as u64
    }

    /// Smallest internal key added.
    pub fn smallest(&self) -> Option<&[u8]> {
        self.smallest.as_deref()
    }

    /// Largest internal key added.
    pub fn largest(&self) -> Option<&[u8]> {
        if self.num_entries == 0 {
            None
        } else {
            Some(&self.last_key)
        }
    }

    /// Finish the table: write remaining blocks, filter, index, and footer.
    /// Returns the final file size.
    pub fn finish(mut self) -> Result<u64> {
        self.cut_data_block()?;
        self.flush_pending_index();

        let compress = self.options.compression;
        if self.options.partitioned_index_granularity > 0 {
            if !self.index_block.is_empty() {
                let last = self.last_key.clone();
                self.finalize_partition(last);
            }
            return self.finish_partitioned(compress);
        }

        let filter_handle = if self.options.bloom_bits_per_key > 0 && !self.filter_keys.is_empty() {
            let filter = BloomFilter::build(
                self.filter_keys.iter().map(|k| k.as_slice()),
                self.options.bloom_bits_per_key,
            );
            write_raw_block(&mut self.file, &mut self.offset, &filter.encode(), compress)?
        } else {
            BlockHandle::default()
        };

        let index_contents =
            std::mem::replace(&mut self.index_block, BlockBuilder::new(1)).finish();
        let index_handle =
            write_raw_block(&mut self.file, &mut self.offset, &index_contents, compress)?;

        let footer = Footer { filter_handle, index_handle, version: FORMAT_MONOLITHIC };
        self.file.append(&footer.encode())?;
        self.offset += super::FOOTER_SIZE as u64;
        self.file.finish()?;
        Ok(self.offset)
    }

    /// Write the partitioned (v1) tail: per-partition filters, per-partition
    /// index blocks, the filter index, the top-level index, and the footer.
    fn finish_partitioned(mut self, compress: bool) -> Result<u64> {
        let partitions = std::mem::take(&mut self.partitions);

        let mut filter_handles = Vec::with_capacity(partitions.len());
        for p in &partitions {
            filter_handles.push(match &p.filter {
                Some(enc) => write_raw_block(&mut self.file, &mut self.offset, enc, compress)?,
                None => BlockHandle::default(),
            });
        }
        let mut index_handles = Vec::with_capacity(partitions.len());
        for p in &partitions {
            index_handles.push(write_raw_block(
                &mut self.file,
                &mut self.offset,
                &p.index_contents,
                compress,
            )?);
        }

        let filter_index_handle = if filter_handles.iter().any(|h| h.size > 0) {
            let mut b = BlockBuilder::new(1);
            for (p, h) in partitions.iter().zip(&filter_handles) {
                b.add(&p.last_key, &h.encode());
            }
            write_raw_block(&mut self.file, &mut self.offset, &b.finish(), compress)?
        } else {
            BlockHandle::default()
        };

        let mut top = BlockBuilder::new(1);
        for (p, h) in partitions.iter().zip(&index_handles) {
            top.add(&p.last_key, &h.encode());
        }
        let top_handle =
            write_raw_block(&mut self.file, &mut self.offset, &top.finish(), compress)?;

        let footer = Footer {
            filter_handle: filter_index_handle,
            index_handle: top_handle,
            version: FORMAT_PARTITIONED,
        };
        self.file.append(&footer.encode())?;
        self.offset += super::FOOTER_SIZE as u64;
        self.file.finish()?;
        Ok(self.offset)
    }

    /// Seal the current partition: its index block contents and bloom
    /// filter are buffered in memory until `finish` writes the file tail.
    fn finalize_partition(&mut self, last_key: Vec<u8>) {
        let index_contents =
            std::mem::replace(&mut self.index_block, BlockBuilder::new(1)).finish();
        let filter = if self.options.bloom_bits_per_key > 0 && !self.filter_keys.is_empty() {
            let f = BloomFilter::build(
                self.filter_keys.iter().map(|k| k.as_slice()),
                self.options.bloom_bits_per_key,
            );
            Some(f.encode())
        } else {
            None
        };
        self.filter_keys.clear();
        self.blocks_in_partition = 0;
        self.partitions.push(FinishedPartition { last_key, index_contents, filter });
    }

    fn cut_data_block(&mut self) -> Result<()> {
        if self.data_block.is_empty() {
            return Ok(());
        }
        let restart = self.options.block_restart_interval;
        let contents = std::mem::replace(&mut self.data_block, BlockBuilder::new(restart)).finish();
        let handle =
            write_raw_block(&mut self.file, &mut self.offset, &contents, self.options.compression)?;
        // Index entry is written lazily: LevelDB shortens the separator key
        // between blocks; we use the block's exact last key, recorded now
        // and emitted before the next add or at finish.
        self.pending_index = Some((self.last_key.clone(), handle));
        Ok(())
    }

    fn flush_pending_index(&mut self) {
        if let Some((key, handle)) = self.pending_index.take() {
            self.index_block.add(&key, &handle.encode());
            let granularity = self.options.partitioned_index_granularity;
            if granularity > 0 {
                // `filter_keys` holds exactly the completed blocks' user
                // keys here: the entry that will start the next block has
                // not been added yet.
                self.blocks_in_partition += 1;
                if self.blocks_in_partition >= granularity {
                    self.finalize_partition(key);
                }
            }
        }
    }
}

/// Write block contents plus the 5-byte trailer; returns its handle.
/// With `compress`, blocks that shrink are stored LZ-compressed (trailer
/// type byte 1); others fall back to raw (type byte 0).
fn write_raw_block(
    file: &mut Box<dyn WritableFile>,
    offset: &mut u64,
    contents: &[u8],
    compress: bool,
) -> Result<BlockHandle> {
    let (stored, type_byte): (std::borrow::Cow<'_, [u8]>, u8) = if compress {
        match crate::compress::compress(contents) {
            Some(c) => (std::borrow::Cow::Owned(c), 1),
            None => (std::borrow::Cow::Borrowed(contents), 0),
        }
    } else {
        (std::borrow::Cow::Borrowed(contents), 0)
    };
    let handle = BlockHandle { offset: *offset, size: stored.len() as u64 };
    file.append(&stored)?;
    // Trailer: compression type byte + masked CRC over the stored bytes
    // and the type byte.
    let crc = mask_crc(crc32c_extend(crate::util::crc32c(&stored), &[type_byte]));
    let mut trailer = [0u8; super::BLOCK_TRAILER_SIZE];
    trailer[0] = type_byte;
    trailer[1..].copy_from_slice(&crc.to_le_bytes());
    file.append(&trailer)?;
    *offset += stored.len() as u64 + super::BLOCK_TRAILER_SIZE as u64;
    Ok(handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, ValueType};
    use storage::{Env, MemEnv};

    #[test]
    fn builder_tracks_bounds_and_count() {
        let env = MemEnv::new();
        let mut b = TableBuilder::new(env.new_writable("t").unwrap(), Options::small_for_tests());
        assert!(b.smallest().is_none());
        for i in 0..10 {
            let k = make_internal_key(format!("k{i:02}").as_bytes(), i + 1, ValueType::Value);
            b.add(&k, b"v").unwrap();
        }
        assert_eq!(b.num_entries(), 10);
        assert_eq!(extract_user_key(b.smallest().unwrap()), b"k00");
        assert_eq!(extract_user_key(b.largest().unwrap()), b"k09");
        let size = b.finish().unwrap();
        assert_eq!(env.size("t").unwrap(), size);
        assert!(size > super::super::FOOTER_SIZE as u64);
    }

    #[test]
    fn footer_of_finished_table_parses() {
        let env = MemEnv::new();
        let mut b = TableBuilder::new(env.new_writable("t").unwrap(), Options::small_for_tests());
        let k = make_internal_key(b"a", 1, ValueType::Value);
        b.add(&k, b"v").unwrap();
        b.finish().unwrap();
        let data = env.read_all("t").unwrap();
        let footer = Footer::decode(&data[data.len() - super::super::FOOTER_SIZE..]).unwrap();
        assert!(footer.index_handle.size > 0);
        assert!(footer.filter_handle.size > 0);
    }

    #[test]
    fn multiple_blocks_are_cut() {
        let env = MemEnv::new();
        let opts = Options { block_size: 256, ..Options::small_for_tests() };
        let mut b = TableBuilder::new(env.new_writable("t").unwrap(), opts);
        for i in 0..200 {
            let k = make_internal_key(format!("key{i:05}").as_bytes(), i + 1, ValueType::Value);
            b.add(&k, &[b'x'; 32]).unwrap();
        }
        // Many blocks worth of data should have been written already.
        assert!(b.file_size() > 1024);
        b.finish().unwrap();
    }

    #[test]
    fn empty_table_still_finishes() {
        let env = MemEnv::new();
        let b = TableBuilder::new(env.new_writable("t").unwrap(), Options::small_for_tests());
        let size = b.finish().unwrap();
        // Index (possibly empty block) + footer.
        assert!(size >= super::super::FOOTER_SIZE as u64);
    }

    #[test]
    fn partitioned_build_writes_v1_footer() {
        let env = MemEnv::new();
        let opts = Options {
            block_size: 256,
            partitioned_index_granularity: 4,
            ..Options::small_for_tests()
        };
        let mut b = TableBuilder::new(env.new_writable("t").unwrap(), opts);
        for i in 0..200 {
            let k = make_internal_key(format!("key{i:05}").as_bytes(), i + 1, ValueType::Value);
            b.add(&k, &[b'x'; 32]).unwrap();
        }
        b.finish().unwrap();
        let data = env.read_all("t").unwrap();
        let footer = Footer::decode(&data[data.len() - super::super::FOOTER_SIZE..]).unwrap();
        assert_eq!(footer.version, super::super::FORMAT_PARTITIONED);
        assert!(footer.index_handle.size > 0);
        assert!(footer.filter_handle.size > 0);
    }

    #[test]
    fn granularity_zero_stays_bit_identical_to_legacy() {
        // The default knob must not perturb the on-disk format at all.
        let build = |granularity| {
            let env = MemEnv::new();
            let opts = Options {
                block_size: 256,
                partitioned_index_granularity: granularity,
                ..Options::small_for_tests()
            };
            let mut b = TableBuilder::new(env.new_writable("t").unwrap(), opts);
            for i in 0..50 {
                let k = make_internal_key(format!("key{i:05}").as_bytes(), i + 1, ValueType::Value);
                b.add(&k, b"value").unwrap();
            }
            b.finish().unwrap();
            env.read_all("t").unwrap()
        };
        assert_eq!(build(0), build(0));
        assert_ne!(build(0), build(4));
    }

    #[test]
    fn empty_partitioned_table_still_finishes() {
        let env = MemEnv::new();
        let opts = Options { partitioned_index_granularity: 2, ..Options::small_for_tests() };
        let b = TableBuilder::new(env.new_writable("t").unwrap(), opts);
        let size = b.finish().unwrap();
        assert!(size >= super::super::FOOTER_SIZE as u64);
        let data = env.read_all("t").unwrap();
        let footer = Footer::decode(&data[data.len() - super::super::FOOTER_SIZE..]).unwrap();
        assert_eq!(footer.version, super::super::FORMAT_PARTITIONED);
    }
}
