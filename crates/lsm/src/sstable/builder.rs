//! SSTable construction.

use storage::WritableFile;

use crate::error::Result;
use crate::options::Options;
use crate::sstable::block::BlockBuilder;
use crate::sstable::bloom::BloomFilter;
use crate::sstable::{BlockHandle, Footer};
use crate::types::extract_user_key;
use crate::util::{crc32c_extend, mask_crc};

/// Builds one table file from entries added in internal-key order.
pub struct TableBuilder {
    file: Box<dyn WritableFile>,
    options: Options,
    data_block: BlockBuilder,
    index_block: BlockBuilder,
    /// Last key added (full internal key); becomes the index entry key when
    /// the data block is cut.
    last_key: Vec<u8>,
    /// User keys for the file's bloom filter.
    filter_keys: Vec<Vec<u8>>,
    offset: u64,
    pending_index: Option<(Vec<u8>, BlockHandle)>,
    num_entries: u64,
    smallest: Option<Vec<u8>>,
}

impl TableBuilder {
    /// Start building into `file`.
    pub fn new(file: Box<dyn WritableFile>, options: Options) -> Self {
        let restart = options.block_restart_interval;
        TableBuilder {
            file,
            options,
            data_block: BlockBuilder::new(restart),
            index_block: BlockBuilder::new(1),
            last_key: Vec::new(),
            filter_keys: Vec::new(),
            offset: 0,
            pending_index: None,
            num_entries: 0,
            smallest: None,
        }
    }

    /// Append an entry. Keys must arrive in strictly increasing
    /// internal-key order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.flush_pending_index();
        if self.smallest.is_none() {
            self.smallest = Some(key.to_vec());
        }
        self.data_block.add(key, value);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        if self.options.bloom_bits_per_key > 0 {
            let user_key = extract_user_key(key);
            // Consecutive versions of one user key need only one filter
            // probe entry.
            if self.filter_keys.last().map(|k| k.as_slice()) != Some(user_key) {
                self.filter_keys.push(user_key.to_vec());
            }
        }
        self.num_entries += 1;
        if self.data_block.size_estimate() >= self.options.block_size {
            self.cut_data_block()?;
        }
        Ok(())
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Bytes written to the file so far (excluding buffered block).
    pub fn file_size(&self) -> u64 {
        self.offset
    }

    /// Estimated final size if finished now.
    pub fn estimated_size(&self) -> u64 {
        self.offset + self.data_block.size_estimate() as u64
    }

    /// Smallest internal key added.
    pub fn smallest(&self) -> Option<&[u8]> {
        self.smallest.as_deref()
    }

    /// Largest internal key added.
    pub fn largest(&self) -> Option<&[u8]> {
        if self.num_entries == 0 {
            None
        } else {
            Some(&self.last_key)
        }
    }

    /// Finish the table: write remaining blocks, filter, index, and footer.
    /// Returns the final file size.
    pub fn finish(mut self) -> Result<u64> {
        self.cut_data_block()?;
        self.flush_pending_index();

        let compress = self.options.compression;
        let filter_handle = if self.options.bloom_bits_per_key > 0 && !self.filter_keys.is_empty() {
            let filter = BloomFilter::build(
                self.filter_keys.iter().map(|k| k.as_slice()),
                self.options.bloom_bits_per_key,
            );
            write_raw_block(&mut self.file, &mut self.offset, &filter.encode(), compress)?
        } else {
            BlockHandle::default()
        };

        let index_contents =
            std::mem::replace(&mut self.index_block, BlockBuilder::new(1)).finish();
        let index_handle =
            write_raw_block(&mut self.file, &mut self.offset, &index_contents, compress)?;

        let footer = Footer { filter_handle, index_handle };
        self.file.append(&footer.encode())?;
        self.offset += super::FOOTER_SIZE as u64;
        self.file.finish()?;
        Ok(self.offset)
    }

    fn cut_data_block(&mut self) -> Result<()> {
        if self.data_block.is_empty() {
            return Ok(());
        }
        let restart = self.options.block_restart_interval;
        let contents = std::mem::replace(&mut self.data_block, BlockBuilder::new(restart)).finish();
        let handle =
            write_raw_block(&mut self.file, &mut self.offset, &contents, self.options.compression)?;
        // Index entry is written lazily: LevelDB shortens the separator key
        // between blocks; we use the block's exact last key, recorded now
        // and emitted before the next add or at finish.
        self.pending_index = Some((self.last_key.clone(), handle));
        Ok(())
    }

    fn flush_pending_index(&mut self) {
        if let Some((key, handle)) = self.pending_index.take() {
            self.index_block.add(&key, &handle.encode());
        }
    }
}

/// Write block contents plus the 5-byte trailer; returns its handle.
/// With `compress`, blocks that shrink are stored LZ-compressed (trailer
/// type byte 1); others fall back to raw (type byte 0).
fn write_raw_block(
    file: &mut Box<dyn WritableFile>,
    offset: &mut u64,
    contents: &[u8],
    compress: bool,
) -> Result<BlockHandle> {
    let (stored, type_byte): (std::borrow::Cow<'_, [u8]>, u8) = if compress {
        match crate::compress::compress(contents) {
            Some(c) => (std::borrow::Cow::Owned(c), 1),
            None => (std::borrow::Cow::Borrowed(contents), 0),
        }
    } else {
        (std::borrow::Cow::Borrowed(contents), 0)
    };
    let handle = BlockHandle { offset: *offset, size: stored.len() as u64 };
    file.append(&stored)?;
    // Trailer: compression type byte + masked CRC over the stored bytes
    // and the type byte.
    let crc = mask_crc(crc32c_extend(crate::util::crc32c(&stored), &[type_byte]));
    let mut trailer = [0u8; super::BLOCK_TRAILER_SIZE];
    trailer[0] = type_byte;
    trailer[1..].copy_from_slice(&crc.to_le_bytes());
    file.append(&trailer)?;
    *offset += stored.len() as u64 + super::BLOCK_TRAILER_SIZE as u64;
    Ok(handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, ValueType};
    use storage::{Env, MemEnv};

    #[test]
    fn builder_tracks_bounds_and_count() {
        let env = MemEnv::new();
        let mut b = TableBuilder::new(env.new_writable("t").unwrap(), Options::small_for_tests());
        assert!(b.smallest().is_none());
        for i in 0..10 {
            let k = make_internal_key(format!("k{i:02}").as_bytes(), i + 1, ValueType::Value);
            b.add(&k, b"v").unwrap();
        }
        assert_eq!(b.num_entries(), 10);
        assert_eq!(extract_user_key(b.smallest().unwrap()), b"k00");
        assert_eq!(extract_user_key(b.largest().unwrap()), b"k09");
        let size = b.finish().unwrap();
        assert_eq!(env.size("t").unwrap(), size);
        assert!(size > super::super::FOOTER_SIZE as u64);
    }

    #[test]
    fn footer_of_finished_table_parses() {
        let env = MemEnv::new();
        let mut b = TableBuilder::new(env.new_writable("t").unwrap(), Options::small_for_tests());
        let k = make_internal_key(b"a", 1, ValueType::Value);
        b.add(&k, b"v").unwrap();
        b.finish().unwrap();
        let data = env.read_all("t").unwrap();
        let footer = Footer::decode(&data[data.len() - super::super::FOOTER_SIZE..]).unwrap();
        assert!(footer.index_handle.size > 0);
        assert!(footer.filter_handle.size > 0);
    }

    #[test]
    fn multiple_blocks_are_cut() {
        let env = MemEnv::new();
        let opts = Options { block_size: 256, ..Options::small_for_tests() };
        let mut b = TableBuilder::new(env.new_writable("t").unwrap(), opts);
        for i in 0..200 {
            let k = make_internal_key(format!("key{i:05}").as_bytes(), i + 1, ValueType::Value);
            b.add(&k, &[b'x'; 32]).unwrap();
        }
        // Many blocks worth of data should have been written already.
        assert!(b.file_size() > 1024);
        b.finish().unwrap();
    }

    #[test]
    fn empty_table_still_finishes() {
        let env = MemEnv::new();
        let b = TableBuilder::new(env.new_writable("t").unwrap(), Options::small_for_tests());
        let size = b.finish().unwrap();
        // Index (possibly empty block) + footer.
        assert!(size >= super::super::FOOTER_SIZE as u64);
    }
}
