//! Block-based immutable sorted tables (SSTables).
//!
//! Version 0 file layout (LevelDB-compatible in spirit):
//!
//! ```text
//! [data block 0][trailer] [data block 1][trailer] ...
//! [filter block][trailer]
//! [index block][trailer]
//! [footer: filter handle | index handle | padding | version=0 | magic]
//! ```
//!
//! Version 1 (partitioned index, written when
//! `Options::partitioned_index_granularity > 0`) cuts the index and the
//! bloom filter into partitions of N data blocks each, with a small
//! two-level structure on top:
//!
//! ```text
//! [data block 0][trailer] ... [data block M][trailer]
//! [filter partition 0][trailer] ... [filter partition P][trailer]
//! [index partition 0][trailer] ... [index partition P][trailer]
//! [filter index block][trailer]   (partition last key -> filter handle)
//! [top index block][trailer]      (partition last key -> index partition handle)
//! [footer: filter index handle | top index handle | padding | version=1 | magic]
//! ```
//!
//! Every block is followed by a 5-byte trailer: a compression byte (0 =
//! none) and a masked CRC32C over the block contents plus the compression
//! byte. An index block (or partition) maps each data block's last key to
//! its [`BlockHandle`]; a filter block holds one bloom filter over the
//! user keys it covers (the whole file in v0, one partition in v1).
//! Opening a v1 table pins only the two small top-level blocks; index
//! partitions load lazily through the block cache.

pub mod block;
pub mod bloom;
pub mod builder;
pub mod reader;

pub use block::{Block, BlockBuilder, BlockIter};
pub use bloom::BloomFilter;
pub use builder::TableBuilder;
pub use reader::{Table, TableIter};

use crate::error::{Error, Result};
use crate::util::{get_varint64, put_varint64};

/// Magic number terminating every table file.
pub const TABLE_MAGIC: u64 = 0x8773_6d61_6b63_6f72; // "rocksmas" little-endian-ish

/// Fixed footer size in bytes.
pub const FOOTER_SIZE: usize = 48;

/// Per-block trailer: compression byte + masked CRC32C.
pub const BLOCK_TRAILER_SIZE: usize = 5;

/// Location of a block within a table file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockHandle {
    /// Byte offset of the block's first byte.
    pub offset: u64,
    /// Length of the block contents, excluding the trailer.
    pub size: u64,
}

impl BlockHandle {
    /// Encode as two varints.
    pub fn encode_to(&self, dst: &mut Vec<u8>) {
        put_varint64(dst, self.offset);
        put_varint64(dst, self.size);
    }

    /// Encoded representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20);
        self.encode_to(&mut out);
        out
    }

    /// Decode from the front of `src`, returning the handle and bytes used.
    pub fn decode_from(src: &[u8]) -> Result<(BlockHandle, usize)> {
        let (offset, n) = get_varint64(src).ok_or_else(|| Error::corruption("bad block handle"))?;
        let (size, m) =
            get_varint64(&src[n..]).ok_or_else(|| Error::corruption("bad block handle"))?;
        Ok((BlockHandle { offset, size }, n + m))
    }
}

/// Table format version written into the footer. Version 0 is the legacy
/// monolithic layout; version 1 is the partitioned-index layout. Legacy
/// files wrote zero padding where the version byte now lives, so they
/// decode as version 0 unchanged.
pub const FORMAT_MONOLITHIC: u8 = 0;
/// Partitioned-index format: the footer handles point at the filter index
/// and the top-level index instead of the filter and index blocks.
pub const FORMAT_PARTITIONED: u8 = 1;

/// Footer: filter handle, index handle, zero padding, version, magic.
///
/// In version 0, `filter_handle` locates the single bloom filter and
/// `index_handle` the monolithic index block. In version 1 the same two
/// slots locate the filter index block and the top-level index block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footer {
    /// Handle of the filter block (v0) or filter index block (v1);
    /// `size == 0` means no filter.
    pub filter_handle: BlockHandle,
    /// Handle of the index block (v0) or top-level index block (v1).
    pub index_handle: BlockHandle,
    /// Format version: [`FORMAT_MONOLITHIC`] or [`FORMAT_PARTITIONED`].
    pub version: u8,
}

impl Footer {
    /// Serialize to exactly [`FOOTER_SIZE`] bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FOOTER_SIZE);
        self.filter_handle.encode_to(&mut out);
        self.index_handle.encode_to(&mut out);
        debug_assert!(out.len() <= FOOTER_SIZE - 9, "footer handles overflow padding");
        out.resize(FOOTER_SIZE - 9, 0);
        out.push(self.version);
        out.extend_from_slice(&TABLE_MAGIC.to_le_bytes());
        out
    }

    /// Parse a footer, validating length, magic, and format version.
    pub fn decode(src: &[u8]) -> Result<Footer> {
        if src.len() != FOOTER_SIZE {
            return Err(Error::corruption("footer size mismatch"));
        }
        let magic = u64::from_le_bytes(src[FOOTER_SIZE - 8..].try_into().expect("8 bytes"));
        if magic != TABLE_MAGIC {
            return Err(Error::corruption("bad table magic"));
        }
        let version = src[FOOTER_SIZE - 9];
        if version > FORMAT_PARTITIONED {
            return Err(Error::corruption("unsupported table format version"));
        }
        let (filter_handle, n) = BlockHandle::decode_from(src)?;
        let (index_handle, _) = BlockHandle::decode_from(&src[n..])?;
        Ok(Footer { filter_handle, index_handle, version })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_roundtrip() {
        for h in [
            BlockHandle { offset: 0, size: 0 },
            BlockHandle { offset: 12345, size: 4096 },
            BlockHandle { offset: u64::MAX, size: u64::MAX },
        ] {
            let enc = h.encode();
            let (dec, n) = BlockHandle::decode_from(&enc).unwrap();
            assert_eq!(dec, h);
            assert_eq!(n, enc.len());
        }
    }

    #[test]
    fn footer_roundtrip() {
        for version in [FORMAT_MONOLITHIC, FORMAT_PARTITIONED] {
            let f = Footer {
                filter_handle: BlockHandle { offset: 100, size: 200 },
                index_handle: BlockHandle { offset: 300, size: 400 },
                version,
            };
            let enc = f.encode();
            assert_eq!(enc.len(), FOOTER_SIZE);
            assert_eq!(Footer::decode(&enc).unwrap(), f);
        }
    }

    #[test]
    fn footer_rejects_bad_magic() {
        let f = Footer {
            filter_handle: BlockHandle::default(),
            index_handle: BlockHandle::default(),
            version: FORMAT_MONOLITHIC,
        };
        let mut enc = f.encode();
        enc[FOOTER_SIZE - 1] ^= 0xff;
        assert!(Footer::decode(&enc).is_err());
    }

    #[test]
    fn footer_rejects_bad_length() {
        assert!(Footer::decode(&[0u8; FOOTER_SIZE - 1]).is_err());
    }

    #[test]
    fn footer_rejects_unknown_version() {
        let f = Footer {
            filter_handle: BlockHandle::default(),
            index_handle: BlockHandle::default(),
            version: FORMAT_MONOLITHIC,
        };
        let mut enc = f.encode();
        enc[FOOTER_SIZE - 9] = 0x7f;
        assert!(Footer::decode(&enc).is_err());
    }

    #[test]
    fn legacy_zero_padding_decodes_as_monolithic() {
        // Pre-version files zero-padded the byte the version now occupies;
        // they must keep decoding as format 0.
        let f = Footer {
            filter_handle: BlockHandle { offset: 1, size: 2 },
            index_handle: BlockHandle { offset: 3, size: 4 },
            version: FORMAT_MONOLITHIC,
        };
        let mut legacy = Vec::with_capacity(FOOTER_SIZE);
        f.filter_handle.encode_to(&mut legacy);
        f.index_handle.encode_to(&mut legacy);
        legacy.resize(FOOTER_SIZE - 8, 0);
        legacy.extend_from_slice(&TABLE_MAGIC.to_le_bytes());
        assert_eq!(Footer::decode(&legacy).unwrap(), f);
    }
}
