//! Block-based immutable sorted tables (SSTables).
//!
//! File layout (LevelDB-compatible in spirit):
//!
//! ```text
//! [data block 0][trailer] [data block 1][trailer] ...
//! [filter block][trailer]
//! [index block][trailer]
//! [footer: filter handle | index handle | padding | magic]
//! ```
//!
//! Every block is followed by a 5-byte trailer: a compression byte (0 =
//! none) and a masked CRC32C over the block contents plus the compression
//! byte. The index block maps each data block's last key to its
//! [`BlockHandle`]; the filter block holds one bloom filter over all user
//! keys in the file.

pub mod block;
pub mod bloom;
pub mod builder;
pub mod reader;

pub use block::{Block, BlockBuilder, BlockIter};
pub use bloom::BloomFilter;
pub use builder::TableBuilder;
pub use reader::{Table, TableIter};

use crate::error::{Error, Result};
use crate::util::{get_varint64, put_varint64};

/// Magic number terminating every table file.
pub const TABLE_MAGIC: u64 = 0x8773_6d61_6b63_6f72; // "rocksmas" little-endian-ish

/// Fixed footer size in bytes.
pub const FOOTER_SIZE: usize = 48;

/// Per-block trailer: compression byte + masked CRC32C.
pub const BLOCK_TRAILER_SIZE: usize = 5;

/// Location of a block within a table file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockHandle {
    /// Byte offset of the block's first byte.
    pub offset: u64,
    /// Length of the block contents, excluding the trailer.
    pub size: u64,
}

impl BlockHandle {
    /// Encode as two varints.
    pub fn encode_to(&self, dst: &mut Vec<u8>) {
        put_varint64(dst, self.offset);
        put_varint64(dst, self.size);
    }

    /// Encoded representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20);
        self.encode_to(&mut out);
        out
    }

    /// Decode from the front of `src`, returning the handle and bytes used.
    pub fn decode_from(src: &[u8]) -> Result<(BlockHandle, usize)> {
        let (offset, n) = get_varint64(src).ok_or_else(|| Error::corruption("bad block handle"))?;
        let (size, m) =
            get_varint64(&src[n..]).ok_or_else(|| Error::corruption("bad block handle"))?;
        Ok((BlockHandle { offset, size }, n + m))
    }
}

/// Footer: filter handle, index handle, zero padding, magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footer {
    /// Handle of the filter block; `size == 0` means no filter.
    pub filter_handle: BlockHandle,
    /// Handle of the index block.
    pub index_handle: BlockHandle,
}

impl Footer {
    /// Serialize to exactly [`FOOTER_SIZE`] bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FOOTER_SIZE);
        self.filter_handle.encode_to(&mut out);
        self.index_handle.encode_to(&mut out);
        out.resize(FOOTER_SIZE - 8, 0);
        out.extend_from_slice(&TABLE_MAGIC.to_le_bytes());
        out
    }

    /// Parse a footer, validating length and magic.
    pub fn decode(src: &[u8]) -> Result<Footer> {
        if src.len() != FOOTER_SIZE {
            return Err(Error::corruption("footer size mismatch"));
        }
        let magic = u64::from_le_bytes(src[FOOTER_SIZE - 8..].try_into().expect("8 bytes"));
        if magic != TABLE_MAGIC {
            return Err(Error::corruption("bad table magic"));
        }
        let (filter_handle, n) = BlockHandle::decode_from(src)?;
        let (index_handle, _) = BlockHandle::decode_from(&src[n..])?;
        Ok(Footer { filter_handle, index_handle })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_roundtrip() {
        for h in [
            BlockHandle { offset: 0, size: 0 },
            BlockHandle { offset: 12345, size: 4096 },
            BlockHandle { offset: u64::MAX, size: u64::MAX },
        ] {
            let enc = h.encode();
            let (dec, n) = BlockHandle::decode_from(&enc).unwrap();
            assert_eq!(dec, h);
            assert_eq!(n, enc.len());
        }
    }

    #[test]
    fn footer_roundtrip() {
        let f = Footer {
            filter_handle: BlockHandle { offset: 100, size: 200 },
            index_handle: BlockHandle { offset: 300, size: 400 },
        };
        let enc = f.encode();
        assert_eq!(enc.len(), FOOTER_SIZE);
        assert_eq!(Footer::decode(&enc).unwrap(), f);
    }

    #[test]
    fn footer_rejects_bad_magic() {
        let f =
            Footer { filter_handle: BlockHandle::default(), index_handle: BlockHandle::default() };
        let mut enc = f.encode();
        enc[FOOTER_SIZE - 1] ^= 0xff;
        assert!(Footer::decode(&enc).is_err());
    }

    #[test]
    fn footer_rejects_bad_length() {
        assert!(Footer::decode(&[0u8; FOOTER_SIZE - 1]).is_err());
    }
}
