//! Prefix-compressed key/value blocks with restart points.
//!
//! Entry encoding: `shared | non_shared | value_len` as varint32s, then the
//! non-shared key suffix and the value. Every `restart_interval`-th entry
//! stores its key in full and its offset is recorded in the restarts array
//! at the block tail, enabling binary-search seeks.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::iterator::InternalIterator;
use crate::types::internal_compare;
use crate::util::{get_fixed32, get_varint32, put_fixed32, put_varint32};

/// Builds one block.
pub struct BlockBuilder {
    buf: Vec<u8>,
    restarts: Vec<u32>,
    restart_interval: usize,
    counter: usize,
    last_key: Vec<u8>,
    entries: usize,
}

impl BlockBuilder {
    /// New builder with the given restart interval (LevelDB uses 16).
    pub fn new(restart_interval: usize) -> Self {
        BlockBuilder {
            buf: Vec::new(),
            restarts: vec![0],
            restart_interval: restart_interval.max(1),
            counter: 0,
            last_key: Vec::new(),
            entries: 0,
        }
    }

    /// Append an entry; keys must arrive in strictly increasing internal-key
    /// order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        debug_assert!(
            self.entries == 0 || internal_compare(&self.last_key, key) == Ordering::Less,
            "keys must be added in order"
        );
        let shared = if self.counter < self.restart_interval {
            common_prefix_len(&self.last_key, key)
        } else {
            self.restarts.push(self.buf.len() as u32);
            self.counter = 0;
            0
        };
        put_varint32(&mut self.buf, shared as u32);
        put_varint32(&mut self.buf, (key.len() - shared) as u32);
        put_varint32(&mut self.buf, value.len() as u32);
        self.buf.extend_from_slice(&key[shared..]);
        self.buf.extend_from_slice(value);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.counter += 1;
        self.entries += 1;
    }

    /// Current encoded size, including the restart array it would emit.
    pub fn size_estimate(&self) -> usize {
        self.buf.len() + self.restarts.len() * 4 + 4
    }

    /// Number of entries added.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// True when nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Finish the block, returning its full encoding.
    pub fn finish(mut self) -> Vec<u8> {
        for &r in &self.restarts {
            put_fixed32(&mut self.buf, r);
        }
        put_fixed32(&mut self.buf, self.restarts.len() as u32);
        self.buf
    }
}

/// (shared_len, non_shared key suffix, value byte range, next entry offset).
type DecodedEntry<'a> = (usize, &'a [u8], (usize, usize), usize);

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// An immutable, parsed block.
#[derive(Debug)]
pub struct Block {
    data: Vec<u8>,
    restarts_offset: usize,
    num_restarts: usize,
}

impl Block {
    /// Parse a finished block encoding.
    pub fn new(data: Vec<u8>) -> Result<Block> {
        if data.len() < 4 {
            return Err(Error::corruption("block too small"));
        }
        let num_restarts = get_fixed32(&data[data.len() - 4..]) as usize;
        let restarts_size = num_restarts
            .checked_mul(4)
            .and_then(|s| s.checked_add(4))
            .ok_or_else(|| Error::corruption("restart count overflow"))?;
        if restarts_size > data.len() {
            return Err(Error::corruption("restart array larger than block"));
        }
        let restarts_offset = data.len() - restarts_size;
        Ok(Block { data, restarts_offset, num_restarts })
    }

    /// Bytes this block occupies in memory (for cache accounting).
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Iterator over the block's entries.
    pub fn iter(self: &Arc<Self>) -> BlockIter {
        BlockIter {
            block: Arc::clone(self),
            offset: 0,
            key: Vec::new(),
            value_range: (0, 0),
            valid: false,
        }
    }

    fn restart_point(&self, i: usize) -> usize {
        get_fixed32(&self.data[self.restarts_offset + i * 4..]) as usize
    }

    /// Decode the entry at `offset`; returns (shared, non_shared_slice,
    /// value_range, next_offset).
    fn decode_entry(&self, offset: usize) -> Result<DecodedEntry<'_>> {
        let limit = self.restarts_offset;
        let mut p = offset;
        let (shared, n) = get_varint32(&self.data[p..limit])
            .ok_or_else(|| Error::corruption("bad entry header"))?;
        p += n;
        let (non_shared, n) = get_varint32(&self.data[p..limit])
            .ok_or_else(|| Error::corruption("bad entry header"))?;
        p += n;
        let (value_len, n) = get_varint32(&self.data[p..limit])
            .ok_or_else(|| Error::corruption("bad entry header"))?;
        p += n;
        let key_end = p + non_shared as usize;
        let value_end = key_end + value_len as usize;
        if value_end > limit {
            return Err(Error::corruption("entry overruns block"));
        }
        Ok((shared as usize, &self.data[p..key_end], (key_end, value_end), value_end))
    }
}

/// Cursor over a [`Block`]'s entries. Cloning is cheap (shared `Arc` block
/// plus the current key buffer) and yields an independent cursor, used by
/// table iterators to peek ahead in the index without losing position.
#[derive(Clone)]
pub struct BlockIter {
    block: Arc<Block>,
    /// Offset of the *next* entry to decode.
    offset: usize,
    key: Vec<u8>,
    value_range: (usize, usize),
    valid: bool,
}

impl BlockIter {
    fn seek_to_restart(&mut self, restart: usize) {
        self.offset = self.block.restart_point(restart);
        self.key.clear();
        self.valid = false;
    }

    fn parse_next(&mut self) -> Result<bool> {
        if self.offset >= self.block.restarts_offset {
            self.valid = false;
            return Ok(false);
        }
        let (shared, non_shared, value_range, next) = self.block.decode_entry(self.offset)?;
        if shared > self.key.len() {
            return Err(Error::corruption("shared prefix longer than previous key"));
        }
        self.key.truncate(shared);
        self.key.extend_from_slice(non_shared);
        self.value_range = value_range;
        self.offset = next;
        self.valid = true;
        Ok(true)
    }

    /// Key at a restart point, decoded without moving the iterator.
    fn restart_key(&self, restart: usize) -> Result<&[u8]> {
        let off = self.block.restart_point(restart);
        let (shared, non_shared, _, _) = self.block.decode_entry(off)?;
        if shared != 0 {
            return Err(Error::corruption("restart entry has shared bytes"));
        }
        Ok(non_shared)
    }
}

impl InternalIterator for BlockIter {
    fn seek_to_first(&mut self) -> Result<()> {
        self.seek_to_restart(0);
        self.parse_next()?;
        Ok(())
    }

    fn seek(&mut self, target: &[u8]) -> Result<()> {
        // Binary search restart points for the last restart whose key is
        // < target, then scan linearly.
        let mut left = 0usize;
        let mut right = self.block.num_restarts.saturating_sub(1);
        while left < right {
            let mid = (left + right).div_ceil(2);
            if internal_compare(self.restart_key(mid)?, target) == Ordering::Less {
                left = mid;
            } else {
                right = mid - 1;
            }
        }
        self.seek_to_restart(left);
        while self.parse_next()? {
            if internal_compare(&self.key, target) != Ordering::Less {
                return Ok(());
            }
        }
        Ok(())
    }

    fn next(&mut self) -> Result<()> {
        debug_assert!(self.valid);
        self.parse_next()?;
        Ok(())
    }

    fn valid(&self) -> bool {
        self.valid
    }

    fn key(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.key
    }

    fn value(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.block.data[self.value_range.0..self.value_range.1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, make_lookup_key, ValueType};

    fn ik(k: &str, seq: u64) -> Vec<u8> {
        make_internal_key(k.as_bytes(), seq, ValueType::Value)
    }

    fn build_block(keys: &[(&str, u64)]) -> Arc<Block> {
        let mut b = BlockBuilder::new(4);
        for (k, s) in keys {
            b.add(&ik(k, *s), format!("v-{k}").as_bytes());
        }
        Arc::new(Block::new(b.finish()).unwrap())
    }

    #[test]
    fn iterate_all_entries() {
        let block = build_block(&[("apple", 1), ("apricot", 1), ("banana", 1), ("berry", 1)]);
        let mut it = block.iter();
        it.seek_to_first().unwrap();
        let mut got = Vec::new();
        while it.valid() {
            got.push(String::from_utf8(it.value().to_vec()).unwrap());
            it.next().unwrap();
        }
        assert_eq!(got, vec!["v-apple", "v-apricot", "v-banana", "v-berry"]);
    }

    #[test]
    fn prefix_compression_shrinks_blocks() {
        let mut compressed = BlockBuilder::new(16);
        let mut uncompressed_len = 0usize;
        for i in 0..100 {
            let key = ik(&format!("common-prefix-key-{i:04}"), 1);
            uncompressed_len += key.len() + 3;
            compressed.add(&key, b"v");
        }
        assert!(compressed.size_estimate() < uncompressed_len);
    }

    #[test]
    fn seek_exact_and_between() {
        let block = build_block(&[("b", 5), ("d", 5), ("f", 5)]);
        let mut it = block.iter();
        it.seek(&make_lookup_key(b"d", u64::MAX >> 9)).unwrap();
        assert!(it.valid());
        assert_eq!(it.value(), b"v-d");
        it.seek(&make_lookup_key(b"c", u64::MAX >> 9)).unwrap();
        assert_eq!(it.value(), b"v-d");
        it.seek(&make_lookup_key(b"a", u64::MAX >> 9)).unwrap();
        assert_eq!(it.value(), b"v-b");
        it.seek(&make_lookup_key(b"g", u64::MAX >> 9)).unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn seek_across_restart_boundaries() {
        let keys: Vec<String> = (0..64).map(|i| format!("key{i:03}")).collect();
        let mut b = BlockBuilder::new(4);
        for k in &keys {
            b.add(&ik(k, 1), k.as_bytes());
        }
        let block = Arc::new(Block::new(b.finish()).unwrap());
        for k in &keys {
            let mut it = block.iter();
            it.seek(&make_lookup_key(k.as_bytes(), u64::MAX >> 9)).unwrap();
            assert!(it.valid(), "seek {k}");
            assert_eq!(it.value(), k.as_bytes());
        }
    }

    #[test]
    fn single_entry_block() {
        let block = build_block(&[("only", 9)]);
        let mut it = block.iter();
        it.seek_to_first().unwrap();
        assert!(it.valid());
        assert_eq!(it.value(), b"v-only");
        it.next().unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn corrupt_block_rejected() {
        assert!(Block::new(vec![]).is_err());
        assert!(Block::new(vec![0xff; 3]).is_err());
        // num_restarts claims more than the block could hold.
        let mut data = vec![0u8; 8];
        data[4..].copy_from_slice(&1000u32.to_le_bytes());
        assert!(Block::new(data).is_err());
    }

    #[test]
    fn values_with_binary_content() {
        let mut b = BlockBuilder::new(16);
        let val: Vec<u8> = (0..=255).collect();
        b.add(&ik("k", 1), &val);
        let block = Arc::new(Block::new(b.finish()).unwrap());
        let mut it = block.iter();
        it.seek_to_first().unwrap();
        assert_eq!(it.value(), val.as_slice());
    }
}
