//! Bloom filter over user keys, one per table file.
//!
//! Uses double hashing (Kirsch–Mitzenmacher) over a 64-bit FNV-1a base hash,
//! with `k` derived from bits-per-key as in LevelDB (`k = bits * ln2`).

/// Immutable bloom filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    k: u8,
}

impl BloomFilter {
    /// Build a filter for `keys` at the given bits-per-key budget.
    pub fn build<'a>(keys: impl ExactSizeIterator<Item = &'a [u8]>, bits_per_key: usize) -> Self {
        let n = keys.len().max(1);
        // k = bits_per_key * ln(2), clamped to a sane range.
        let k = ((bits_per_key as f64 * 0.69) as usize).clamp(1, 30) as u8;
        let nbits = (n * bits_per_key).max(64);
        let nbytes = nbits.div_ceil(8);
        let nbits = nbytes * 8;
        let mut bits = vec![0u8; nbytes];
        for key in keys {
            let mut h = fnv64(key);
            let delta = h.rotate_right(17) | 1;
            for _ in 0..k {
                let bit = (h % nbits as u64) as usize;
                bits[bit / 8] |= 1 << (bit % 8);
                h = h.wrapping_add(delta);
            }
        }
        BloomFilter { bits, k }
    }

    /// Whether `key` may be in the set (false positives possible, false
    /// negatives impossible).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        if self.bits.is_empty() {
            return true;
        }
        let nbits = self.bits.len() * 8;
        let mut h = fnv64(key);
        let delta = h.rotate_right(17) | 1;
        for _ in 0..self.k {
            let bit = (h % nbits as u64) as usize;
            if self.bits[bit / 8] & (1 << (bit % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }

    /// Serialize: bit array followed by one `k` byte.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.bits.clone();
        out.push(self.k);
        out
    }

    /// Deserialize a filter produced by [`BloomFilter::encode`].
    pub fn decode(data: &[u8]) -> Option<BloomFilter> {
        let (&k, bits) = data.split_last()?;
        if k == 0 || k > 30 {
            return None;
        }
        Some(BloomFilter { bits: bits.to_vec(), k })
    }

    /// Size of the encoded filter in bytes.
    pub fn encoded_len(&self) -> usize {
        self.bits.len() + 1
    }
}

fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("key{i:06}").into_bytes()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(10_000);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 10);
        for k in &ks {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let ks = keys(10_000);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 10);
        let mut fp = 0;
        let probes = 10_000;
        for i in 0..probes {
            if f.may_contain(format!("absent{i:06}").as_bytes()) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        // 10 bits/key gives ~1% in theory; allow generous slack.
        assert!(rate < 0.03, "false positive rate {rate}");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ks = keys(100);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 10);
        let enc = f.encode();
        assert_eq!(enc.len(), f.encoded_len());
        let g = BloomFilter::decode(&enc).unwrap();
        assert_eq!(f, g);
        for k in &ks {
            assert!(g.may_contain(k));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BloomFilter::decode(&[]).is_none());
        assert!(BloomFilter::decode(&[1, 2, 0]).is_none()); // k == 0
        assert!(BloomFilter::decode(&[1, 2, 200]).is_none()); // k too large
    }

    #[test]
    fn empty_key_set_still_valid() {
        let f = BloomFilter::build(std::iter::empty(), 10);
        // No keys inserted: everything should miss (with high probability
        // the empty bit array rejects), but no panic either way.
        let _ = f.may_contain(b"anything");
    }

    #[test]
    fn higher_bits_per_key_lowers_fp_rate() {
        let ks = keys(5_000);
        let f4 = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 4);
        let f16 = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 16);
        let count_fp = |f: &BloomFilter| {
            (0..5_000).filter(|i| f.may_contain(format!("no{i}").as_bytes())).count()
        };
        assert!(count_fp(&f16) < count_fp(&f4));
    }
}
