//! SSTable reading.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use storage::RandomAccessFile;

use crate::cache::BlockCache;
use crate::error::{Error, Result};
use crate::iterator::InternalIterator;
use crate::options::{Options, ReadOptions};
use crate::prefetch::{PrefetchJob, Prefetcher};
use crate::sstable::block::{Block, BlockIter};
use crate::sstable::bloom::BloomFilter;
use crate::sstable::{BlockHandle, Footer, BLOCK_TRAILER_SIZE, FOOTER_SIZE, FORMAT_PARTITIONED};
use crate::types::{extract_user_key, internal_compare};
use crate::util::{crc32c, crc32c_extend, unmask_crc};

/// An open, immutable table file.
pub struct Table {
    file: Arc<dyn RandomAccessFile>,
    file_number: u64,
    options: Options,
    /// Monolithic index (v0) or top-level index over partitions (v1).
    /// Either way this is the only index structure pinned for the table's
    /// whole lifetime; v1 index partitions load lazily via the block cache.
    index: Arc<Block>,
    /// Whole-file bloom filter (v0 only).
    filter: Option<BloomFilter>,
    /// Filter index block mapping partition last key -> filter handle
    /// (v1 only).
    filter_index: Option<Arc<Block>>,
    /// Whether the file uses the partitioned (v1) format.
    partitioned: bool,
    /// Decoded per-partition bloom filters, keyed by filter-block offset.
    /// `None` pins a decode failure so corruption is read and counted once.
    partition_filters: Mutex<HashMap<u64, Option<Arc<BloomFilter>>>>,
    cache: Option<Arc<BlockCache>>,
    prefetcher: Option<Arc<Prefetcher>>,
}

impl Table {
    /// Open a table: parse footer, index block, and bloom filter.
    pub fn open(
        file: Arc<dyn RandomAccessFile>,
        file_number: u64,
        options: Options,
        cache: Option<Arc<BlockCache>>,
    ) -> Result<Table> {
        let len = file.len();
        if len < FOOTER_SIZE as u64 {
            return Err(Error::corruption("table smaller than footer"));
        }
        let footer_bytes = file.read_exact_at(len - FOOTER_SIZE as u64, FOOTER_SIZE)?;
        let footer = Footer::decode(&footer_bytes)?;
        let partitioned = footer.version == FORMAT_PARTITIONED;
        let index_contents =
            read_block_contents(&*file, &footer.index_handle, options.verify_checksums)?;
        let index = Arc::new(Block::new(index_contents)?);
        let mut filter = None;
        let mut filter_index = None;
        if footer.filter_handle.size > 0 {
            let raw = read_block_contents(&*file, &footer.filter_handle, options.verify_checksums)?;
            if partitioned {
                filter_index = Some(Arc::new(Block::new(raw)?));
            } else {
                filter = BloomFilter::decode(&raw);
                if filter.is_none() {
                    // A present-but-undecodable filter is corruption, not
                    // "no filter": every lookup silently degrading to a
                    // data-block read would mask it. Count and journal it;
                    // the table stays usable (reads fall back to the index).
                    record_filter_decode_failure(&options, file_number);
                }
            }
        }
        Ok(Table {
            file,
            file_number,
            options,
            index,
            filter,
            filter_index,
            partitioned,
            partition_filters: Mutex::new(HashMap::new()),
            cache,
            prefetcher: None,
        })
    }

    /// The file number this table was opened under.
    pub fn file_number(&self) -> u64 {
        self.file_number
    }

    /// Attach the background readahead pool. Iterators opened with a
    /// non-zero [`ReadOptions::readahead_blocks`] schedule upcoming data
    /// blocks on it; without a pool (or a block cache to stage into)
    /// readahead is silently disabled.
    pub fn set_prefetcher(&mut self, prefetcher: Arc<Prefetcher>) {
        self.prefetcher = Some(prefetcher);
    }

    /// Point lookup: position at the first entry with internal key >=
    /// `lookup_key` and return it, or `None` when the table has no such
    /// entry. The bloom filter short-circuits definite misses.
    pub fn get(&self, lookup_key: &[u8]) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        let mut index_iter = self.index.iter();
        index_iter.seek(lookup_key)?;
        if !index_iter.valid() {
            return Ok(None);
        }
        let index_iter = if self.partitioned {
            // Two-level descent: `index` here is the top-level index; check
            // this partition's filter, then search inside the partition.
            if let Some(filter) = self.partition_filter(lookup_key)? {
                if !filter.may_contain(extract_user_key(lookup_key)) {
                    return Ok(None);
                }
            }
            let (part_handle, _) = BlockHandle::decode_from(index_iter.value())?;
            let partition = self.read_index_partition(&part_handle)?;
            let mut it = partition.iter();
            it.seek(lookup_key)?;
            if !it.valid() {
                return Ok(None);
            }
            it
        } else {
            if let Some(filter) = &self.filter {
                if !filter.may_contain(extract_user_key(lookup_key)) {
                    return Ok(None);
                }
            }
            index_iter
        };
        let (handle, _) = BlockHandle::decode_from(index_iter.value())?;
        let block = self.read_data_block(&handle)?;
        let mut iter = block.iter();
        iter.seek(lookup_key)?;
        if !iter.valid() {
            return Ok(None);
        }
        Ok(Some((iter.key().to_vec(), iter.value().to_vec())))
    }

    /// Iterator over the whole table.
    pub fn iter(self: &Arc<Self>) -> TableIter {
        self.iter_with(ReadOptions::default())
    }

    /// Iterator over the whole table with per-read tuning.
    pub fn iter_with(self: &Arc<Self>, read_opts: ReadOptions) -> TableIter {
        let (top_iter, index_iter) = if self.partitioned {
            (Some(self.index.iter()), None)
        } else {
            (None, Some(self.index.iter()))
        };
        TableIter {
            table: Arc::clone(self),
            top_iter,
            index_iter,
            data_iter: None,
            read_opts,
            prefetch_watermark: 0,
            out_of_bounds: false,
        }
    }

    /// Bytes of table metadata pinned in memory for the table's lifetime:
    /// the index (v0) or top-level index (v1), plus the decoded whole-file
    /// filter (v0) or the filter index block (v1). Lazily cached v1
    /// partitions live in the block cache and are accounted there, which
    /// is exactly the point of the partitioned format.
    pub fn metadata_pinned_bytes(&self) -> usize {
        let mut bytes = self.index.size();
        if let Some(filter) = &self.filter {
            bytes += filter.encoded_len();
        }
        if let Some(filter_index) = &self.filter_index {
            bytes += filter_index.size();
        }
        bytes
    }

    /// Look up the bloom filter covering `lookup_key`'s partition (v1),
    /// decoding and memoizing it on first touch. `None` means no filter or
    /// a corrupt one (counted and journaled once per partition).
    fn partition_filter(&self, lookup_key: &[u8]) -> Result<Option<Arc<BloomFilter>>> {
        let Some(filter_index) = &self.filter_index else {
            return Ok(None);
        };
        let mut it = filter_index.iter();
        it.seek(lookup_key)?;
        if !it.valid() {
            return Ok(None);
        }
        let (handle, _) = BlockHandle::decode_from(it.value())?;
        if handle.size == 0 {
            return Ok(None);
        }
        if let Some(cached) = self.partition_filters.lock().expect("filter map").get(&handle.offset)
        {
            return Ok(cached.clone());
        }
        let raw = read_block_contents(&*self.file, &handle, self.options.verify_checksums)?;
        let decoded = BloomFilter::decode(&raw).map(Arc::new);
        if decoded.is_none() {
            record_filter_decode_failure(&self.options, self.file_number);
        }
        self.partition_filters.lock().expect("filter map").insert(handle.offset, decoded.clone());
        Ok(decoded)
    }

    /// Read one index partition (v1), via the block cache when configured.
    /// Unlike data blocks this does not feed the heat score: placement
    /// wants user-data access frequency, not metadata traffic.
    fn read_index_partition(&self, handle: &BlockHandle) -> Result<Arc<Block>> {
        if let Some(cache) = &self.cache {
            if let Some(block) = cache.get(self.file_number, handle.offset) {
                return Ok(block);
            }
        }
        let contents = read_block_contents(&*self.file, handle, self.options.verify_checksums)?;
        let block = Arc::new(Block::new(contents)?);
        if let Some(cache) = &self.cache {
            cache.insert(self.file_number, handle.offset, Arc::clone(&block));
        }
        Ok(block)
    }

    /// Read one data block, via the block cache when configured.
    fn read_data_block(&self, handle: &BlockHandle) -> Result<Arc<Block>> {
        // Every logical block read feeds the decayed heat score, cached
        // or not: placement wants access frequency, not device traffic.
        if let Some(observer) = &self.options.observer {
            observer.record_table_access(self.file_number, handle.size);
        }
        if let Some(cache) = &self.cache {
            if let Some(block) = cache.get(self.file_number, handle.offset) {
                obs::perf::count(|c| c.block_cache_hits += 1);
                return Ok(block);
            }
            obs::perf::count(|c| c.block_cache_misses += 1);
            // An in-flight readahead job may already own this block; wait
            // for its coalesced read to land rather than duplicating the
            // GET, then fall through to a demand read if it never does.
            if let Some(prefetcher) = &self.prefetcher {
                if prefetcher.wait_if_pending(self.file_number, handle.offset) {
                    if let Some(block) = cache.get(self.file_number, handle.offset) {
                        return Ok(block);
                    }
                }
            }
        }
        let contents = read_block_contents(&*self.file, handle, self.options.verify_checksums)?;
        let block = Arc::new(Block::new(contents)?);
        if let Some(cache) = &self.cache {
            cache.insert(self.file_number, handle.offset, Arc::clone(&block));
        }
        Ok(block)
    }
}

/// Count and journal a bloom filter that was present on disk but failed to
/// decode. One branch when no observer is configured.
fn record_filter_decode_failure(options: &Options, file_number: u64) {
    if let Some(observer) = &options.observer {
        observer.record_filter_decode_failure(file_number);
    }
}

/// Read block contents at `handle`, verifying the trailer CRC.
pub fn read_block_contents(
    file: &dyn RandomAccessFile,
    handle: &BlockHandle,
    verify: bool,
) -> Result<Vec<u8>> {
    let total = handle.size as usize + BLOCK_TRAILER_SIZE;
    let raw = file.read_exact_at(handle.offset, total)?;
    decode_block_contents(&raw, handle, verify)
}

/// Validate and decompress an already-fetched block + trailer buffer.
pub fn decode_block_contents(raw: &[u8], handle: &BlockHandle, verify: bool) -> Result<Vec<u8>> {
    if raw.len() != handle.size as usize + BLOCK_TRAILER_SIZE {
        return Err(Error::corruption("short block read"));
    }
    let (contents, trailer) = raw.split_at(handle.size as usize);
    let type_byte = trailer[0];
    if type_byte > 1 {
        return Err(Error::corruption("unknown block compression type"));
    }
    if verify {
        let stored = unmask_crc(u32::from_le_bytes(trailer[1..5].try_into().expect("4 bytes")));
        let actual = crc32c_extend(crc32c(contents), &trailer[..1]);
        if stored != actual {
            return Err(Error::corruption(format!(
                "block checksum mismatch at offset {}",
                handle.offset
            )));
        }
    }
    match type_byte {
        0 => Ok(contents.to_vec()),
        _ => {
            let stage = obs::perf::start_stage();
            let out = crate::compress::decompress(contents);
            obs::perf::finish_stage(stage, |c, ns| c.decompress_ns += ns);
            out
        }
    }
}

/// Two-level iterator: index block entries point at data blocks. Over a
/// partitioned (v1) table it is three-level — a top-level iterator walks
/// partitions while `index_iter` walks the current partition — but the
/// shape below the index level is identical.
///
/// With [`ReadOptions::iterate_upper_bound`] set, the iterator goes
/// permanently invalid at the first key `>=` the bound, stops loading data
/// blocks, and clamps readahead so no block past the bound is prefetched.
pub struct TableIter {
    table: Arc<Table>,
    /// Top-level index iterator (partition last key -> index partition
    /// handle). `None` for monolithic (v0) tables.
    top_iter: Option<BlockIter>,
    /// Monolithic index (v0) or current index partition (v1). `None` when
    /// a v1 iterator is unpositioned or exhausted.
    index_iter: Option<BlockIter>,
    data_iter: Option<BlockIter>,
    read_opts: ReadOptions,
    /// File offset below which readahead has already been scheduled; keeps
    /// the steady-state cost at ~one newly scheduled block per block
    /// consumed instead of re-submitting the whole window.
    prefetch_watermark: u64,
    /// Latched once the iterator crosses the upper bound: no further data
    /// block loads or readahead.
    out_of_bounds: bool,
}

impl TableIter {
    /// (Re)load `index_iter` from the top-level iterator's current
    /// partition. No-op for v0 tables.
    fn load_index_partition(&mut self) -> Result<()> {
        let Some(top) = self.top_iter.as_ref() else {
            return Ok(());
        };
        if !top.valid() {
            self.index_iter = None;
            return Ok(());
        }
        let (handle, _) = BlockHandle::decode_from(top.value())?;
        let partition = self.table.read_index_partition(&handle)?;
        self.index_iter = Some(partition.iter());
        Ok(())
    }

    /// Advance to the next index entry, crossing into the next partition
    /// of a v1 table when the current one is exhausted.
    fn advance_index(&mut self) -> Result<()> {
        let exhausted = match self.index_iter.as_mut() {
            Some(ix) if ix.valid() => {
                ix.next()?;
                !ix.valid()
            }
            _ => true,
        };
        if !exhausted || self.top_iter.is_none() {
            return Ok(());
        }
        let top = self.top_iter.as_mut().expect("checked above");
        if top.valid() {
            top.next()?;
        }
        self.load_index_partition()?;
        if let Some(ix) = self.index_iter.as_mut() {
            ix.seek_to_first()?;
        }
        Ok(())
    }

    fn load_data_block(&mut self) -> Result<()> {
        if self.out_of_bounds || !self.index_iter.as_ref().is_some_and(|ix| ix.valid()) {
            self.data_iter = None;
            return Ok(());
        }
        self.maybe_schedule_readahead();
        let (handle, _) =
            BlockHandle::decode_from(self.index_iter.as_ref().expect("valid").value())?;
        let block = self.table.read_data_block(&handle)?;
        self.data_iter = Some(block.iter());
        Ok(())
    }

    /// Schedule up to `readahead_blocks` upcoming data blocks on the
    /// prefetch pool, skipping any already covered by a previous window.
    /// Runs before the demand read of the current block so the background
    /// fetch overlaps with it.
    ///
    /// The peek window is clamped twice: it never crosses the current
    /// partition boundary (the peek walks one index block, so it cannot
    /// run into filter/metadata blocks past the data area), and with an
    /// upper bound it stops at the first block whose last key reaches the
    /// bound — later blocks provably hold only out-of-bound keys, and
    /// prefetching them would be billed cloud egress for bytes the scan
    /// can never return.
    fn maybe_schedule_readahead(&mut self) {
        let n = self.read_opts.readahead_blocks;
        if n == 0 {
            return;
        }
        let (Some(prefetcher), Some(cache)) = (&self.table.prefetcher, &self.table.cache) else {
            return;
        };
        let Some(index_iter) = self.index_iter.as_ref() else {
            return;
        };
        let upper = self.read_opts.iterate_upper_bound.as_deref();
        // The index key is a block's last key: the first block whose last
        // key reaches the bound may still hold in-bound keys, but
        // everything after it cannot. If the current block is already that
        // boundary block, nothing past it will ever be read.
        if upper.is_some_and(|ub| index_iter.valid() && extract_user_key(index_iter.key()) >= ub) {
            return;
        }
        let mut peek = index_iter.clone();
        let mut handles = Vec::new();
        let mut bound_truncated = false;
        for _ in 0..n {
            if peek.next().is_err() || !peek.valid() {
                break;
            }
            let Ok((handle, _)) = BlockHandle::decode_from(peek.value()) else {
                break;
            };
            let last_in_bounds = upper.is_some_and(|ub| extract_user_key(peek.key()) >= ub);
            if handle.offset >= self.prefetch_watermark {
                handles.push(handle);
            }
            if last_in_bounds {
                bound_truncated = true;
                break;
            }
        }
        // Refill hysteresis: only dispatch once at least half the window is
        // unscheduled. Scheduling on every block would degenerate to
        // one-block jobs past the initial batch, and a one-range job cannot
        // coalesce; waiting for n/2 keeps each ranged GET at least n/2
        // blocks wide while the pipeline stays at least half full. A batch
        // the upper bound cut short is the scan's final one — dispatch it
        // whatever its size, it cannot recur (the watermark then covers
        // every block up to the bound).
        if !bound_truncated && handles.len() < (n / 2).max(1) {
            return;
        }
        if let Some(last) = handles.last() {
            self.prefetch_watermark = last.offset + last.size + BLOCK_TRAILER_SIZE as u64;
            prefetcher.schedule(PrefetchJob {
                file: Arc::clone(&self.table.file),
                file_number: self.table.file_number,
                handles,
                verify: self.table.options.verify_checksums,
                cache: Arc::clone(cache),
            });
        }
    }

    /// Move forward until the data iterator is valid, the table ends, or
    /// the upper bound is reached.
    fn skip_empty_blocks_forward(&mut self) -> Result<()> {
        loop {
            let exhausted = match &self.data_iter {
                Some(it) => !it.valid(),
                None => return Ok(()),
            };
            if !exhausted {
                return Ok(());
            }
            // The consumed block's index key is its last key: if that
            // already reached the bound, every later block starts past it.
            if let (Some(upper), Some(ix)) =
                (&self.read_opts.iterate_upper_bound, self.index_iter.as_ref())
            {
                if ix.valid() && extract_user_key(ix.key()) >= upper.as_slice() {
                    self.out_of_bounds = true;
                    self.data_iter = None;
                    return Ok(());
                }
            }
            self.advance_index()?;
            self.load_data_block()?;
            if let Some(it) = self.data_iter.as_mut() {
                it.seek_to_first()?;
            }
        }
    }

    /// Invalidate the iterator if the current entry crossed the bound.
    fn check_bound(&mut self) {
        if let (Some(upper), Some(it)) = (&self.read_opts.iterate_upper_bound, &self.data_iter) {
            if it.valid() && extract_user_key(it.key()) >= upper.as_slice() {
                self.out_of_bounds = true;
                self.data_iter = None;
            }
        }
    }
}

impl InternalIterator for TableIter {
    fn seek_to_first(&mut self) -> Result<()> {
        self.prefetch_watermark = 0;
        self.out_of_bounds = false;
        if let Some(top) = self.top_iter.as_mut() {
            top.seek_to_first()?;
            self.load_index_partition()?;
        }
        if let Some(ix) = self.index_iter.as_mut() {
            ix.seek_to_first()?;
        }
        self.load_data_block()?;
        if let Some(it) = self.data_iter.as_mut() {
            it.seek_to_first()?;
        }
        self.skip_empty_blocks_forward()?;
        self.check_bound();
        Ok(())
    }

    fn seek(&mut self, target: &[u8]) -> Result<()> {
        self.prefetch_watermark = 0;
        self.out_of_bounds = false;
        if let Some(top) = self.top_iter.as_mut() {
            top.seek(target)?;
            self.load_index_partition()?;
        }
        if let Some(ix) = self.index_iter.as_mut() {
            ix.seek(target)?;
        }
        self.load_data_block()?;
        if let Some(it) = self.data_iter.as_mut() {
            it.seek(target)?;
        }
        self.skip_empty_blocks_forward()?;
        self.check_bound();
        Ok(())
    }

    fn next(&mut self) -> Result<()> {
        let Some(it) = self.data_iter.as_mut() else {
            return Err(Error::corruption("next on invalid table iterator"));
        };
        it.next()?;
        self.skip_empty_blocks_forward()?;
        self.check_bound();
        Ok(())
    }

    fn valid(&self) -> bool {
        self.data_iter.as_ref().is_some_and(|it| it.valid())
    }

    fn key(&self) -> &[u8] {
        self.data_iter.as_ref().expect("valid").key()
    }

    fn value(&self) -> &[u8] {
        self.data_iter.as_ref().expect("valid").value()
    }
}

/// Assert that every entry in `table` is in sorted order, returning the
/// entry count. Used by tests and repair tooling.
pub fn validate_table(table: &Arc<Table>) -> Result<u64> {
    let mut iter = table.iter();
    iter.seek_to_first()?;
    let mut count = 0u64;
    let mut prev: Option<Vec<u8>> = None;
    while iter.valid() {
        if let Some(p) = &prev {
            if internal_compare(p, iter.key()) != std::cmp::Ordering::Less {
                return Err(Error::corruption("table keys out of order"));
            }
        }
        prev = Some(iter.key().to_vec());
        count += 1;
        iter.next()?;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sstable::builder::TableBuilder;
    use crate::types::{make_internal_key, make_lookup_key, ValueType};
    use storage::{Env, MemEnv};

    const SNAP: u64 = (1 << 55) - 1;

    fn build_table(n: usize, opts: &Options) -> (MemEnv, Arc<Table>) {
        let env = MemEnv::new();
        let mut b = TableBuilder::new(env.new_writable("t").unwrap(), opts.clone());
        for i in 0..n {
            let k =
                make_internal_key(format!("key{i:05}").as_bytes(), i as u64 + 1, ValueType::Value);
            b.add(&k, format!("value{i}").as_bytes()).unwrap();
        }
        b.finish().unwrap();
        let file = env.open_random("t").unwrap();
        let table = Arc::new(Table::open(file, 1, opts.clone(), None).unwrap());
        (env, table)
    }

    #[test]
    fn get_every_key() {
        let opts = Options { block_size: 256, ..Options::small_for_tests() };
        let (_env, table) = build_table(500, &opts);
        for i in 0..500 {
            let lk = make_lookup_key(format!("key{i:05}").as_bytes(), SNAP);
            let (k, v) = table.get(&lk).unwrap().expect("found");
            assert_eq!(extract_user_key(&k), format!("key{i:05}").as_bytes());
            assert_eq!(v, format!("value{i}").into_bytes());
        }
    }

    #[test]
    fn get_missing_keys() {
        let opts = Options::small_for_tests();
        let (_env, table) = build_table(100, &opts);
        // Before all, between, after all.
        let miss = table.get(&make_lookup_key(b"key00050x", SNAP)).unwrap();
        if let Some((k, _)) = miss {
            // Positioned at the next key; caller checks user key equality.
            assert_ne!(extract_user_key(&k), b"key00050x");
        }
        assert!(table.get(&make_lookup_key(b"zzz", SNAP)).unwrap().is_none());
    }

    #[test]
    fn bloom_filter_short_circuits() {
        let opts = Options::small_for_tests();
        let (_env, table) = build_table(100, &opts);
        // Absent keys mostly return None without touching data blocks. A
        // bloom false positive legitimately positions at a neighbouring
        // key, so only the absence of errors is asserted here.
        for i in 0..100 {
            table.get(&make_lookup_key(format!("nope{i}").as_bytes(), SNAP)).unwrap();
        }
    }

    #[test]
    fn full_scan_is_sorted_and_complete() {
        let opts = Options { block_size: 128, ..Options::small_for_tests() };
        let (_env, table) = build_table(300, &opts);
        assert_eq!(validate_table(&table).unwrap(), 300);
    }

    #[test]
    fn iter_seek_midway() {
        let opts = Options { block_size: 128, ..Options::small_for_tests() };
        let (_env, table) = build_table(100, &opts);
        let mut it = table.iter();
        it.seek(&make_lookup_key(b"key00042", SNAP)).unwrap();
        assert!(it.valid());
        assert_eq!(extract_user_key(it.key()), b"key00042");
        it.next().unwrap();
        assert_eq!(extract_user_key(it.key()), b"key00043");
    }

    #[test]
    fn corrupt_data_block_detected() {
        let opts = Options { block_size: 128, bloom_bits_per_key: 0, ..Options::small_for_tests() };
        let env = MemEnv::new();
        let mut b = TableBuilder::new(env.new_writable("t").unwrap(), opts.clone());
        for i in 0..100 {
            let k = make_internal_key(format!("key{i:05}").as_bytes(), i + 1, ValueType::Value);
            b.add(&k, b"payload-payload").unwrap();
        }
        b.finish().unwrap();
        let mut data = env.read_all("t").unwrap();
        data[40] ^= 0xff; // inside the first data block
        env.write_all("t", &data).unwrap();
        let table = Arc::new(Table::open(env.open_random("t").unwrap(), 1, opts, None).unwrap());
        let err = table.get(&make_lookup_key(b"key00000", SNAP)).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)));
    }

    #[test]
    fn cache_serves_repeat_reads() {
        let opts = Options { block_size: 256, ..Options::small_for_tests() };
        let env = MemEnv::new();
        let mut b = TableBuilder::new(env.new_writable("t").unwrap(), opts.clone());
        for i in 0..200 {
            let k = make_internal_key(format!("key{i:05}").as_bytes(), i + 1, ValueType::Value);
            b.add(&k, b"v").unwrap();
        }
        b.finish().unwrap();
        let cache = Arc::new(BlockCache::new(1 << 20));
        let table = Arc::new(
            Table::open(env.open_random("t").unwrap(), 1, opts, Some(Arc::clone(&cache))).unwrap(),
        );
        let lk = make_lookup_key(b"key00100", SNAP);
        table.get(&lk).unwrap().unwrap();
        let reads_after_first = env.stats().snapshot().reads;
        table.get(&lk).unwrap().unwrap();
        // Second get must not re-read the data block from the "device".
        assert_eq!(env.stats().snapshot().reads, reads_after_first);
        let (hits, _) = cache.hit_stats();
        assert!(hits >= 1);
    }

    #[test]
    fn partitioned_get_every_key_and_full_scan() {
        for granularity in [1usize, 2, 3, 7] {
            let opts = Options {
                block_size: 256,
                partitioned_index_granularity: granularity,
                ..Options::small_for_tests()
            };
            let (_env, table) = build_table(500, &opts);
            for i in 0..500 {
                let lk = make_lookup_key(format!("key{i:05}").as_bytes(), SNAP);
                let (k, v) = table.get(&lk).unwrap().expect("found");
                assert_eq!(extract_user_key(&k), format!("key{i:05}").as_bytes());
                assert_eq!(v, format!("value{i}").into_bytes());
            }
            assert_eq!(validate_table(&table).unwrap(), 500, "granularity {granularity}");
            assert!(table.get(&make_lookup_key(b"zzz", SNAP)).unwrap().is_none());
        }
    }

    #[test]
    fn partitioned_seek_crosses_partitions() {
        let opts = Options {
            block_size: 128,
            partitioned_index_granularity: 2,
            ..Options::small_for_tests()
        };
        let (_env, table) = build_table(300, &opts);
        let mut it = table.iter();
        it.seek(&make_lookup_key(b"key00142", SNAP)).unwrap();
        let mut seen = 0;
        while it.valid() {
            assert_eq!(extract_user_key(it.key()), format!("key{:05}", 142 + seen).as_bytes());
            seen += 1;
            it.next().unwrap();
        }
        assert_eq!(seen, 300 - 142);
    }

    #[test]
    fn partitioned_metadata_pinned_is_smaller() {
        let base = Options { block_size: 128, ..Options::small_for_tests() };
        let (_env, mono) = build_table(2_000, &base);
        let part_opts = Options { partitioned_index_granularity: 8, ..base };
        let (_env2, part) = build_table(2_000, &part_opts);
        // The partitioned table pins only the top-level index + filter
        // index, well under the monolithic index + filter.
        assert!(
            part.metadata_pinned_bytes() * 2 < mono.metadata_pinned_bytes(),
            "partitioned {} vs monolithic {}",
            part.metadata_pinned_bytes(),
            mono.metadata_pinned_bytes()
        );
    }

    #[test]
    fn bounded_iter_stops_at_upper_bound() {
        for granularity in [0usize, 2] {
            let opts = Options {
                block_size: 128,
                partitioned_index_granularity: granularity,
                ..Options::small_for_tests()
            };
            let (_env, table) = build_table(200, &opts);
            let ro = ReadOptions::default().with_upper_bound(&b"key00050"[..]);
            let mut it = table.iter_with(ro);
            it.seek_to_first().unwrap();
            let mut seen = 0;
            while it.valid() {
                assert!(extract_user_key(it.key()) < b"key00050".as_slice());
                seen += 1;
                it.next().unwrap();
            }
            assert_eq!(seen, 50);
            // Exhausted-by-bound iterators report misuse on next(), same
            // as exhausted-by-end ones.
            assert!(it.next().is_err());
        }
    }

    #[test]
    fn bounded_seek_past_bound_is_invalid() {
        let opts = Options { block_size: 128, ..Options::small_for_tests() };
        let (_env, table) = build_table(100, &opts);
        let ro = ReadOptions::default().with_upper_bound(&b"key00010"[..]);
        let mut it = table.iter_with(ro);
        it.seek(&make_lookup_key(b"key00050", SNAP)).unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn corrupt_bloom_is_counted_not_swallowed() {
        let opts = Options { verify_checksums: false, ..Options::small_for_tests() };
        let env = MemEnv::new();
        let mut b = TableBuilder::new(env.new_writable("t").unwrap(), opts.clone());
        for i in 0..100 {
            let k = make_internal_key(format!("key{i:05}").as_bytes(), i + 1, ValueType::Value);
            b.add(&k, b"v").unwrap();
        }
        b.finish().unwrap();
        // Zero the filter's trailing `k` byte: BloomFilter::decode returns
        // None for k == 0, the exact shape of the old silent-swallow bug.
        let mut data = env.read_all("t").unwrap();
        let footer = Footer::decode(&data[data.len() - FOOTER_SIZE..]).unwrap();
        let k_byte = (footer.filter_handle.offset + footer.filter_handle.size - 1) as usize;
        data[k_byte] = 0;
        env.write_all("t", &data).unwrap();

        let observer = Arc::new(obs::Observer::new());
        let opts = Options { observer: Some(Arc::clone(&observer)), ..opts };
        let table = Arc::new(Table::open(env.open_random("t").unwrap(), 9, opts, None).unwrap());
        assert_eq!(observer.filter_decode_failures(), 1);
        // Reads still work without the filter.
        let lk = make_lookup_key(b"key00042", SNAP);
        assert!(table.get(&lk).unwrap().is_some());
        // The corruption landed in the journal.
        let events = observer.journal().events();
        assert!(events.iter().any(|e| matches!(&e.kind, obs::EventKind::Corruption { .. })));
    }

    #[test]
    fn truncated_file_fails_to_open() {
        let opts = Options::small_for_tests();
        let env = MemEnv::new();
        let mut b = TableBuilder::new(env.new_writable("t").unwrap(), opts.clone());
        let k = make_internal_key(b"a", 1, ValueType::Value);
        b.add(&k, b"v").unwrap();
        b.finish().unwrap();
        let data = env.read_all("t").unwrap();
        env.write_all("t", &data[..10]).unwrap();
        assert!(Table::open(env.open_random("t").unwrap(), 1, opts, None).is_err());
    }
}
