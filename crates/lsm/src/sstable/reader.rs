//! SSTable reading.

use std::sync::Arc;

use storage::RandomAccessFile;

use crate::cache::BlockCache;
use crate::error::{Error, Result};
use crate::iterator::InternalIterator;
use crate::options::{Options, ReadOptions};
use crate::prefetch::{PrefetchJob, Prefetcher};
use crate::sstable::block::{Block, BlockIter};
use crate::sstable::bloom::BloomFilter;
use crate::sstable::{BlockHandle, Footer, BLOCK_TRAILER_SIZE, FOOTER_SIZE};
use crate::types::{extract_user_key, internal_compare};
use crate::util::{crc32c, crc32c_extend, unmask_crc};

/// An open, immutable table file.
pub struct Table {
    file: Arc<dyn RandomAccessFile>,
    file_number: u64,
    options: Options,
    index: Arc<Block>,
    filter: Option<BloomFilter>,
    cache: Option<Arc<BlockCache>>,
    prefetcher: Option<Arc<Prefetcher>>,
}

impl Table {
    /// Open a table: parse footer, index block, and bloom filter.
    pub fn open(
        file: Arc<dyn RandomAccessFile>,
        file_number: u64,
        options: Options,
        cache: Option<Arc<BlockCache>>,
    ) -> Result<Table> {
        let len = file.len();
        if len < FOOTER_SIZE as u64 {
            return Err(Error::corruption("table smaller than footer"));
        }
        let footer_bytes = file.read_exact_at(len - FOOTER_SIZE as u64, FOOTER_SIZE)?;
        let footer = Footer::decode(&footer_bytes)?;
        let index_contents =
            read_block_contents(&*file, &footer.index_handle, options.verify_checksums)?;
        let index = Arc::new(Block::new(index_contents)?);
        let filter = if footer.filter_handle.size > 0 {
            let raw = read_block_contents(&*file, &footer.filter_handle, options.verify_checksums)?;
            BloomFilter::decode(&raw)
        } else {
            None
        };
        Ok(Table { file, file_number, options, index, filter, cache, prefetcher: None })
    }

    /// The file number this table was opened under.
    pub fn file_number(&self) -> u64 {
        self.file_number
    }

    /// Attach the background readahead pool. Iterators opened with a
    /// non-zero [`ReadOptions::readahead_blocks`] schedule upcoming data
    /// blocks on it; without a pool (or a block cache to stage into)
    /// readahead is silently disabled.
    pub fn set_prefetcher(&mut self, prefetcher: Arc<Prefetcher>) {
        self.prefetcher = Some(prefetcher);
    }

    /// Point lookup: position at the first entry with internal key >=
    /// `lookup_key` and return it, or `None` when the table has no such
    /// entry. The bloom filter short-circuits definite misses.
    pub fn get(&self, lookup_key: &[u8]) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        if let Some(filter) = &self.filter {
            if !filter.may_contain(extract_user_key(lookup_key)) {
                return Ok(None);
            }
        }
        let mut index_iter = self.index.iter();
        index_iter.seek(lookup_key)?;
        if !index_iter.valid() {
            return Ok(None);
        }
        let (handle, _) = BlockHandle::decode_from(index_iter.value())?;
        let block = self.read_data_block(&handle)?;
        let mut iter = block.iter();
        iter.seek(lookup_key)?;
        if !iter.valid() {
            return Ok(None);
        }
        Ok(Some((iter.key().to_vec(), iter.value().to_vec())))
    }

    /// Iterator over the whole table.
    pub fn iter(self: &Arc<Self>) -> TableIter {
        self.iter_with(ReadOptions::default())
    }

    /// Iterator over the whole table with per-read tuning.
    pub fn iter_with(self: &Arc<Self>, read_opts: ReadOptions) -> TableIter {
        TableIter {
            table: Arc::clone(self),
            index_iter: self.index.iter(),
            data_iter: None,
            read_opts,
            prefetch_watermark: 0,
        }
    }

    /// Read one data block, via the block cache when configured.
    fn read_data_block(&self, handle: &BlockHandle) -> Result<Arc<Block>> {
        // Every logical block read feeds the decayed heat score, cached
        // or not: placement wants access frequency, not device traffic.
        if let Some(observer) = &self.options.observer {
            observer.record_table_access(self.file_number, handle.size);
        }
        if let Some(cache) = &self.cache {
            if let Some(block) = cache.get(self.file_number, handle.offset) {
                obs::perf::count(|c| c.block_cache_hits += 1);
                return Ok(block);
            }
            obs::perf::count(|c| c.block_cache_misses += 1);
            // An in-flight readahead job may already own this block; wait
            // for its coalesced read to land rather than duplicating the
            // GET, then fall through to a demand read if it never does.
            if let Some(prefetcher) = &self.prefetcher {
                if prefetcher.wait_if_pending(self.file_number, handle.offset) {
                    if let Some(block) = cache.get(self.file_number, handle.offset) {
                        return Ok(block);
                    }
                }
            }
        }
        let contents = read_block_contents(&*self.file, handle, self.options.verify_checksums)?;
        let block = Arc::new(Block::new(contents)?);
        if let Some(cache) = &self.cache {
            cache.insert(self.file_number, handle.offset, Arc::clone(&block));
        }
        Ok(block)
    }
}

/// Read block contents at `handle`, verifying the trailer CRC.
pub fn read_block_contents(
    file: &dyn RandomAccessFile,
    handle: &BlockHandle,
    verify: bool,
) -> Result<Vec<u8>> {
    let total = handle.size as usize + BLOCK_TRAILER_SIZE;
    let raw = file.read_exact_at(handle.offset, total)?;
    decode_block_contents(&raw, handle, verify)
}

/// Validate and decompress an already-fetched block + trailer buffer.
pub fn decode_block_contents(raw: &[u8], handle: &BlockHandle, verify: bool) -> Result<Vec<u8>> {
    if raw.len() != handle.size as usize + BLOCK_TRAILER_SIZE {
        return Err(Error::corruption("short block read"));
    }
    let (contents, trailer) = raw.split_at(handle.size as usize);
    let type_byte = trailer[0];
    if type_byte > 1 {
        return Err(Error::corruption("unknown block compression type"));
    }
    if verify {
        let stored = unmask_crc(u32::from_le_bytes(trailer[1..5].try_into().expect("4 bytes")));
        let actual = crc32c_extend(crc32c(contents), &trailer[..1]);
        if stored != actual {
            return Err(Error::corruption(format!(
                "block checksum mismatch at offset {}",
                handle.offset
            )));
        }
    }
    match type_byte {
        0 => Ok(contents.to_vec()),
        _ => {
            let stage = obs::perf::start_stage();
            let out = crate::compress::decompress(contents);
            obs::perf::finish_stage(stage, |c, ns| c.decompress_ns += ns);
            out
        }
    }
}

/// Two-level iterator: index block entries point at data blocks.
pub struct TableIter {
    table: Arc<Table>,
    index_iter: BlockIter,
    data_iter: Option<BlockIter>,
    read_opts: ReadOptions,
    /// File offset below which readahead has already been scheduled; keeps
    /// the steady-state cost at ~one newly scheduled block per block
    /// consumed instead of re-submitting the whole window.
    prefetch_watermark: u64,
}

impl TableIter {
    fn load_data_block(&mut self) -> Result<()> {
        if !self.index_iter.valid() {
            self.data_iter = None;
            return Ok(());
        }
        self.maybe_schedule_readahead();
        let (handle, _) = BlockHandle::decode_from(self.index_iter.value())?;
        let block = self.table.read_data_block(&handle)?;
        self.data_iter = Some(block.iter());
        Ok(())
    }

    /// Schedule up to `readahead_blocks` upcoming data blocks on the
    /// prefetch pool, skipping any already covered by a previous window.
    /// Runs before the demand read of the current block so the background
    /// fetch overlaps with it.
    fn maybe_schedule_readahead(&mut self) {
        let n = self.read_opts.readahead_blocks;
        if n == 0 {
            return;
        }
        let (Some(prefetcher), Some(cache)) = (&self.table.prefetcher, &self.table.cache) else {
            return;
        };
        let mut peek = self.index_iter.clone();
        let mut handles = Vec::new();
        for _ in 0..n {
            if peek.next().is_err() || !peek.valid() {
                break;
            }
            let Ok((handle, _)) = BlockHandle::decode_from(peek.value()) else {
                break;
            };
            if handle.offset >= self.prefetch_watermark {
                handles.push(handle);
            }
        }
        // Refill hysteresis: only dispatch once at least half the window is
        // unscheduled. Scheduling on every block would degenerate to
        // one-block jobs past the initial batch, and a one-range job cannot
        // coalesce; waiting for n/2 keeps each ranged GET at least n/2
        // blocks wide while the pipeline stays at least half full.
        if handles.len() < (n / 2).max(1) {
            return;
        }
        if let Some(last) = handles.last() {
            self.prefetch_watermark = last.offset + last.size + BLOCK_TRAILER_SIZE as u64;
            prefetcher.schedule(PrefetchJob {
                file: Arc::clone(&self.table.file),
                file_number: self.table.file_number,
                handles,
                verify: self.table.options.verify_checksums,
                cache: Arc::clone(cache),
            });
        }
    }

    /// Move forward until the data iterator is valid or the table ends.
    fn skip_empty_blocks_forward(&mut self) -> Result<()> {
        loop {
            let exhausted = match &self.data_iter {
                Some(it) => !it.valid(),
                None => return Ok(()),
            };
            if !exhausted {
                return Ok(());
            }
            self.index_iter.next()?;
            self.load_data_block()?;
            if let Some(it) = self.data_iter.as_mut() {
                it.seek_to_first()?;
            }
        }
    }
}

impl InternalIterator for TableIter {
    fn seek_to_first(&mut self) -> Result<()> {
        self.index_iter.seek_to_first()?;
        self.prefetch_watermark = 0;
        self.load_data_block()?;
        if let Some(it) = self.data_iter.as_mut() {
            it.seek_to_first()?;
        }
        self.skip_empty_blocks_forward()
    }

    fn seek(&mut self, target: &[u8]) -> Result<()> {
        self.index_iter.seek(target)?;
        self.prefetch_watermark = 0;
        self.load_data_block()?;
        if let Some(it) = self.data_iter.as_mut() {
            it.seek(target)?;
        }
        self.skip_empty_blocks_forward()
    }

    fn next(&mut self) -> Result<()> {
        let it = self.data_iter.as_mut().expect("next on invalid iterator");
        it.next()?;
        self.skip_empty_blocks_forward()
    }

    fn valid(&self) -> bool {
        self.data_iter.as_ref().is_some_and(|it| it.valid())
    }

    fn key(&self) -> &[u8] {
        self.data_iter.as_ref().expect("valid").key()
    }

    fn value(&self) -> &[u8] {
        self.data_iter.as_ref().expect("valid").value()
    }
}

/// Assert that every entry in `table` is in sorted order, returning the
/// entry count. Used by tests and repair tooling.
pub fn validate_table(table: &Arc<Table>) -> Result<u64> {
    let mut iter = table.iter();
    iter.seek_to_first()?;
    let mut count = 0u64;
    let mut prev: Option<Vec<u8>> = None;
    while iter.valid() {
        if let Some(p) = &prev {
            if internal_compare(p, iter.key()) != std::cmp::Ordering::Less {
                return Err(Error::corruption("table keys out of order"));
            }
        }
        prev = Some(iter.key().to_vec());
        count += 1;
        iter.next()?;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sstable::builder::TableBuilder;
    use crate::types::{make_internal_key, make_lookup_key, ValueType};
    use storage::{Env, MemEnv};

    const SNAP: u64 = (1 << 55) - 1;

    fn build_table(n: usize, opts: &Options) -> (MemEnv, Arc<Table>) {
        let env = MemEnv::new();
        let mut b = TableBuilder::new(env.new_writable("t").unwrap(), opts.clone());
        for i in 0..n {
            let k =
                make_internal_key(format!("key{i:05}").as_bytes(), i as u64 + 1, ValueType::Value);
            b.add(&k, format!("value{i}").as_bytes()).unwrap();
        }
        b.finish().unwrap();
        let file = env.open_random("t").unwrap();
        let table = Arc::new(Table::open(file, 1, opts.clone(), None).unwrap());
        (env, table)
    }

    #[test]
    fn get_every_key() {
        let opts = Options { block_size: 256, ..Options::small_for_tests() };
        let (_env, table) = build_table(500, &opts);
        for i in 0..500 {
            let lk = make_lookup_key(format!("key{i:05}").as_bytes(), SNAP);
            let (k, v) = table.get(&lk).unwrap().expect("found");
            assert_eq!(extract_user_key(&k), format!("key{i:05}").as_bytes());
            assert_eq!(v, format!("value{i}").into_bytes());
        }
    }

    #[test]
    fn get_missing_keys() {
        let opts = Options::small_for_tests();
        let (_env, table) = build_table(100, &opts);
        // Before all, between, after all.
        let miss = table.get(&make_lookup_key(b"key00050x", SNAP)).unwrap();
        if let Some((k, _)) = miss {
            // Positioned at the next key; caller checks user key equality.
            assert_ne!(extract_user_key(&k), b"key00050x");
        }
        assert!(table.get(&make_lookup_key(b"zzz", SNAP)).unwrap().is_none());
    }

    #[test]
    fn bloom_filter_short_circuits() {
        let opts = Options::small_for_tests();
        let (_env, table) = build_table(100, &opts);
        // Absent keys mostly return None without touching data blocks. A
        // bloom false positive legitimately positions at a neighbouring
        // key, so only the absence of errors is asserted here.
        for i in 0..100 {
            table.get(&make_lookup_key(format!("nope{i}").as_bytes(), SNAP)).unwrap();
        }
    }

    #[test]
    fn full_scan_is_sorted_and_complete() {
        let opts = Options { block_size: 128, ..Options::small_for_tests() };
        let (_env, table) = build_table(300, &opts);
        assert_eq!(validate_table(&table).unwrap(), 300);
    }

    #[test]
    fn iter_seek_midway() {
        let opts = Options { block_size: 128, ..Options::small_for_tests() };
        let (_env, table) = build_table(100, &opts);
        let mut it = table.iter();
        it.seek(&make_lookup_key(b"key00042", SNAP)).unwrap();
        assert!(it.valid());
        assert_eq!(extract_user_key(it.key()), b"key00042");
        it.next().unwrap();
        assert_eq!(extract_user_key(it.key()), b"key00043");
    }

    #[test]
    fn corrupt_data_block_detected() {
        let opts = Options { block_size: 128, bloom_bits_per_key: 0, ..Options::small_for_tests() };
        let env = MemEnv::new();
        let mut b = TableBuilder::new(env.new_writable("t").unwrap(), opts.clone());
        for i in 0..100 {
            let k = make_internal_key(format!("key{i:05}").as_bytes(), i + 1, ValueType::Value);
            b.add(&k, b"payload-payload").unwrap();
        }
        b.finish().unwrap();
        let mut data = env.read_all("t").unwrap();
        data[40] ^= 0xff; // inside the first data block
        env.write_all("t", &data).unwrap();
        let table = Arc::new(Table::open(env.open_random("t").unwrap(), 1, opts, None).unwrap());
        let err = table.get(&make_lookup_key(b"key00000", SNAP)).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)));
    }

    #[test]
    fn cache_serves_repeat_reads() {
        let opts = Options { block_size: 256, ..Options::small_for_tests() };
        let env = MemEnv::new();
        let mut b = TableBuilder::new(env.new_writable("t").unwrap(), opts.clone());
        for i in 0..200 {
            let k = make_internal_key(format!("key{i:05}").as_bytes(), i + 1, ValueType::Value);
            b.add(&k, b"v").unwrap();
        }
        b.finish().unwrap();
        let cache = Arc::new(BlockCache::new(1 << 20));
        let table = Arc::new(
            Table::open(env.open_random("t").unwrap(), 1, opts, Some(Arc::clone(&cache))).unwrap(),
        );
        let lk = make_lookup_key(b"key00100", SNAP);
        table.get(&lk).unwrap().unwrap();
        let reads_after_first = env.stats().snapshot().reads;
        table.get(&lk).unwrap().unwrap();
        // Second get must not re-read the data block from the "device".
        assert_eq!(env.stats().snapshot().reads, reads_after_first);
        let (hits, _) = cache.hit_stats();
        assert!(hits >= 1);
    }

    #[test]
    fn truncated_file_fails_to_open() {
        let opts = Options::small_for_tests();
        let env = MemEnv::new();
        let mut b = TableBuilder::new(env.new_writable("t").unwrap(), opts.clone());
        let k = make_internal_key(b"a", 1, ValueType::Value);
        b.add(&k, b"v").unwrap();
        b.finish().unwrap();
        let data = env.read_all("t").unwrap();
        env.write_all("t", &data[..10]).unwrap();
        assert!(Table::open(env.open_random("t").unwrap(), 1, opts, None).is_err());
    }
}
