//! A from-scratch leveled LSM-tree storage engine.
//!
//! This crate is the substrate the RocksMash designs embed into — the role
//! RocksDB plays in the paper. It implements the complete write and read
//! paths of a leveled LSM store:
//!
//! * [`memtable`] — concurrent skiplist memtable with lock-free readers and
//!   an externally serialized writer.
//! * [`wal`] — block-oriented, checksummed write-ahead log (LevelDB record
//!   format) used for both data logs and the MANIFEST.
//! * [`sstable`] — block-based immutable tables: prefix-compressed data
//!   blocks with restart points, bloom filters, index block, CRC32C
//!   trailers.
//! * [`version`] — MANIFEST/VersionEdit/VersionSet metadata machinery.
//! * [`compaction`] — leveled compaction picking and execution.
//! * [`cache`] — sharded LRU block cache.
//! * [`db`] — the `Db` facade: write batches, snapshot reads, range scans,
//!   background flush/compaction, crash recovery.
//!
//! The engine is deliberately structured so a tiering layer (crate
//! `rocksmash`) can interpose on SSTable file placement via [`db::FileRouter`]
//! and observe compaction lifecycle events, which is exactly the hook set
//! RocksMash patches into RocksDB.
//!
//! ```
//! use std::sync::Arc;
//! use lsm::{Db, Options, WriteBatch};
//! use storage::{Env, MemEnv};
//!
//! let db = Db::open(Arc::new(MemEnv::new()) as Arc<dyn Env>, Options::small_for_tests())?;
//! let mut batch = WriteBatch::new();
//! batch.put(b"a", b"1");
//! batch.put(b"b", b"2");
//! batch.delete(b"a");
//! db.write(batch)?;
//! assert_eq!(db.get(b"a")?, None);
//! assert_eq!(db.get(b"b")?, Some(b"2".to_vec()));
//!
//! let mut it = db.iter()?;
//! it.seek_to_first()?;
//! assert_eq!(it.collect_forward(10)?.len(), 1);
//! db.close()?;
//! # Ok::<(), lsm::Error>(())
//! ```

pub mod batch;
pub mod cache;
pub mod commit;
pub mod compaction;
pub mod compress;
pub mod db;
pub mod error;
pub mod iterator;
pub mod levels;
pub mod memtable;
pub mod options;
pub mod prefetch;
pub mod repair;
pub mod sstable;
pub mod types;
pub mod util;
pub mod version;
pub mod wal;

pub use batch::WriteBatch;
pub use commit::{GroupCommitStats, GroupQueue};
pub use db::{BgView, Db, DbStats, ExternalJob, FileRouter, LocalFileRouter, Snapshot};
pub use error::{Error, Result};
pub use options::{Options, ReadOptions};
pub use prefetch::Prefetcher;
pub use types::{SequenceNumber, ValueType};
