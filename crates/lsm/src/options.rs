//! Engine tuning knobs.

/// Per-read tuning knobs for iterators and scans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadOptions {
    /// When > 0, a table iterator that advances sequentially schedules up
    /// to this many upcoming data blocks on the background prefetch pool,
    /// fetched via one coalesced ranged read and staged in the block
    /// cache. 0 disables readahead. Only worthwhile for latency-bound
    /// (cloud-resident) tables; local scans gain nothing.
    pub readahead_blocks: usize,
    /// Capture a per-operation [`obs::PerfContext`] for this call: stage
    /// timers and counters (memtable probe, cache hit/miss, cloud GETs,
    /// decompression, …) accumulate in thread-local storage and are folded
    /// into the observer when the op finishes. Off by default; the
    /// disabled path costs one branch per probe site.
    pub perf_context: bool,
    /// Exclusive upper bound on iteration, in user-key space. An iterator
    /// with this set never yields a key `>= iterate_upper_bound`, stops
    /// opening table files/partitions past the bound, and clamps readahead
    /// so no cloud block beyond the bound is ever prefetched.
    pub iterate_upper_bound: Option<Vec<u8>>,
    /// Inclusive lower bound on iteration, in user-key space. Seeks (and
    /// `seek_to_first`) are clamped so the iterator never yields a key
    /// `< iterate_lower_bound`.
    pub iterate_lower_bound: Option<Vec<u8>>,
}

impl ReadOptions {
    /// Readahead of `n` blocks; `ReadOptions::default()` disables it.
    pub fn with_readahead(n: usize) -> Self {
        ReadOptions { readahead_blocks: n, ..ReadOptions::default() }
    }

    /// Enable per-op perf-context capture for this call.
    pub fn with_perf_context(mut self) -> Self {
        self.perf_context = true;
        self
    }

    /// Set an exclusive upper bound (user-key space) on iteration.
    pub fn with_upper_bound(mut self, upper: impl Into<Vec<u8>>) -> Self {
        self.iterate_upper_bound = Some(upper.into());
        self
    }

    /// Set an inclusive lower bound (user-key space) on iteration.
    pub fn with_lower_bound(mut self, lower: impl Into<Vec<u8>>) -> Self {
        self.iterate_lower_bound = Some(lower.into());
        self
    }
}

/// Configuration for a [`crate::Db`] instance.
#[derive(Debug, Clone)]
pub struct Options {
    /// Flush the memtable once it holds about this many bytes.
    pub write_buffer_size: usize,
    /// Target uncompressed size of each SSTable data block.
    pub block_size: usize,
    /// Restart interval inside blocks.
    pub block_restart_interval: usize,
    /// Bloom filter budget; 0 disables filters.
    pub bloom_bits_per_key: usize,
    /// Total block cache capacity in bytes; 0 disables the cache.
    pub block_cache_bytes: usize,
    /// Number of levels (L0..L{n-1}).
    pub num_levels: usize,
    /// Number of L0 files that triggers an L0→L1 compaction.
    pub l0_compaction_trigger: usize,
    /// Number of L0 files at which writes stall until compaction catches up.
    pub l0_stall_trigger: usize,
    /// Max total bytes for L1; each deeper level is `level_size_multiplier`×.
    pub max_bytes_for_level_base: u64,
    /// Size ratio between adjacent levels.
    pub level_size_multiplier: u64,
    /// Target size of one SSTable produced by compaction.
    pub target_file_size: u64,
    /// fsync the WAL on every write batch.
    pub sync_writes: bool,
    /// Verify block checksums on every read.
    pub verify_checksums: bool,
    /// LZ-compress SSTable blocks (skipping blocks that do not shrink).
    /// Shrinks both tiers and, more importantly, cloud egress bytes, at
    /// some CPU cost per block read/write.
    pub compression: bool,
    /// Log writes to the engine WAL. Disable only when an outer layer (the
    /// RocksMash extended WAL) provides durability and drives
    /// [`crate::Db::flush`] itself.
    pub wal_enabled: bool,
    /// Run flushes/compactions automatically on the background pool.
    pub auto_compaction: bool,
    /// How many sealed (immutable) memtables may queue up awaiting flush
    /// before writers stall. With more than one slot, `make_room` seals a
    /// full memtable and admits the write immediately; it only blocks once
    /// the queue itself is full, so short flush hiccups no longer stall
    /// ingest.
    pub max_imm_memtables: usize,
    /// Size of the background job pool running flushes and compactions.
    /// Clamped to `1..=16` at open. With several workers, flushes drain the
    /// immutable-memtable queue concurrently and compactions with disjoint
    /// inputs run in parallel.
    pub max_background_jobs: usize,
    /// Upper bound on how many range-partitioned workers one picked
    /// compaction may be split into (subcompactions). The partition points
    /// are the next-level input file boundaries, so workers write
    /// non-overlapping outputs that commit in a single version edit. 1
    /// disables splitting.
    pub max_subcompactions: usize,
    /// Number of hash-partitioned write shards. Each shard owns an
    /// independent memtable and WAL log stream, so concurrent writers on
    /// disjoint shards never contend on one memtable mutex or one log
    /// file. Clamped to `1..=16` at open. 1 reproduces the classic
    /// single-memtable write path exactly.
    pub write_shards: usize,
    /// Upper bound on how many queued write batches one group-commit
    /// leader drains into a single WAL append + fsync round. Larger groups
    /// amortize the fsync further but add latency for the first batch in
    /// the group.
    pub group_commit_max_batches: usize,
    /// Byte budget for one group-commit round: the leader stops draining
    /// the queue once the accumulated payload reaches this size.
    pub group_commit_max_bytes: usize,
    /// When > 0, SSTables are written with a two-level (partitioned)
    /// index: the index and bloom filter are cut into partitions of this
    /// many data blocks each, with a small top-level index over the
    /// partitions. Opening such a table pins only the top-level index and
    /// the filter index — O(1) instead of O(total blocks) — and index
    /// partitions load lazily through the block cache as reads touch
    /// them. 0 (the default) writes the legacy monolithic format.
    pub partitioned_index_granularity: usize,
    /// Observability handle recording per-op latency histograms and the
    /// event journal. `None` makes the engine create a disabled observer:
    /// hot paths then pay a single branch and record nothing. Outer layers
    /// (the tiered store) pass a shared enabled observer here so engine,
    /// cloud, and cache metrics land in one place.
    pub observer: Option<std::sync::Arc<obs::Observer>>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            write_buffer_size: 4 << 20,
            block_size: 4096,
            block_restart_interval: 16,
            bloom_bits_per_key: 10,
            block_cache_bytes: 8 << 20,
            num_levels: 7,
            l0_compaction_trigger: 4,
            l0_stall_trigger: 12,
            max_bytes_for_level_base: 10 << 20,
            level_size_multiplier: 10,
            target_file_size: 2 << 20,
            sync_writes: false,
            verify_checksums: true,
            compression: false,
            wal_enabled: true,
            auto_compaction: true,
            max_imm_memtables: 4,
            max_background_jobs: 4,
            max_subcompactions: 4,
            write_shards: 1,
            group_commit_max_batches: 32,
            group_commit_max_bytes: 1 << 20,
            partitioned_index_granularity: 0,
            observer: None,
        }
    }
}

impl Options {
    /// Small-scale options for unit tests: tiny buffers so flush and
    /// compaction trigger quickly.
    pub fn small_for_tests() -> Self {
        Options {
            write_buffer_size: 64 << 10,
            block_size: 1024,
            max_bytes_for_level_base: 256 << 10,
            target_file_size: 64 << 10,
            block_cache_bytes: 1 << 20,
            ..Options::default()
        }
    }

    /// Maximum allowed total size of level `level`, in bytes.
    pub fn max_bytes_for_level(&self, level: usize) -> u64 {
        debug_assert!(level >= 1);
        let mut size = self.max_bytes_for_level_base;
        for _ in 1..level {
            size = size.saturating_mul(self.level_size_multiplier);
        }
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_sizes_grow_geometrically() {
        let o = Options {
            max_bytes_for_level_base: 10,
            level_size_multiplier: 10,
            ..Options::default()
        };
        assert_eq!(o.max_bytes_for_level(1), 10);
        assert_eq!(o.max_bytes_for_level(2), 100);
        assert_eq!(o.max_bytes_for_level(3), 1000);
    }

    #[test]
    fn defaults_are_sane() {
        let o = Options::default();
        assert!(o.l0_stall_trigger > o.l0_compaction_trigger);
        assert!(o.block_size < o.write_buffer_size);
        assert!(o.num_levels >= 2);
        assert!(o.max_imm_memtables >= 1);
        assert!(o.max_background_jobs >= 1);
        assert!(o.max_subcompactions >= 1);
        assert!(o.write_shards >= 1);
        assert!(o.group_commit_max_batches >= 1);
        assert!(o.group_commit_max_bytes >= 4096);
    }
}
