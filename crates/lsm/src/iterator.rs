//! Internal iterator abstraction and the N-way merging iterator.
//!
//! Everything that yields internal-key/value pairs in sorted order — blocks,
//! tables, memtables — implements [`InternalIterator`]; compaction and user
//! scans compose them with [`MergingIterator`].

use std::cmp::Ordering;

use crate::error::Result;
use crate::types::internal_compare;

/// A sorted cursor over internal keys.
///
/// Positioning methods leave the iterator either *valid* (pointing at an
/// entry) or exhausted; `key`/`value` may only be called while valid.
pub trait InternalIterator {
    /// Position at the first entry.
    fn seek_to_first(&mut self) -> Result<()>;

    /// Position at the first entry with internal key >= `target`.
    fn seek(&mut self, target: &[u8]) -> Result<()>;

    /// Advance one entry. Must be valid before the call.
    fn next(&mut self) -> Result<()>;

    /// Whether the cursor points at an entry.
    fn valid(&self) -> bool;

    /// Internal key at the cursor. Valid only while `valid()`.
    fn key(&self) -> &[u8];

    /// Value at the cursor. Valid only while `valid()`.
    fn value(&self) -> &[u8];
}

/// Merges N sorted child iterators into one sorted stream.
///
/// A linear scan over children picks the minimum at each step; for the
/// fan-ins the engine produces (≤ ~12 children: one per level plus L0
/// files), linear beats a binary heap on constant factors.
pub struct MergingIterator {
    children: Vec<Box<dyn InternalIterator>>,
    current: Option<usize>,
}

impl MergingIterator {
    /// Merge the given children.
    pub fn new(children: Vec<Box<dyn InternalIterator>>) -> Self {
        MergingIterator { children, current: None }
    }

    fn find_smallest(&mut self) {
        let mut smallest: Option<usize> = None;
        for (i, child) in self.children.iter().enumerate() {
            if !child.valid() {
                continue;
            }
            match smallest {
                None => smallest = Some(i),
                Some(s) => {
                    if internal_compare(child.key(), self.children[s].key()) == Ordering::Less {
                        smallest = Some(i);
                    }
                }
            }
        }
        self.current = smallest;
    }
}

impl InternalIterator for MergingIterator {
    fn seek_to_first(&mut self) -> Result<()> {
        for child in &mut self.children {
            child.seek_to_first()?;
        }
        self.find_smallest();
        Ok(())
    }

    fn seek(&mut self, target: &[u8]) -> Result<()> {
        for child in &mut self.children {
            child.seek(target)?;
        }
        self.find_smallest();
        Ok(())
    }

    fn next(&mut self) -> Result<()> {
        let cur = self.current.expect("next on invalid iterator");
        self.children[cur].next()?;
        self.find_smallest();
        Ok(())
    }

    fn valid(&self) -> bool {
        self.current.is_some()
    }

    fn key(&self) -> &[u8] {
        self.children[self.current.expect("valid")].key()
    }

    fn value(&self) -> &[u8] {
        self.children[self.current.expect("valid")].value()
    }
}

/// Iterator over an in-memory list of (internal key, value) pairs. Used in
/// tests and as the flush source adapter.
pub struct VecIterator {
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    pos: usize,
    started: bool,
}

impl VecIterator {
    /// Build from entries that must already be sorted by internal key.
    pub fn new(entries: Vec<(Vec<u8>, Vec<u8>)>) -> Self {
        debug_assert!(entries
            .windows(2)
            .all(|w| internal_compare(&w[0].0, &w[1].0) == Ordering::Less));
        VecIterator { entries, pos: 0, started: false }
    }
}

impl InternalIterator for VecIterator {
    fn seek_to_first(&mut self) -> Result<()> {
        self.pos = 0;
        self.started = true;
        Ok(())
    }

    fn seek(&mut self, target: &[u8]) -> Result<()> {
        self.pos =
            self.entries.partition_point(|(k, _)| internal_compare(k, target) == Ordering::Less);
        self.started = true;
        Ok(())
    }

    fn next(&mut self) -> Result<()> {
        debug_assert!(self.valid());
        self.pos += 1;
        Ok(())
    }

    fn valid(&self) -> bool {
        self.started && self.pos < self.entries.len()
    }

    fn key(&self) -> &[u8] {
        &self.entries[self.pos].0
    }

    fn value(&self) -> &[u8] {
        &self.entries[self.pos].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, ValueType};

    fn ik(k: &str, seq: u64) -> Vec<u8> {
        make_internal_key(k.as_bytes(), seq, ValueType::Value)
    }

    fn vec_iter(keys: &[(&str, u64)]) -> Box<dyn InternalIterator> {
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> =
            keys.iter().map(|(k, s)| (ik(k, *s), format!("{k}@{s}").into_bytes())).collect();
        entries.sort_by(|a, b| internal_compare(&a.0, &b.0));
        Box::new(VecIterator::new(entries))
    }

    fn drain(it: &mut dyn InternalIterator) -> Vec<String> {
        let mut out = Vec::new();
        while it.valid() {
            out.push(String::from_utf8(it.value().to_vec()).unwrap());
            it.next().unwrap();
        }
        out
    }

    #[test]
    fn merge_two_streams() {
        let a = vec_iter(&[("a", 1), ("c", 1), ("e", 1)]);
        let b = vec_iter(&[("b", 1), ("d", 1)]);
        let mut m = MergingIterator::new(vec![a, b]);
        m.seek_to_first().unwrap();
        assert_eq!(drain(&mut m), vec!["a@1", "b@1", "c@1", "d@1", "e@1"]);
    }

    #[test]
    fn merge_respects_sequence_order_within_key() {
        let a = vec_iter(&[("k", 5)]);
        let b = vec_iter(&[("k", 9)]);
        let mut m = MergingIterator::new(vec![a, b]);
        m.seek_to_first().unwrap();
        // seq 9 is newer, sorts first.
        assert_eq!(drain(&mut m), vec!["k@9", "k@5"]);
    }

    #[test]
    fn merge_seek() {
        let a = vec_iter(&[("a", 1), ("m", 1)]);
        let b = vec_iter(&[("f", 1), ("z", 1)]);
        let mut m = MergingIterator::new(vec![a, b]);
        m.seek(&ik("g", u64::MAX >> 9)).unwrap();
        assert_eq!(drain(&mut m), vec!["m@1", "z@1"]);
    }

    #[test]
    fn merge_empty_children() {
        let a = vec_iter(&[]);
        let b = vec_iter(&[("x", 1)]);
        let mut m = MergingIterator::new(vec![a, b]);
        m.seek_to_first().unwrap();
        assert_eq!(drain(&mut m), vec!["x@1"]);
        let mut m2 = MergingIterator::new(vec![]);
        m2.seek_to_first().unwrap();
        assert!(!m2.valid());
    }

    #[test]
    fn vec_iterator_seek_bounds() {
        let mut it = vec_iter(&[("b", 1), ("d", 1)]);
        it.seek(&ik("a", u64::MAX >> 9)).unwrap();
        assert!(it.valid());
        it.seek(&ik("e", u64::MAX >> 9)).unwrap();
        assert!(!it.valid());
    }
}
