//! Internal iterator abstraction and the N-way merging iterator.
//!
//! Everything that yields internal-key/value pairs in sorted order — blocks,
//! tables, memtables — implements [`InternalIterator`]; compaction and user
//! scans compose them with [`MergingIterator`].

use std::cmp::Ordering;

use crate::error::{Error, Result};
use crate::types::{extract_user_key, internal_compare};

/// A sorted cursor over internal keys.
///
/// Positioning methods leave the iterator either *valid* (pointing at an
/// entry) or exhausted; `key`/`value` may only be called while valid.
pub trait InternalIterator {
    /// Position at the first entry.
    fn seek_to_first(&mut self) -> Result<()>;

    /// Position at the first entry with internal key >= `target`.
    fn seek(&mut self, target: &[u8]) -> Result<()>;

    /// Advance one entry. Must be valid before the call.
    fn next(&mut self) -> Result<()>;

    /// Whether the cursor points at an entry.
    fn valid(&self) -> bool;

    /// Internal key at the cursor. Valid only while `valid()`.
    fn key(&self) -> &[u8];

    /// Value at the cursor. Valid only while `valid()`.
    fn value(&self) -> &[u8];
}

/// Merges N sorted child iterators into one sorted stream.
///
/// A binary min-heap of child indices picks the head in O(log N). With
/// sharded memtables and parallel-compaction L0 shapes the fan-in easily
/// exceeds a dozen children, so the old linear min-scan paid O(N) per
/// step. The common case — the head child still beats the runner-up after
/// advancing — costs just the one comparison at which [`Self::sift_down`]
/// terminates without swapping.
///
/// An optional exclusive upper bound (user-key space) truncates the merged
/// stream: once the head reaches the bound the heap is cleared, because
/// every remaining entry in a sorted stream is also past the bound.
pub struct MergingIterator {
    children: Vec<Box<dyn InternalIterator>>,
    /// Indices of currently-valid children, heap-ordered by `less`.
    heap: Vec<usize>,
    /// Exclusive upper bound on yielded user keys.
    upper_bound: Option<Vec<u8>>,
}

impl MergingIterator {
    /// Merge the given children.
    pub fn new(children: Vec<Box<dyn InternalIterator>>) -> Self {
        Self::new_bounded(children, None)
    }

    /// Merge with an exclusive upper bound in user-key space; `None`
    /// merges unbounded.
    pub fn new_bounded(
        children: Vec<Box<dyn InternalIterator>>,
        upper_bound: Option<Vec<u8>>,
    ) -> Self {
        let heap = Vec::with_capacity(children.len());
        MergingIterator { children, heap, upper_bound }
    }

    /// Heap order: smaller internal key wins; on an exact tie the lower
    /// child index wins, preserving the old linear scan's first-child
    /// semantics.
    fn less(&self, a: usize, b: usize) -> bool {
        match internal_compare(self.children[a].key(), self.children[b].key()) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => a < b,
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                return;
            }
            let right = left + 1;
            let mut smallest = left;
            if right < self.heap.len() && self.less(self.heap[right], self.heap[left]) {
                smallest = right;
            }
            if self.less(self.heap[smallest], self.heap[i]) {
                self.heap.swap(i, smallest);
                i = smallest;
            } else {
                return;
            }
        }
    }

    /// Rebuild the heap from every currently-valid child (after a seek).
    fn rebuild(&mut self) {
        self.heap.clear();
        for i in 0..self.children.len() {
            if self.children[i].valid() {
                self.heap.push(i);
            }
        }
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i);
        }
        self.enforce_bound();
    }

    /// Clear the heap once the head crosses the upper bound: the merged
    /// stream is sorted, so everything after the head is past it too.
    fn enforce_bound(&mut self) {
        if let Some(upper) = &self.upper_bound {
            if let Some(&head) = self.heap.first() {
                if extract_user_key(self.children[head].key()) >= upper.as_slice() {
                    self.heap.clear();
                }
            }
        }
    }
}

impl InternalIterator for MergingIterator {
    fn seek_to_first(&mut self) -> Result<()> {
        for child in &mut self.children {
            child.seek_to_first()?;
        }
        self.rebuild();
        Ok(())
    }

    fn seek(&mut self, target: &[u8]) -> Result<()> {
        for child in &mut self.children {
            child.seek(target)?;
        }
        self.rebuild();
        Ok(())
    }

    fn next(&mut self) -> Result<()> {
        let Some(&head) = self.heap.first() else {
            return Err(Error::corruption("next on exhausted merging iterator"));
        };
        self.children[head].next()?;
        if self.children[head].valid() {
            // Fast path lives inside sift_down: while the head still beats
            // the runner-up it terminates after one comparison, no swaps.
            self.sift_down(0);
        } else {
            self.heap.swap_remove(0);
            if !self.heap.is_empty() {
                self.sift_down(0);
            }
        }
        self.enforce_bound();
        Ok(())
    }

    fn valid(&self) -> bool {
        !self.heap.is_empty()
    }

    fn key(&self) -> &[u8] {
        self.children[*self.heap.first().expect("valid")].key()
    }

    fn value(&self) -> &[u8] {
        self.children[*self.heap.first().expect("valid")].value()
    }
}

/// Iterator over an in-memory list of (internal key, value) pairs. Used in
/// tests and as the flush source adapter.
pub struct VecIterator {
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    pos: usize,
    started: bool,
}

impl VecIterator {
    /// Build from entries that must already be sorted by internal key.
    pub fn new(entries: Vec<(Vec<u8>, Vec<u8>)>) -> Self {
        debug_assert!(entries
            .windows(2)
            .all(|w| internal_compare(&w[0].0, &w[1].0) == Ordering::Less));
        VecIterator { entries, pos: 0, started: false }
    }
}

impl InternalIterator for VecIterator {
    fn seek_to_first(&mut self) -> Result<()> {
        self.pos = 0;
        self.started = true;
        Ok(())
    }

    fn seek(&mut self, target: &[u8]) -> Result<()> {
        self.pos =
            self.entries.partition_point(|(k, _)| internal_compare(k, target) == Ordering::Less);
        self.started = true;
        Ok(())
    }

    fn next(&mut self) -> Result<()> {
        if !self.valid() {
            return Err(Error::corruption("next on invalid vec iterator"));
        }
        self.pos += 1;
        Ok(())
    }

    fn valid(&self) -> bool {
        self.started && self.pos < self.entries.len()
    }

    fn key(&self) -> &[u8] {
        &self.entries[self.pos].0
    }

    fn value(&self) -> &[u8] {
        &self.entries[self.pos].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, ValueType};

    fn ik(k: &str, seq: u64) -> Vec<u8> {
        make_internal_key(k.as_bytes(), seq, ValueType::Value)
    }

    fn vec_iter(keys: &[(&str, u64)]) -> Box<dyn InternalIterator> {
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> =
            keys.iter().map(|(k, s)| (ik(k, *s), format!("{k}@{s}").into_bytes())).collect();
        entries.sort_by(|a, b| internal_compare(&a.0, &b.0));
        Box::new(VecIterator::new(entries))
    }

    fn drain(it: &mut dyn InternalIterator) -> Vec<String> {
        let mut out = Vec::new();
        while it.valid() {
            out.push(String::from_utf8(it.value().to_vec()).unwrap());
            it.next().unwrap();
        }
        out
    }

    #[test]
    fn merge_two_streams() {
        let a = vec_iter(&[("a", 1), ("c", 1), ("e", 1)]);
        let b = vec_iter(&[("b", 1), ("d", 1)]);
        let mut m = MergingIterator::new(vec![a, b]);
        m.seek_to_first().unwrap();
        assert_eq!(drain(&mut m), vec!["a@1", "b@1", "c@1", "d@1", "e@1"]);
    }

    #[test]
    fn merge_respects_sequence_order_within_key() {
        let a = vec_iter(&[("k", 5)]);
        let b = vec_iter(&[("k", 9)]);
        let mut m = MergingIterator::new(vec![a, b]);
        m.seek_to_first().unwrap();
        // seq 9 is newer, sorts first.
        assert_eq!(drain(&mut m), vec!["k@9", "k@5"]);
    }

    #[test]
    fn merge_seek() {
        let a = vec_iter(&[("a", 1), ("m", 1)]);
        let b = vec_iter(&[("f", 1), ("z", 1)]);
        let mut m = MergingIterator::new(vec![a, b]);
        m.seek(&ik("g", u64::MAX >> 9)).unwrap();
        assert_eq!(drain(&mut m), vec!["m@1", "z@1"]);
    }

    #[test]
    fn merge_empty_children() {
        let a = vec_iter(&[]);
        let b = vec_iter(&[("x", 1)]);
        let mut m = MergingIterator::new(vec![a, b]);
        m.seek_to_first().unwrap();
        assert_eq!(drain(&mut m), vec!["x@1"]);
        let mut m2 = MergingIterator::new(vec![]);
        m2.seek_to_first().unwrap();
        assert!(!m2.valid());
    }

    #[test]
    fn vec_iterator_seek_bounds() {
        let mut it = vec_iter(&[("b", 1), ("d", 1)]);
        it.seek(&ik("a", u64::MAX >> 9)).unwrap();
        assert!(it.valid());
        it.seek(&ik("e", u64::MAX >> 9)).unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn merge_many_children_stays_sorted() {
        // Wide fan-in exercises the heap across rebuilds and advances.
        let children: Vec<Box<dyn InternalIterator>> = (0..24)
            .map(|c| {
                let keys: Vec<(String, u64)> =
                    (0..8).map(|i| (format!("k{:03}", i * 24 + c), 1u64)).collect();
                let refs: Vec<(&str, u64)> = keys.iter().map(|(k, s)| (k.as_str(), *s)).collect();
                vec_iter(&refs)
            })
            .collect();
        let mut m = MergingIterator::new(children);
        m.seek_to_first().unwrap();
        let got = drain(&mut m);
        assert_eq!(got.len(), 24 * 8);
        let mut sorted = got.clone();
        sorted.sort();
        assert_eq!(got, sorted);
    }

    #[test]
    fn merge_upper_bound_truncates() {
        let a = vec_iter(&[("a", 1), ("c", 1), ("e", 1)]);
        let b = vec_iter(&[("b", 1), ("d", 1)]);
        let mut m = MergingIterator::new_bounded(vec![a, b], Some(b"d".to_vec()));
        m.seek_to_first().unwrap();
        // Exclusive bound: "d" itself is not yielded.
        assert_eq!(drain(&mut m), vec!["a@1", "b@1", "c@1"]);

        // A seek landing past the bound is immediately invalid.
        let a = vec_iter(&[("a", 1), ("e", 1)]);
        let mut m = MergingIterator::new_bounded(vec![a], Some(b"d".to_vec()));
        m.seek(&ik("b", u64::MAX >> 9)).unwrap();
        assert!(!m.valid());
    }

    #[test]
    fn merge_next_on_exhausted_is_error_not_panic() {
        let mut m = MergingIterator::new(vec![vec_iter(&[("a", 1)])]);
        m.seek_to_first().unwrap();
        m.next().unwrap();
        assert!(!m.valid());
        assert!(m.next().is_err());
    }

    #[test]
    fn vec_iterator_next_past_end_is_error() {
        let mut it = vec_iter(&[("a", 1)]);
        assert!(it.next().is_err()); // not positioned yet
        it.seek_to_first().unwrap();
        it.next().unwrap();
        assert!(!it.valid());
        assert!(it.next().is_err());
    }
}
