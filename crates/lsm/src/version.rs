//! Versions, version edits, and the MANIFEST.
//!
//! A *version* is an immutable snapshot of the table files at every level.
//! Mutations (flushes, compactions) are described by [`VersionEdit`]s,
//! logged to the MANIFEST (same record format as the WAL), and applied to
//! produce the next version. Recovery replays the MANIFEST named by the
//! `CURRENT` file. This is the metadata the paper keeps on *local* storage
//! in all configurations.

use std::collections::BTreeSet;
use std::sync::Arc;

use parking_lot::RwLock;
use storage::Env;

use crate::error::{Error, Result};
use crate::types::{extract_user_key, internal_compare};
use crate::util::{get_length_prefixed, get_varint64, put_length_prefixed, put_varint64};
use crate::wal::{LogReader, LogWriter};

/// Name of the SSTable file with this number.
pub fn sst_name(number: u64) -> String {
    format!("{number:06}.sst")
}

/// Name of the WAL file with this number.
pub fn log_name(number: u64) -> String {
    format!("wal/{number:06}.log")
}

/// Name of the MANIFEST file with this number.
pub fn manifest_name(number: u64) -> String {
    format!("MANIFEST-{number:06}")
}

/// Name of the CURRENT pointer file.
pub const CURRENT: &str = "CURRENT";

/// Metadata for one table file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMetaData {
    /// File number (names the file on either tier).
    pub number: u64,
    /// Size in bytes.
    pub file_size: u64,
    /// Smallest internal key in the file.
    pub smallest: Vec<u8>,
    /// Largest internal key in the file.
    pub largest: Vec<u8>,
}

impl FileMetaData {
    /// Whether this file's user-key range overlaps `[begin, end]` (both
    /// inclusive; `None` means unbounded).
    pub fn overlaps_user_range(&self, begin: Option<&[u8]>, end: Option<&[u8]>) -> bool {
        let file_begin = extract_user_key(&self.smallest);
        let file_end = extract_user_key(&self.largest);
        if let Some(end) = end {
            if file_begin > end {
                return false;
            }
        }
        if let Some(begin) = begin {
            if file_end < begin {
                return false;
            }
        }
        true
    }
}

/// A record of changes between two versions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionEdit {
    /// New WAL number: logs older than this are obsolete.
    pub log_number: Option<u64>,
    /// High-water mark for file numbers.
    pub next_file_number: Option<u64>,
    /// Last sequence number made durable.
    pub last_sequence: Option<u64>,
    /// Files added, with their level.
    pub new_files: Vec<(usize, FileMetaData)>,
    /// Files removed, as (level, file number).
    pub deleted_files: Vec<(usize, u64)>,
}

// Field tags for the on-disk encoding.
const TAG_LOG_NUMBER: u64 = 1;
const TAG_NEXT_FILE: u64 = 2;
const TAG_LAST_SEQUENCE: u64 = 3;
const TAG_NEW_FILE: u64 = 4;
const TAG_DELETED_FILE: u64 = 5;

impl VersionEdit {
    /// Serialize to the MANIFEST record format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        if let Some(v) = self.log_number {
            put_varint64(&mut out, TAG_LOG_NUMBER);
            put_varint64(&mut out, v);
        }
        if let Some(v) = self.next_file_number {
            put_varint64(&mut out, TAG_NEXT_FILE);
            put_varint64(&mut out, v);
        }
        if let Some(v) = self.last_sequence {
            put_varint64(&mut out, TAG_LAST_SEQUENCE);
            put_varint64(&mut out, v);
        }
        for (level, f) in &self.new_files {
            put_varint64(&mut out, TAG_NEW_FILE);
            put_varint64(&mut out, *level as u64);
            put_varint64(&mut out, f.number);
            put_varint64(&mut out, f.file_size);
            put_length_prefixed(&mut out, &f.smallest);
            put_length_prefixed(&mut out, &f.largest);
        }
        for (level, number) in &self.deleted_files {
            put_varint64(&mut out, TAG_DELETED_FILE);
            put_varint64(&mut out, *level as u64);
            put_varint64(&mut out, *number);
        }
        out
    }

    /// Parse a MANIFEST record.
    pub fn decode(mut src: &[u8]) -> Result<VersionEdit> {
        let mut edit = VersionEdit::default();
        let bad = || Error::corruption("malformed version edit");
        while !src.is_empty() {
            let (tag, n) = get_varint64(src).ok_or_else(bad)?;
            src = &src[n..];
            match tag {
                TAG_LOG_NUMBER | TAG_NEXT_FILE | TAG_LAST_SEQUENCE => {
                    let (v, n) = get_varint64(src).ok_or_else(bad)?;
                    src = &src[n..];
                    match tag {
                        TAG_LOG_NUMBER => edit.log_number = Some(v),
                        TAG_NEXT_FILE => edit.next_file_number = Some(v),
                        _ => edit.last_sequence = Some(v),
                    }
                }
                TAG_NEW_FILE => {
                    let (level, n) = get_varint64(src).ok_or_else(bad)?;
                    src = &src[n..];
                    let (number, n) = get_varint64(src).ok_or_else(bad)?;
                    src = &src[n..];
                    let (file_size, n) = get_varint64(src).ok_or_else(bad)?;
                    src = &src[n..];
                    let (smallest, n) = get_length_prefixed(src).ok_or_else(bad)?;
                    let smallest = smallest.to_vec();
                    src = &src[n..];
                    let (largest, n) = get_length_prefixed(src).ok_or_else(bad)?;
                    let largest = largest.to_vec();
                    src = &src[n..];
                    edit.new_files.push((
                        level as usize,
                        FileMetaData { number, file_size, smallest, largest },
                    ));
                }
                TAG_DELETED_FILE => {
                    let (level, n) = get_varint64(src).ok_or_else(bad)?;
                    src = &src[n..];
                    let (number, n) = get_varint64(src).ok_or_else(bad)?;
                    src = &src[n..];
                    edit.deleted_files.push((level as usize, number));
                }
                _ => return Err(bad()),
            }
        }
        Ok(edit)
    }
}

/// Immutable snapshot of the file layout across levels.
#[derive(Debug, Clone)]
pub struct Version {
    /// `levels[0]` is unsorted-by-range (files may overlap; newest first);
    /// deeper levels hold disjoint files sorted by smallest key.
    pub levels: Vec<Vec<Arc<FileMetaData>>>,
}

impl Version {
    /// Empty version with `num_levels` levels.
    pub fn empty(num_levels: usize) -> Self {
        Version { levels: vec![Vec::new(); num_levels] }
    }

    /// Total file count.
    pub fn file_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Total bytes at `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.levels[level].iter().map(|f| f.file_size).sum()
    }

    /// Files at `level` whose user-key range overlaps `[begin, end]`.
    pub fn overlapping_files(
        &self,
        level: usize,
        begin: Option<&[u8]>,
        end: Option<&[u8]>,
    ) -> Vec<Arc<FileMetaData>> {
        self.levels[level].iter().filter(|f| f.overlaps_user_range(begin, end)).cloned().collect()
    }

    /// Whether any file at `level` overlapping `[begin, end]` is in `busy`
    /// (the set of file numbers claimed by in-flight compactions). A new
    /// compaction whose key hull touches a claimed file would race the job
    /// holding the claim, so picking must skip such candidates.
    pub fn range_claimed(
        &self,
        level: usize,
        begin: Option<&[u8]>,
        end: Option<&[u8]>,
        busy: &BTreeSet<u64>,
    ) -> bool {
        if busy.is_empty() {
            return false;
        }
        self.levels[level]
            .iter()
            .any(|f| busy.contains(&f.number) && f.overlaps_user_range(begin, end))
    }

    /// Files that could contain `user_key`, in the order a read must probe
    /// them: all overlapping L0 files newest-first, then at most one file
    /// per deeper level.
    pub fn files_for_get(&self, user_key: &[u8]) -> Vec<(usize, Arc<FileMetaData>)> {
        let mut out = Vec::new();
        for f in &self.levels[0] {
            if f.overlaps_user_range(Some(user_key), Some(user_key)) {
                out.push((0, Arc::clone(f)));
            }
        }
        // L0 files must be probed newest-first; levels[0] keeps newest
        // first already (see Builder), but enforce by file number.
        out.sort_by_key(|(_, f)| std::cmp::Reverse(f.number));
        for (level, files) in self.levels.iter().enumerate().skip(1) {
            // Binary search: files are disjoint and sorted by smallest.
            let idx = files.partition_point(|f| extract_user_key(&f.largest) < user_key);
            if idx < files.len() && files[idx].overlaps_user_range(Some(user_key), Some(user_key)) {
                out.push((level, Arc::clone(&files[idx])));
            }
        }
        out
    }
}

/// Applies edits to versions and persists them to the MANIFEST.
pub struct VersionSet {
    env: Arc<dyn Env>,
    current: Arc<Version>,
    /// The current version mirrored behind its own lock, so observers
    /// (stats collectors, the metrics endpoint) can list the tree without
    /// taking whatever outer lock guards the `VersionSet` itself.
    published: Arc<RwLock<Arc<Version>>>,
    manifest: Option<LogWriter>,
    manifest_number: u64,
    /// Next file number to hand out (SSTs, WALs, MANIFESTs share the space).
    pub next_file_number: u64,
    /// Last durable write sequence.
    pub last_sequence: u64,
    /// Oldest WAL still needed for recovery.
    pub log_number: u64,
}

impl VersionSet {
    /// Create a brand-new database or recover an existing one, depending on
    /// whether `CURRENT` exists.
    pub fn open(env: Arc<dyn Env>, num_levels: usize) -> Result<VersionSet> {
        if env.exists(CURRENT)? {
            Self::recover(env, num_levels)
        } else {
            let current = Arc::new(Version::empty(num_levels));
            let mut vs = VersionSet {
                env,
                published: Arc::new(RwLock::new(Arc::clone(&current))),
                current,
                manifest: None,
                manifest_number: 0,
                next_file_number: 2,
                last_sequence: 0,
                log_number: 0,
            };
            // Write an initial manifest so a crash right after creation
            // still recovers to an empty database.
            vs.write_snapshot_manifest()?;
            Ok(vs)
        }
    }

    fn recover(env: Arc<dyn Env>, num_levels: usize) -> Result<VersionSet> {
        let current = env.read_all(CURRENT)?;
        let manifest_file = String::from_utf8(current)
            .map_err(|_| Error::corruption("CURRENT is not utf-8"))?
            .trim()
            .to_string();
        let manifest_number: u64 = manifest_file
            .strip_prefix("MANIFEST-")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::corruption("CURRENT does not name a manifest"))?;
        let mut reader = LogReader::new(env.open_random(&manifest_file)?);
        let mut builder = Builder::new(Version::empty(num_levels));
        let mut next_file_number = 2;
        let mut last_sequence = 0;
        let mut log_number = 0;
        let mut saw_any = false;
        while let Some(record) = reader.read_record()? {
            let edit = VersionEdit::decode(&record)?;
            if let Some(v) = edit.next_file_number {
                next_file_number = v;
            }
            if let Some(v) = edit.last_sequence {
                last_sequence = v;
            }
            if let Some(v) = edit.log_number {
                log_number = v;
            }
            builder.apply(&edit);
            saw_any = true;
        }
        if !saw_any {
            return Err(Error::corruption("manifest holds no edits"));
        }
        let version = Arc::new(builder.finish()?);
        let mut vs = VersionSet {
            env,
            published: Arc::new(RwLock::new(Arc::clone(&version))),
            current: version,
            manifest: None,
            manifest_number,
            next_file_number: next_file_number.max(manifest_number + 1),
            last_sequence,
            log_number,
        };
        // Start a fresh manifest on every open (simpler than appending and
        // bounds manifest growth across restarts).
        vs.write_snapshot_manifest()?;
        Ok(vs)
    }

    /// The current version.
    pub fn current(&self) -> Arc<Version> {
        Arc::clone(&self.current)
    }

    /// A handle to the published current version. Cloning the handle once
    /// lets a detached observer read the live tree shape later without
    /// ever touching the lock that guards this `VersionSet`.
    pub fn published(&self) -> Arc<RwLock<Arc<Version>>> {
        Arc::clone(&self.published)
    }

    /// Allocate a fresh file number.
    pub fn new_file_number(&mut self) -> u64 {
        let n = self.next_file_number;
        self.next_file_number += 1;
        n
    }

    /// Apply `edit` to the current version, persist it to the MANIFEST, and
    /// install the result as current.
    pub fn log_and_apply(&mut self, mut edit: VersionEdit) -> Result<()> {
        // Never hand out a number at or below one referenced by the edit
        // (files may have been numbered by an outer layer).
        for (_, f) in &edit.new_files {
            self.next_file_number = self.next_file_number.max(f.number + 1);
        }
        edit.next_file_number = Some(self.next_file_number);
        edit.last_sequence = Some(self.last_sequence);
        match edit.log_number {
            // The recovery floor may only advance: with per-shard WAL
            // streams a flush commit's floor is the min over shards of the
            // active log numbers, and a stale read of that min must never
            // roll the manifest's floor backwards (it would resurrect
            // already-reclaimed logs as "needed").
            Some(n) => {
                self.log_number = self.log_number.max(n);
                edit.log_number = Some(self.log_number);
            }
            None => edit.log_number = Some(self.log_number),
        }
        let mut builder = Builder::new((*self.current).clone());
        builder.apply(&edit);
        let next = builder.finish()?;
        let manifest = self.manifest.as_mut().expect("manifest open");
        // Crash site: before the edit record lands in the MANIFEST, so the
        // version transition either happens durably or not at all.
        storage::failpoint::fail_point("manifest_apply")?;
        manifest.add_record(&edit.encode())?;
        manifest.sync()?;
        self.current = Arc::new(next);
        *self.published.write() = Arc::clone(&self.current);
        Ok(())
    }

    /// All file numbers referenced by the current version.
    pub fn live_files(&self) -> BTreeSet<u64> {
        self.current.levels.iter().flat_map(|files| files.iter().map(|f| f.number)).collect()
    }

    /// Write a full-state manifest and repoint CURRENT at it.
    fn write_snapshot_manifest(&mut self) -> Result<()> {
        self.manifest_number = self.next_file_number;
        self.next_file_number += 1;
        let name = manifest_name(self.manifest_number);
        let mut writer = LogWriter::new(self.env.new_writable(&name)?);
        let mut snapshot = VersionEdit {
            log_number: Some(self.log_number),
            next_file_number: Some(self.next_file_number),
            last_sequence: Some(self.last_sequence),
            ..VersionEdit::default()
        };
        for (level, files) in self.current.levels.iter().enumerate() {
            for f in files {
                snapshot.new_files.push((level, (**f).clone()));
            }
        }
        writer.add_record(&snapshot.encode())?;
        writer.sync()?;
        self.manifest = Some(writer);
        self.env.write_all(CURRENT, name.as_bytes())?;
        Ok(())
    }

    /// Delete manifests other than the live one (startup garbage
    /// collection).
    pub fn obsolete_manifests(&self) -> Result<Vec<String>> {
        let live = manifest_name(self.manifest_number);
        Ok(self.env.list("MANIFEST-")?.into_iter().filter(|name| *name != live).collect())
    }
}

/// Applies edits to a version under construction.
struct Builder {
    levels: Vec<Vec<Arc<FileMetaData>>>,
    deleted: BTreeSet<(usize, u64)>,
}

impl Builder {
    fn new(base: Version) -> Self {
        Builder { levels: base.levels, deleted: BTreeSet::new() }
    }

    fn apply(&mut self, edit: &VersionEdit) {
        for (level, number) in &edit.deleted_files {
            self.deleted.insert((*level, *number));
            self.levels[*level].retain(|f| f.number != *number);
        }
        for (level, f) in &edit.new_files {
            self.deleted.remove(&(*level, f.number));
            self.levels[*level].push(Arc::new(f.clone()));
        }
    }

    fn finish(mut self) -> Result<Version> {
        // L0: newest (highest number) first. Deeper levels: by smallest key,
        // and ranges must be disjoint.
        if let Some(l0) = self.levels.first_mut() {
            l0.sort_by_key(|f| std::cmp::Reverse(f.number));
        }
        for (level, files) in self.levels.iter_mut().enumerate().skip(1) {
            files.sort_by(|a, b| internal_compare(&a.smallest, &b.smallest));
            for w in files.windows(2) {
                if extract_user_key(&w[0].largest) >= extract_user_key(&w[1].smallest) {
                    return Err(Error::corruption(format!(
                        "overlapping files {} and {} at level {level}",
                        w[0].number, w[1].number
                    )));
                }
            }
        }
        Ok(Version { levels: self.levels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, ValueType};
    use storage::MemEnv;

    fn meta(number: u64, small: &str, large: &str) -> FileMetaData {
        FileMetaData {
            number,
            file_size: 1000,
            smallest: make_internal_key(small.as_bytes(), 100, ValueType::Value),
            largest: make_internal_key(large.as_bytes(), 1, ValueType::Value),
        }
    }

    #[test]
    fn range_claimed_only_for_overlapping_busy_files() {
        let mut version = Version::empty(7);
        version.levels[1] = vec![Arc::new(meta(1, "a", "f")), Arc::new(meta(2, "g", "p"))];
        let busy: BTreeSet<u64> = [2].into_iter().collect();
        // File 2 is claimed, but range a..e only overlaps file 1.
        assert!(!version.range_claimed(1, Some(b"a"), Some(b"e"), &busy));
        assert!(version.range_claimed(1, Some(b"h"), Some(b"k"), &busy));
        // Unbounded range touches everything, including the claim.
        assert!(version.range_claimed(1, None, None, &busy));
        assert!(!version.range_claimed(1, None, None, &BTreeSet::new()));
    }

    #[test]
    fn edit_encode_decode_roundtrip() {
        let edit = VersionEdit {
            log_number: Some(7),
            next_file_number: Some(99),
            last_sequence: Some(123456),
            new_files: vec![(0, meta(12, "a", "m")), (3, meta(13, "n", "z"))],
            deleted_files: vec![(1, 4), (2, 8)],
        };
        let decoded = VersionEdit::decode(&edit.encode()).unwrap();
        assert_eq!(decoded, edit);
    }

    #[test]
    fn edit_decode_rejects_garbage() {
        assert!(VersionEdit::decode(&[99]).is_err());
        let edit = VersionEdit { log_number: Some(7), ..Default::default() };
        let mut enc = edit.encode();
        enc.truncate(1);
        assert!(VersionEdit::decode(&enc).is_err());
    }

    #[test]
    fn fresh_open_then_recover_empty() {
        let env = Arc::new(MemEnv::new());
        {
            let vs = VersionSet::open(env.clone() as Arc<dyn Env>, 7).unwrap();
            assert_eq!(vs.current().file_count(), 0);
        }
        let vs = VersionSet::open(env as Arc<dyn Env>, 7).unwrap();
        assert_eq!(vs.current().file_count(), 0);
        assert_eq!(vs.last_sequence, 0);
    }

    #[test]
    fn apply_and_recover_files() {
        let env = Arc::new(MemEnv::new());
        {
            let mut vs = VersionSet::open(env.clone() as Arc<dyn Env>, 7).unwrap();
            vs.last_sequence = 500;
            let edit = VersionEdit {
                new_files: vec![
                    (0, meta(10, "a", "k")),
                    (1, meta(11, "a", "f")),
                    (1, meta(12, "g", "p")),
                ],
                ..Default::default()
            };
            vs.log_and_apply(edit).unwrap();
            let edit2 = VersionEdit {
                deleted_files: vec![(0, 10)],
                new_files: vec![(1, meta(14, "q", "z"))],
                ..Default::default()
            };
            vs.log_and_apply(edit2).unwrap();
        }
        let vs = VersionSet::open(env as Arc<dyn Env>, 7).unwrap();
        let v = vs.current();
        assert_eq!(v.levels[0].len(), 0);
        assert_eq!(v.levels[1].len(), 3);
        assert_eq!(vs.last_sequence, 500);
        assert!(vs.next_file_number > 14);
        let live = vs.live_files();
        assert!(live.contains(&11) && live.contains(&12) && live.contains(&14));
        assert!(!live.contains(&10));
    }

    #[test]
    fn builder_rejects_overlap_in_deep_levels() {
        let env = Arc::new(MemEnv::new());
        let mut vs = VersionSet::open(env as Arc<dyn Env>, 7).unwrap();
        let edit = VersionEdit {
            new_files: vec![(1, meta(10, "a", "m")), (1, meta(11, "k", "z"))],
            ..Default::default()
        };
        assert!(vs.log_and_apply(edit).is_err());
    }

    #[test]
    fn files_for_get_order() {
        let mut v = Version::empty(7);
        // Two overlapping L0 files + one L1 file covering the key.
        v.levels[0] = vec![Arc::new(meta(20, "a", "z")), Arc::new(meta(22, "a", "z"))];
        v.levels[1] = vec![Arc::new(meta(5, "a", "h")), Arc::new(meta(6, "i", "z"))];
        let files = v.files_for_get(b"g");
        let numbers: Vec<u64> = files.iter().map(|(_, f)| f.number).collect();
        // L0 newest-first, then the single overlapping L1 file.
        assert_eq!(numbers, vec![22, 20, 5]);
    }

    #[test]
    fn files_for_get_misses_disjoint_ranges() {
        let mut v = Version::empty(7);
        v.levels[1] = vec![Arc::new(meta(5, "a", "c")), Arc::new(meta(6, "x", "z"))];
        assert!(v.files_for_get(b"m").is_empty());
        assert_eq!(v.files_for_get(b"b").len(), 1);
        assert_eq!(v.files_for_get(b"y").len(), 1);
    }

    #[test]
    fn overlapping_files_boundaries_inclusive() {
        let mut v = Version::empty(7);
        v.levels[1] = vec![Arc::new(meta(5, "f", "m"))];
        assert_eq!(v.overlapping_files(1, Some(b"a"), Some(b"f")).len(), 1);
        assert_eq!(v.overlapping_files(1, Some(b"m"), Some(b"z")).len(), 1);
        assert_eq!(v.overlapping_files(1, Some(b"a"), Some(b"e")).len(), 0);
        assert_eq!(v.overlapping_files(1, Some(b"n"), None).len(), 0);
        assert_eq!(v.overlapping_files(1, None, None).len(), 1);
    }

    #[test]
    fn recovery_starts_fresh_manifest_and_reports_obsolete() {
        let env = Arc::new(MemEnv::new());
        {
            let _vs = VersionSet::open(env.clone() as Arc<dyn Env>, 7).unwrap();
        }
        let vs = VersionSet::open(env.clone() as Arc<dyn Env>, 7).unwrap();
        let obsolete = vs.obsolete_manifests().unwrap();
        assert_eq!(obsolete.len(), 1, "old manifest should be reported");
    }

    #[test]
    fn corrupt_current_fails_recovery() {
        let env = Arc::new(MemEnv::new());
        {
            let _ = VersionSet::open(env.clone() as Arc<dyn Env>, 7).unwrap();
        }
        env.write_all(CURRENT, b"NONSENSE").unwrap();
        assert!(VersionSet::open(env as Arc<dyn Env>, 7).is_err());
    }
}
