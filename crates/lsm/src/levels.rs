//! Live per-level amplification accounting.
//!
//! [`LevelAccounting`] is the engine-side, lock-free counterpart of
//! [`obs::LevelTable`]: a fixed table of atomic counters updated at the
//! two places a version edit commits new bytes — memtable flush and
//! compaction install — plus a shape refresh (files, bytes, score,
//! compaction debt) recomputed from the freshly installed version. It
//! hangs off [`crate::db::DbStats`], so any holder of a stats handle can
//! snapshot the table without touching the engine state lock.
//!
//! Byte-flow counters are cumulative since open (recovery replays the
//! manifest without passing through these hooks, so a reopened database
//! starts its amplification clock at zero while the shape columns still
//! describe the recovered tree).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::compaction::level_scores;
use crate::options::Options;
use crate::version::Version;

/// Upper bound on tracked levels. [`Options::num_levels`] defaults to 7;
/// deeper configurations fold their tail levels into the last slot's
/// shape refresh being skipped (scores and flows beyond this are not
/// tracked).
pub const MAX_ACCOUNTED_LEVELS: usize = 16;

/// One level's atomic counters.
#[derive(Debug, Default)]
struct LevelSlot {
    files: AtomicU64,
    bytes: AtomicU64,
    /// Compaction score in milli-units (score 1.25 stored as 1250) so it
    /// fits an atomic without bit-casting floats.
    score_milli: AtomicU64,
    flush_bytes: AtomicU64,
    ingest_bytes: AtomicU64,
    compact_bytes_read: AtomicU64,
    compact_bytes_written: AtomicU64,
    subcompact_bytes_written: AtomicU64,
    compactions: AtomicU64,
}

/// Lock-free per-level accounting table. See the module docs.
#[derive(Debug)]
pub struct LevelAccounting {
    slots: Vec<LevelSlot>,
    /// Levels the shape refresh last observed (== the tree's configured
    /// depth, clamped to [`MAX_ACCOUNTED_LEVELS`]).
    active_levels: AtomicUsize,
    debt_bytes: AtomicU64,
}

impl Default for LevelAccounting {
    fn default() -> Self {
        LevelAccounting {
            slots: (0..MAX_ACCOUNTED_LEVELS).map(|_| LevelSlot::default()).collect(),
            active_levels: AtomicUsize::new(0),
            debt_bytes: AtomicU64::new(0),
        }
    }
}

impl LevelAccounting {
    /// Record a memtable flush that installed `bytes` at L0.
    pub fn record_flush(&self, bytes: u64) {
        self.slots[0].flush_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a committed compaction writing into `out_level`.
    ///
    /// * `ingest_bytes` — input bytes that came from the level above (the
    ///   denominator of the output level's W-amp).
    /// * `read_bytes` — total input bytes (both levels).
    /// * `written_bytes` — output bytes installed at `out_level`.
    /// * `subcompact_bytes` — the subset of `written_bytes` produced by a
    ///   split (parallel subcompaction) job; 0 for single-worker merges.
    pub fn record_compaction(
        &self,
        out_level: usize,
        ingest_bytes: u64,
        read_bytes: u64,
        written_bytes: u64,
        subcompact_bytes: u64,
    ) {
        let Some(slot) = self.slots.get(out_level) else { return };
        slot.ingest_bytes.fetch_add(ingest_bytes, Ordering::Relaxed);
        slot.compact_bytes_read.fetch_add(read_bytes, Ordering::Relaxed);
        slot.compact_bytes_written.fetch_add(written_bytes, Ordering::Relaxed);
        slot.subcompact_bytes_written.fetch_add(subcompact_bytes, Ordering::Relaxed);
        slot.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Recompute the shape columns (files, bytes, score) and compaction
    /// debt from a freshly installed version. Called after every version
    /// transition and once at open to seed the recovered tree.
    pub fn refresh_shape(&self, version: &Version, options: &Options) {
        let scores = level_scores(version, options);
        let n = version.levels.len().min(MAX_ACCOUNTED_LEVELS);
        self.active_levels.store(n, Ordering::Relaxed);
        let mut debt = 0u64;
        for (level, slot) in self.slots.iter().enumerate().take(n) {
            let files = version.levels[level].len() as u64;
            let bytes: u64 = version.levels[level].iter().map(|f| f.file_size).sum();
            slot.files.store(files, Ordering::Relaxed);
            slot.bytes.store(bytes, Ordering::Relaxed);
            let score = scores.get(level).copied().unwrap_or(0.0);
            slot.score_milli.store((score.max(0.0) * 1000.0) as u64, Ordering::Relaxed);
            if level == 0 {
                // L0 debt is everything in it once the trigger is hit:
                // every L0 byte must be rewritten to restore read shape.
                if files >= options.l0_compaction_trigger as u64 {
                    debt += bytes;
                }
            } else if level < n - 1 {
                // Deeper levels owe their overage beyond the byte budget
                // (the last level has no budget: data rests there).
                debt += bytes.saturating_sub(options.max_bytes_for_level(level));
            }
        }
        self.debt_bytes.store(debt, Ordering::Relaxed);
    }

    /// Bytes of compaction work outstanding as of the last shape refresh.
    pub fn compaction_debt_bytes(&self) -> u64 {
        self.debt_bytes.load(Ordering::Relaxed)
    }

    /// Snapshot the table for export. Rows cover every configured level
    /// (the per-tier byte split is left zero; the tiered layer fills it
    /// from residency).
    pub fn snapshot(&self) -> obs::LevelTable {
        let n = self.active_levels.load(Ordering::Relaxed);
        let levels = self
            .slots
            .iter()
            .enumerate()
            .take(n)
            .map(|(level, slot)| obs::LevelStats {
                level,
                files: slot.files.load(Ordering::Relaxed),
                bytes: slot.bytes.load(Ordering::Relaxed),
                score: slot.score_milli.load(Ordering::Relaxed) as f64 / 1000.0,
                flush_bytes: slot.flush_bytes.load(Ordering::Relaxed),
                ingest_bytes: slot.ingest_bytes.load(Ordering::Relaxed),
                compact_bytes_read: slot.compact_bytes_read.load(Ordering::Relaxed),
                compact_bytes_written: slot.compact_bytes_written.load(Ordering::Relaxed),
                subcompact_bytes_written: slot.subcompact_bytes_written.load(Ordering::Relaxed),
                moved_bytes: 0,
                compactions: slot.compactions.load(Ordering::Relaxed),
                local_bytes: 0,
                cloud_bytes: 0,
            })
            .collect();
        obs::LevelTable { levels, compaction_debt_bytes: self.compaction_debt_bytes() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::FileMetaData;
    use std::sync::Arc;

    fn version_with(sizes: &[&[u64]]) -> Version {
        let mut v = Version::empty(Options::default().num_levels);
        let mut number = 1;
        for (level, files) in sizes.iter().enumerate() {
            for &size in *files {
                v.levels[level].push(Arc::new(FileMetaData {
                    number,
                    file_size: size,
                    smallest: format!("k{number:04}a").into_bytes(),
                    largest: format!("k{number:04}z").into_bytes(),
                }));
                number += 1;
            }
        }
        v
    }

    #[test]
    fn flows_accumulate_and_snapshot() {
        let acc = LevelAccounting::default();
        acc.record_flush(100);
        acc.record_flush(50);
        acc.record_compaction(1, 150, 400, 300, 0);
        acc.record_compaction(1, 10, 30, 20, 20);
        let opts = Options::default();
        acc.refresh_shape(&version_with(&[&[10, 10], &[100]]), &opts);
        let table = acc.snapshot();
        assert_eq!(table.levels.len(), Options::default().num_levels);
        let l0 = &table.levels[0];
        assert_eq!(l0.flush_bytes, 150);
        assert_eq!(l0.files, 2);
        assert_eq!(l0.bytes, 20);
        let l1 = &table.levels[1];
        assert_eq!(l1.ingest_bytes, 160);
        assert_eq!(l1.compact_bytes_read, 430);
        assert_eq!(l1.compact_bytes_written, 320);
        assert_eq!(l1.subcompact_bytes_written, 20);
        assert_eq!(l1.compactions, 2);
        assert_eq!(l1.bytes, 100);
    }

    #[test]
    fn debt_counts_l0_at_trigger_and_deep_overage() {
        let acc = LevelAccounting::default();
        let opts = Options::default(); // trigger 4, base 10 MiB
                                       // Below trigger: no L0 debt, L1 within budget: no debt.
        acc.refresh_shape(&version_with(&[&[1 << 20; 3], &[1 << 20]]), &opts);
        assert_eq!(acc.compaction_debt_bytes(), 0);
        // At trigger: all L0 bytes owed.
        acc.refresh_shape(&version_with(&[&[1 << 20; 4], &[1 << 20]]), &opts);
        assert_eq!(acc.compaction_debt_bytes(), 4 << 20);
        // L1 over its 10 MiB budget by 2 MiB.
        acc.refresh_shape(&version_with(&[&[], &[12 << 20], &[1]]), &opts);
        assert_eq!(acc.compaction_debt_bytes(), 2 << 20);
    }

    #[test]
    fn scores_track_pressure() {
        let acc = LevelAccounting::default();
        let opts = Options::default();
        acc.refresh_shape(&version_with(&[&[1, 1], &[5 << 20]]), &opts);
        let table = acc.snapshot();
        // L0: 2 files / trigger 4 = 0.5.
        assert!((table.levels[0].score - 0.5).abs() < 1e-9);
        // L1: 5 MiB / 10 MiB budget = 0.5.
        assert!((table.levels[1].score - 0.5).abs() < 1e-9);
        // The last level is never scored.
        assert_eq!(table.levels.last().unwrap().score, 0.0);
    }
}
