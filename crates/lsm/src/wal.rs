//! Write-ahead log in the LevelDB record format.
//!
//! The log is a sequence of 32 KiB blocks. Each record carries a 7-byte
//! header — masked CRC32C (4), length (2), type (1) — and records that do
//! not fit in the remainder of a block are split into FIRST/MIDDLE/LAST
//! fragments. This framing bounds the blast radius of torn writes: recovery
//! skips to the next block boundary on corruption instead of losing the
//! whole log. The MANIFEST reuses the same format.

use storage::{RandomAccessFile, WritableFile};

use crate::error::{Error, Result};
use crate::util::{crc32c, mask_crc, unmask_crc};

/// Size of one log block.
pub const BLOCK_SIZE: usize = 32 * 1024;
/// Bytes of framing per fragment.
pub const HEADER_SIZE: usize = 7;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum RecordType {
    Full = 1,
    First = 2,
    Middle = 3,
    Last = 4,
}

impl RecordType {
    fn from_u8(v: u8) -> Option<RecordType> {
        match v {
            1 => Some(RecordType::Full),
            2 => Some(RecordType::First),
            3 => Some(RecordType::Middle),
            4 => Some(RecordType::Last),
            _ => None,
        }
    }
}

/// Appends framed records to a [`WritableFile`].
pub struct LogWriter {
    file: Box<dyn WritableFile>,
    block_offset: usize,
}

impl LogWriter {
    /// Start a writer on a fresh file.
    pub fn new(file: Box<dyn WritableFile>) -> Self {
        let block_offset = (file.len() % BLOCK_SIZE as u64) as usize;
        LogWriter { file, block_offset }
    }

    /// Append one record (any size); it will be fragmented across blocks as
    /// needed.
    pub fn add_record(&mut self, data: &[u8]) -> Result<()> {
        let mut left = data;
        let mut begin = true;
        loop {
            let leftover = BLOCK_SIZE - self.block_offset;
            if leftover < HEADER_SIZE {
                // Pad the tail of the block with zeros and start a new one.
                if leftover > 0 {
                    self.file.append(&[0u8; HEADER_SIZE][..leftover])?;
                }
                self.block_offset = 0;
            }
            let avail = BLOCK_SIZE - self.block_offset - HEADER_SIZE;
            let fragment_len = left.len().min(avail);
            let end = fragment_len == left.len();
            let record_type = match (begin, end) {
                (true, true) => RecordType::Full,
                (true, false) => RecordType::First,
                (false, true) => RecordType::Last,
                (false, false) => RecordType::Middle,
            };
            self.emit(record_type, &left[..fragment_len])?;
            left = &left[fragment_len..];
            begin = false;
            if end {
                return Ok(());
            }
        }
    }

    /// Append several records back-to-back without an intervening sync —
    /// the group-commit leader's append pass. Stops at the first failure;
    /// earlier records may already be buffered, which is fine because the
    /// whole group reports that failure and none of it is acknowledged.
    pub fn add_records<'a>(&mut self, records: impl IntoIterator<Item = &'a [u8]>) -> Result<()> {
        for record in records {
            self.add_record(record)?;
        }
        Ok(())
    }

    /// Durably sync all appended records.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync()?;
        Ok(())
    }

    /// Bytes written so far.
    pub fn len(&self) -> u64 {
        self.file.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sync and close the log.
    pub fn finish(mut self) -> Result<u64> {
        let n = self.file.finish()?;
        Ok(n)
    }

    fn emit(&mut self, t: RecordType, data: &[u8]) -> Result<()> {
        debug_assert!(self.block_offset + HEADER_SIZE + data.len() <= BLOCK_SIZE);
        let mut header = [0u8; HEADER_SIZE];
        // CRC covers the type byte and the payload, like LevelDB.
        let mut crc_input = Vec::with_capacity(1 + data.len());
        crc_input.push(t as u8);
        crc_input.extend_from_slice(data);
        let crc = mask_crc(crc32c(&crc_input));
        header[..4].copy_from_slice(&crc.to_le_bytes());
        header[4..6].copy_from_slice(&(data.len() as u16).to_le_bytes());
        header[6] = t as u8;
        self.file.append(&header)?;
        self.file.append(data)?;
        self.block_offset += HEADER_SIZE + data.len();
        Ok(())
    }
}

/// Reads framed records back, tolerating tail corruption.
pub struct LogReader {
    file: std::sync::Arc<dyn RandomAccessFile>,
    offset: u64,
    buffer: Vec<u8>,
    buffer_pos: usize,
    eof: bool,
    /// Count of bytes dropped due to corruption (reported to callers).
    corrupted_bytes: u64,
}

impl LogReader {
    /// Start reading `file` from offset zero.
    pub fn new(file: std::sync::Arc<dyn RandomAccessFile>) -> Self {
        LogReader {
            file,
            offset: 0,
            buffer: Vec::new(),
            buffer_pos: 0,
            eof: false,
            corrupted_bytes: 0,
        }
    }

    /// Bytes skipped because of checksum or framing failures.
    pub fn corrupted_bytes(&self) -> u64 {
        self.corrupted_bytes
    }

    /// Read the next complete record; `Ok(None)` at clean end of log.
    pub fn read_record(&mut self) -> Result<Option<Vec<u8>>> {
        let mut assembled: Option<Vec<u8>> = None;
        loop {
            let fragment = match self.read_fragment()? {
                Some(f) => f,
                None => {
                    if assembled.is_some() {
                        // Log ended mid-record: a torn write at crash time.
                        self.corrupted_bytes += 1;
                    }
                    return Ok(None);
                }
            };
            match fragment.0 {
                RecordType::Full => {
                    if assembled.is_some() {
                        self.corrupted_bytes += 1;
                    }
                    return Ok(Some(fragment.1));
                }
                RecordType::First => {
                    if assembled.is_some() {
                        self.corrupted_bytes += 1;
                    }
                    assembled = Some(fragment.1);
                }
                RecordType::Middle => match assembled.as_mut() {
                    Some(buf) => buf.extend_from_slice(&fragment.1),
                    None => self.corrupted_bytes += fragment.1.len() as u64,
                },
                RecordType::Last => match assembled.take() {
                    Some(mut buf) => {
                        buf.extend_from_slice(&fragment.1);
                        return Ok(Some(buf));
                    }
                    None => self.corrupted_bytes += fragment.1.len() as u64,
                },
            }
        }
    }

    /// Read every remaining record.
    pub fn read_all(&mut self) -> Result<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        while let Some(rec) = self.read_record()? {
            out.push(rec);
        }
        Ok(out)
    }

    fn refill(&mut self) -> Result<bool> {
        if self.eof {
            return Ok(false);
        }
        let mut block = vec![0u8; BLOCK_SIZE];
        let n = self.file.read_at(self.offset, &mut block).map_err(Error::from)?;
        self.offset += n as u64;
        block.truncate(n);
        if n < BLOCK_SIZE {
            self.eof = true;
        }
        if block.is_empty() {
            return Ok(false);
        }
        self.buffer = block;
        self.buffer_pos = 0;
        Ok(true)
    }

    fn read_fragment(&mut self) -> Result<Option<(RecordType, Vec<u8>)>> {
        loop {
            if self.buffer.len() - self.buffer_pos < HEADER_SIZE {
                // Remainder of the block is padding.
                self.buffer_pos = self.buffer.len();
                if !self.refill()? {
                    return Ok(None);
                }
                continue;
            }
            let header = &self.buffer[self.buffer_pos..self.buffer_pos + HEADER_SIZE];
            let expected_crc = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
            let len = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes")) as usize;
            let type_byte = header[6];
            if type_byte == 0 && len == 0 && expected_crc == 0 {
                // Zero padding at the block tail.
                self.buffer_pos = self.buffer.len();
                continue;
            }
            let record_type = RecordType::from_u8(type_byte);
            let start = self.buffer_pos + HEADER_SIZE;
            if record_type.is_none() || start + len > self.buffer.len() {
                // Corrupt header: skip the rest of this block.
                self.corrupted_bytes += (self.buffer.len() - self.buffer_pos) as u64;
                self.buffer_pos = self.buffer.len();
                continue;
            }
            let record_type = record_type.expect("checked above");
            let payload = &self.buffer[start..start + len];
            let mut crc_input = Vec::with_capacity(1 + len);
            crc_input.push(type_byte);
            crc_input.extend_from_slice(payload);
            if unmask_crc(expected_crc) != crc32c(&crc_input) {
                self.corrupted_bytes += (HEADER_SIZE + len) as u64;
                self.buffer_pos = self.buffer.len();
                continue;
            }
            let out = payload.to_vec();
            self.buffer_pos = start + len;
            return Ok(Some((record_type, out)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::{Env, MemEnv};

    fn write_records(records: &[Vec<u8>]) -> (MemEnv, String) {
        let env = MemEnv::new();
        let mut writer = LogWriter::new(env.new_writable("log").unwrap());
        for r in records {
            writer.add_record(r).unwrap();
        }
        writer.finish().unwrap();
        (env, "log".to_string())
    }

    fn read_records(env: &MemEnv, name: &str) -> Vec<Vec<u8>> {
        let mut reader = LogReader::new(env.open_random(name).unwrap());
        reader.read_all().unwrap()
    }

    #[test]
    fn small_records_roundtrip() {
        let records = vec![b"one".to_vec(), b"two".to_vec(), b"".to_vec(), b"three".to_vec()];
        let (env, name) = write_records(&records);
        assert_eq!(read_records(&env, &name), records);
    }

    #[test]
    fn record_spanning_blocks_roundtrips() {
        let records = vec![
            vec![1u8; BLOCK_SIZE / 2],
            vec![2u8; BLOCK_SIZE * 3], // FIRST + MIDDLEs + LAST
            vec![3u8; 17],
        ];
        let (env, name) = write_records(&records);
        let got = read_records(&env, &name);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].len(), BLOCK_SIZE / 2);
        assert_eq!(got[1], records[1]);
        assert_eq!(got[2], records[2]);
    }

    #[test]
    fn record_exactly_filling_block_tail() {
        // Leave exactly HEADER_SIZE bytes at the end of the block: next
        // record gets a zero-length fragment there or pads.
        let first_len = BLOCK_SIZE - 2 * HEADER_SIZE;
        let records = vec![vec![9u8; first_len], b"next".to_vec()];
        let (env, name) = write_records(&records);
        assert_eq!(read_records(&env, &name), records);
    }

    #[test]
    fn corrupted_payload_is_skipped_but_later_blocks_survive() {
        let records = vec![vec![1u8; 100], vec![2u8; 100], vec![3u8; BLOCK_SIZE * 2]];
        let (env, name) = write_records(&records);
        let mut data = env.read_all(&name).unwrap();
        data[HEADER_SIZE + 10] ^= 0xff; // corrupt first record's payload
        env.write_all(&name, &data).unwrap();
        let mut reader = LogReader::new(env.open_random(&name).unwrap());
        let got = reader.read_all().unwrap();
        // First block is skipped entirely (both small records lost), the
        // spanning record beginning in block 2 is lost too (its FIRST
        // fragment lived in block 1)... actually records 1 and 2 fit in
        // block 1 along with record 3's FIRST fragment, so everything in
        // block 1 is dropped and the MIDDLE/LAST fragments are orphaned.
        assert!(got.is_empty());
        assert!(reader.corrupted_bytes() > 0);
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let records = vec![b"keep".to_vec(), vec![7u8; 2000]];
        let (env, name) = write_records(&records);
        let data = env.read_all(&name).unwrap();
        env.write_all(&name, &data[..data.len() - 1000]).unwrap();
        let got = read_records(&env, &name);
        assert_eq!(got, vec![b"keep".to_vec()]);
    }

    #[test]
    fn append_to_existing_log_resumes_block_offset() {
        let env = MemEnv::new();
        {
            let mut w = LogWriter::new(env.new_writable("log").unwrap());
            w.add_record(b"first").unwrap();
            w.finish().unwrap();
        }
        {
            let mut w = LogWriter::new(env.open_appendable("log").unwrap());
            w.add_record(b"second").unwrap();
            w.finish().unwrap();
        }
        assert_eq!(read_records(&env, "log"), vec![b"first".to_vec(), b"second".to_vec()]);
    }

    #[test]
    fn many_records_roundtrip() {
        let records: Vec<Vec<u8>> =
            (0..500).map(|i| format!("record-{i}-{}", "x".repeat(i % 200)).into_bytes()).collect();
        let (env, name) = write_records(&records);
        assert_eq!(read_records(&env, &name), records);
    }

    #[test]
    fn empty_log_reads_empty() {
        let env = MemEnv::new();
        env.write_all("log", b"").unwrap();
        assert!(read_records(&env, "log").is_empty());
    }
}
