//! Skiplist memtable.
//!
//! LevelDB-style concurrent skiplist: one writer at a time (serialized by an
//! internal mutex; the DB write path is single-writer anyway) and any number
//! of lock-free readers. Nodes are immutable once published and are never
//! unlinked until the whole table is dropped, so readers need no epochs or
//! hazard pointers — publication via `Release` stores and traversal via
//! `Acquire` loads is sufficient (Rust Atomics & Locks ch. 3 "Release and
//! Acquire Ordering").

use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::types::{
    extract_user_key, internal_compare, make_internal_key, make_lookup_key, parse_internal_key,
    SequenceNumber, ValueType,
};

const MAX_HEIGHT: usize = 12;
const BRANCHING: u32 = 4;

struct Node {
    /// Full internal key (user key + sequence/type trailer).
    key: Box<[u8]>,
    /// Value bytes; empty for tombstones.
    value: Box<[u8]>,
    /// Tower of next pointers; length == node height.
    next: Vec<AtomicPtr<Node>>,
}

impl Node {
    fn alloc(key: Vec<u8>, value: Vec<u8>, height: usize) -> *mut Node {
        let mut next = Vec::with_capacity(height);
        for _ in 0..height {
            next.push(AtomicPtr::new(ptr::null_mut()));
        }
        Box::into_raw(Box::new(Node {
            key: key.into_boxed_slice(),
            value: value.into_boxed_slice(),
            next,
        }))
    }

    fn next(&self, level: usize) -> *mut Node {
        self.next[level].load(Ordering::Acquire)
    }

    fn set_next(&self, level: usize, node: *mut Node) {
        self.next[level].store(node, Ordering::Release);
    }
}

/// Outcome of a point lookup against one memtable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupResult {
    /// Key present with this value.
    Value(Vec<u8>),
    /// Key deleted (tombstone shadows older versions).
    Deleted,
    /// This memtable holds no visible version of the key.
    NotFound,
}

/// In-memory sorted run of recent writes.
pub struct MemTable {
    head: *mut Node,
    max_height: AtomicUsize,
    writer: Mutex<()>,
    rnd: AtomicU64,
    approximate_bytes: AtomicUsize,
    entries: AtomicUsize,
}

// SAFETY: all mutation is serialized by `writer`; readers only follow
// pointers published with Release stores and never observe freed nodes
// (nodes live until Drop).
unsafe impl Send for MemTable {}
unsafe impl Sync for MemTable {}

impl MemTable {
    /// Empty memtable.
    pub fn new() -> Self {
        MemTable {
            head: Node::alloc(Vec::new(), Vec::new(), MAX_HEIGHT),
            max_height: AtomicUsize::new(1),
            writer: Mutex::new(()),
            rnd: AtomicU64::new(0x9e3779b97f4a7c15),
            approximate_bytes: AtomicUsize::new(0),
            entries: AtomicUsize::new(0),
        }
    }

    /// Insert one entry. Keys are (user_key, seq, type) triples, so inserts
    /// never overwrite — newer versions shadow older ones at read time.
    pub fn insert(&self, seq: SequenceNumber, t: ValueType, user_key: &[u8], value: &[u8]) {
        let _guard = self.writer.lock();
        let internal_key = make_internal_key(user_key, seq, t);
        let height = self.random_height();
        let node = Node::alloc(internal_key, value.to_vec(), height);

        let mut prev = [self.head; MAX_HEIGHT];
        self.find_greater_or_equal(unsafe { &(*node).key }, Some(&mut prev));

        if height > self.max_height.load(Ordering::Relaxed) {
            // Levels above the old max hang off head; readers that see the
            // old max simply ignore the taller levels.
            self.max_height.store(height, Ordering::Relaxed);
        }
        // SAFETY: nodes in `prev` are reachable and alive; we are the only
        // writer. Link bottom-up so a reader that sees the node at level i
        // can always descend.
        unsafe {
            for (level, &p) in prev.iter().enumerate().take(height) {
                (*node).set_next(level, (*p).next(level));
                (*p).set_next(level, node);
            }
        }
        self.approximate_bytes
            .fetch_add(user_key.len() + value.len() + 8 + 16 * height, Ordering::Relaxed);
        self.entries.fetch_add(1, Ordering::Relaxed);
    }

    /// Apply every op of a sequence-stamped batch: op `i` inserts at
    /// `batch.sequence() + i`. This is the single definition of "batch →
    /// memtable" used by the live write path and by WAL/eWAL replay, so
    /// recovery reproduces exactly what the foreground path built.
    pub fn apply_batch(&self, batch: &crate::batch::WriteBatch) {
        for (seq, op) in (batch.sequence()..).zip(batch.iter()) {
            match op {
                crate::batch::BatchOp::Put(key, value) => {
                    self.insert(seq, ValueType::Value, key, value)
                }
                crate::batch::BatchOp::Delete(key) => {
                    self.insert(seq, ValueType::Deletion, key, &[])
                }
            }
        }
    }

    /// Look up the newest version of `user_key` visible at `snapshot`.
    pub fn get(&self, user_key: &[u8], snapshot: SequenceNumber) -> LookupResult {
        let lookup = make_lookup_key(user_key, snapshot);
        let node = self.find_greater_or_equal(&lookup, None);
        if node.is_null() {
            return LookupResult::NotFound;
        }
        // SAFETY: non-null nodes remain alive until the memtable drops.
        let node = unsafe { &*node };
        let parsed = match parse_internal_key(&node.key) {
            Some(p) => p,
            None => return LookupResult::NotFound,
        };
        if parsed.user_key != user_key {
            return LookupResult::NotFound;
        }
        match parsed.value_type {
            ValueType::Value => LookupResult::Value(node.value.to_vec()),
            ValueType::Deletion => LookupResult::Deleted,
        }
    }

    /// Approximate memory footprint in bytes (drives flush decisions).
    pub fn approximate_bytes(&self) -> usize {
        self.approximate_bytes.load(Ordering::Relaxed)
    }

    /// Number of entries inserted.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// True when no entries have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterator over all entries in internal-key order. The iterator keeps
    /// the memtable alive, so it can be handed to merging iterators that
    /// outlive the caller's borrow.
    pub fn iter(self: &Arc<Self>) -> MemTableIter {
        MemTableIter { table: Arc::clone(self), node: ptr::null_mut() }
    }

    /// Find the first node whose key is >= `key`; optionally record the
    /// predecessor at every level into `prev`.
    fn find_greater_or_equal(
        &self,
        key: &[u8],
        mut prev: Option<&mut [*mut Node; MAX_HEIGHT]>,
    ) -> *mut Node {
        let mut node = self.head;
        let mut level = self.max_height.load(Ordering::Relaxed) - 1;
        loop {
            // SAFETY: `node` is head or a published node; both outlive us.
            let next = unsafe { (*node).next(level) };
            let descend = if next.is_null() {
                true
            } else {
                // SAFETY: as above.
                let next_key = unsafe { &(*next).key };
                internal_compare(next_key, key) != std::cmp::Ordering::Less
            };
            if descend {
                if let Some(prev) = prev.as_deref_mut() {
                    prev[level] = node;
                }
                if level == 0 {
                    return next;
                }
                level -= 1;
            } else {
                node = next;
            }
        }
    }

    fn random_height(&self) -> usize {
        // xorshift64*; cheap and adequate for skiplist level distribution.
        let mut x = self.rnd.load(Ordering::Relaxed);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rnd.store(x, Ordering::Relaxed);
        let mut height = 1;
        let mut bits = x.wrapping_mul(0x2545F4914F6CDD1D);
        while height < MAX_HEIGHT && (bits as u32).is_multiple_of(BRANCHING) {
            height += 1;
            bits >>= 2;
        }
        height
    }
}

impl Default for MemTable {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for MemTable {
    fn drop(&mut self) {
        // Exclusive access: walk level 0 and free every node.
        let mut node = self.head;
        while !node.is_null() {
            // SAFETY: we own all nodes; each was Box::into_raw'd once.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next.first().map_or(ptr::null_mut(), |n| n.load(Ordering::Relaxed));
        }
    }
}

/// Forward iterator over memtable entries (internal keys). Holds an `Arc`
/// to the table, so the nodes it points at cannot be freed underneath it.
pub struct MemTableIter {
    table: Arc<MemTable>,
    node: *mut Node,
}

// SAFETY: the raw node pointer targets memory owned by `table`, which the
// iterator keeps alive; nodes are immutable once published.
unsafe impl Send for MemTableIter {}

impl MemTableIter {
    /// Position at the first entry.
    pub fn seek_to_first(&mut self) {
        // SAFETY: head outlives the iterator.
        self.node = unsafe { (*self.table.head).next(0) };
    }

    /// Position at the first entry with internal key >= `key`.
    pub fn seek(&mut self, key: &[u8]) {
        self.node = self.table.find_greater_or_equal(key, None);
    }

    /// Whether the iterator points at an entry.
    pub fn valid(&self) -> bool {
        !self.node.is_null()
    }

    /// Advance to the next entry.
    pub fn next(&mut self) {
        debug_assert!(self.valid());
        // SAFETY: valid() checked by caller; nodes outlive the iterator.
        self.node = unsafe { (*self.node).next(0) };
    }

    /// Internal key at the current position.
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid());
        // SAFETY: node is alive while the Arc is held.
        unsafe { &(*self.node).key }
    }

    /// Value at the current position.
    pub fn value(&self) -> &[u8] {
        debug_assert!(self.valid());
        // SAFETY: as for key().
        unsafe { &(*self.node).value }
    }

    /// User key at the current position.
    pub fn user_key(&self) -> &[u8] {
        extract_user_key(self.key())
    }
}

impl crate::iterator::InternalIterator for MemTableIter {
    fn seek_to_first(&mut self) -> crate::error::Result<()> {
        MemTableIter::seek_to_first(self);
        Ok(())
    }

    fn seek(&mut self, target: &[u8]) -> crate::error::Result<()> {
        MemTableIter::seek(self, target);
        Ok(())
    }

    fn next(&mut self) -> crate::error::Result<()> {
        MemTableIter::next(self);
        Ok(())
    }

    fn valid(&self) -> bool {
        MemTableIter::valid(self)
    }

    fn key(&self) -> &[u8] {
        MemTableIter::key(self)
    }

    fn value(&self) -> &[u8] {
        MemTableIter::value(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table() {
        let m = Arc::new(MemTable::new());
        assert!(m.is_empty());
        assert_eq!(m.get(b"k", u64::MAX >> 8), LookupResult::NotFound);
        let mut it = m.iter();
        it.seek_to_first();
        assert!(!it.valid());
    }

    #[test]
    fn insert_and_get() {
        let m = MemTable::new();
        m.insert(1, ValueType::Value, b"apple", b"red");
        m.insert(2, ValueType::Value, b"banana", b"yellow");
        assert_eq!(m.get(b"apple", 10), LookupResult::Value(b"red".to_vec()));
        assert_eq!(m.get(b"banana", 10), LookupResult::Value(b"yellow".to_vec()));
        assert_eq!(m.get(b"cherry", 10), LookupResult::NotFound);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn newer_version_shadows_older() {
        let m = MemTable::new();
        m.insert(1, ValueType::Value, b"k", b"v1");
        m.insert(5, ValueType::Value, b"k", b"v2");
        assert_eq!(m.get(b"k", 100), LookupResult::Value(b"v2".to_vec()));
    }

    #[test]
    fn snapshot_reads_see_old_versions() {
        let m = MemTable::new();
        m.insert(1, ValueType::Value, b"k", b"v1");
        m.insert(5, ValueType::Value, b"k", b"v2");
        assert_eq!(m.get(b"k", 1), LookupResult::Value(b"v1".to_vec()));
        assert_eq!(m.get(b"k", 4), LookupResult::Value(b"v1".to_vec()));
        assert_eq!(m.get(b"k", 5), LookupResult::Value(b"v2".to_vec()));
    }

    #[test]
    fn tombstone_reports_deleted() {
        let m = MemTable::new();
        m.insert(1, ValueType::Value, b"k", b"v");
        m.insert(2, ValueType::Deletion, b"k", b"");
        assert_eq!(m.get(b"k", 10), LookupResult::Deleted);
        assert_eq!(m.get(b"k", 1), LookupResult::Value(b"v".to_vec()));
    }

    #[test]
    fn iteration_is_sorted_by_user_key_then_seq_desc() {
        let m = Arc::new(MemTable::new());
        m.insert(3, ValueType::Value, b"b", b"3");
        m.insert(1, ValueType::Value, b"a", b"1");
        m.insert(2, ValueType::Value, b"b", b"2");
        let mut it = m.iter();
        it.seek_to_first();
        let mut seen = Vec::new();
        while it.valid() {
            let p = parse_internal_key(it.key()).unwrap();
            seen.push((p.user_key.to_vec(), p.sequence));
            it.next();
        }
        assert_eq!(seen, vec![(b"a".to_vec(), 1), (b"b".to_vec(), 3), (b"b".to_vec(), 2)]);
    }

    #[test]
    fn seek_positions_at_lower_bound() {
        let m = Arc::new(MemTable::new());
        for (i, k) in [b"aa", b"cc", b"ee"].iter().enumerate() {
            m.insert(i as u64 + 1, ValueType::Value, *k, b"v");
        }
        let mut it = m.iter();
        it.seek(&make_lookup_key(b"bb", u64::MAX >> 9));
        assert!(it.valid());
        assert_eq!(it.user_key(), b"cc");
        it.seek(&make_lookup_key(b"zz", u64::MAX >> 9));
        assert!(!it.valid());
    }

    #[test]
    fn approximate_bytes_grows() {
        let m = MemTable::new();
        let before = m.approximate_bytes();
        m.insert(1, ValueType::Value, b"key", &[0u8; 100]);
        assert!(m.approximate_bytes() >= before + 100);
    }

    #[test]
    fn many_keys_sorted() {
        let m = Arc::new(MemTable::new());
        for i in (0..1000).rev() {
            let key = format!("key{i:05}");
            m.insert(1000 - i, ValueType::Value, key.as_bytes(), b"v");
        }
        let mut it = m.iter();
        it.seek_to_first();
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0;
        while it.valid() {
            let uk = it.user_key().to_vec();
            if let Some(p) = &prev {
                assert!(*p < uk);
            }
            prev = Some(uk);
            count += 1;
            it.next();
        }
        assert_eq!(count, 1000);
    }

    #[test]
    fn concurrent_readers_during_writes() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let m = Arc::new(MemTable::new());
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                let mut hits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for i in (0..512).step_by(7) {
                        let key = format!("key{i:05}");
                        if let LookupResult::Value(v) = m.get(key.as_bytes(), u64::MAX >> 9) {
                            assert_eq!(v, format!("val{i}").into_bytes());
                            hits += 1;
                        }
                    }
                }
                hits
            }));
        }
        for i in 0..512 {
            let key = format!("key{i:05}");
            let val = format!("val{i}");
            m.insert(i + 1, ValueType::Value, key.as_bytes(), val.as_bytes());
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        // After all writes, every key must be visible.
        for i in 0..512 {
            let key = format!("key{i:05}");
            assert!(matches!(m.get(key.as_bytes(), u64::MAX >> 9), LookupResult::Value(_)));
        }
    }
}
