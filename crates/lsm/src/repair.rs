//! Disaster recovery: rebuild the database metadata from surviving table
//! files.
//!
//! When the MANIFEST or CURRENT file is lost or corrupt, the data in the
//! SSTables (and the WAL) is still intact — only the level assignment is
//! gone. [`repair`] scans every local `.sst` file, validates it, and
//! writes a fresh MANIFEST placing every recovered table at L0. That is
//! always safe: L0 files may overlap, and the engine resolves versions by
//! sequence number; the next compactions rebuild the level structure.
//!
//! WAL files are left in place — the subsequent [`crate::Db::open`]
//! replays them on top of the recovered tables (the rebuilt manifest's
//! log floor is zero).

use std::sync::Arc;

use storage::Env;

use crate::error::Result;
use crate::options::Options;
use crate::sstable::reader::validate_table;
use crate::sstable::Table;
use crate::types::parse_internal_key;
use crate::version::{manifest_name, sst_name, FileMetaData, VersionEdit, CURRENT};
use crate::wal::LogWriter;

/// Outcome of a repair pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// Tables recovered into the new manifest.
    pub tables_recovered: usize,
    /// Tables dropped because they failed validation.
    pub tables_dropped: usize,
    /// Total entries across recovered tables.
    pub entries: u64,
    /// Highest sequence number observed in any recovered table.
    pub max_sequence: u64,
}

/// Scan `env` for table files and rebuild CURRENT/MANIFEST from scratch.
///
/// Destructive only to the old metadata: data files are never modified.
/// Returns the report; open the database normally afterwards.
pub fn repair(env: &Arc<dyn Env>, options: &Options) -> Result<RepairReport> {
    let mut report =
        RepairReport { tables_recovered: 0, tables_dropped: 0, entries: 0, max_sequence: 0 };
    let mut files: Vec<FileMetaData> = Vec::new();
    let mut max_number = 1u64;

    for name in env.list("")? {
        let Some(number) = name.strip_suffix(".sst").and_then(|s| s.parse::<u64>().ok()) else {
            continue;
        };
        max_number = max_number.max(number);
        match inspect_table(env, number, options) {
            Ok((meta, entries, max_seq)) => {
                report.tables_recovered += 1;
                report.entries += entries;
                report.max_sequence = report.max_sequence.max(max_seq);
                files.push(meta);
            }
            Err(_) => {
                // Data we cannot trust is worse than data we do not have;
                // leave the file on disk for manual forensics but exclude
                // it from the manifest.
                report.tables_dropped += 1;
            }
        }
    }

    // Account for WAL numbers so the reopened database does not recycle
    // them.
    for name in env.list("wal/")? {
        if let Some(number) = name
            .strip_prefix("wal/")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            max_number = max_number.max(number);
        }
    }

    // Write a fresh single-snapshot manifest.
    let manifest_number = max_number + 1;
    let name = manifest_name(manifest_number);
    let mut edit = VersionEdit {
        log_number: Some(0),
        next_file_number: Some(manifest_number + 1),
        last_sequence: Some(report.max_sequence),
        ..VersionEdit::default()
    };
    for meta in files {
        edit.new_files.push((0, meta));
    }
    let mut writer = LogWriter::new(env.new_writable(&name)?);
    writer.add_record(&edit.encode())?;
    writer.finish()?;
    env.write_all(CURRENT, name.as_bytes())?;

    // Old manifests are now dead weight.
    for stale in env.list("MANIFEST-")? {
        if stale != name {
            let _ = env.delete(&stale);
        }
    }
    Ok(report)
}

/// Open and fully validate one table, returning its metadata, entry count,
/// and highest sequence.
fn inspect_table(
    env: &Arc<dyn Env>,
    number: u64,
    options: &Options,
) -> Result<(FileMetaData, u64, u64)> {
    let file = env.open_random(&sst_name(number))?;
    let file_size = file.len();
    let table = Arc::new(Table::open(file, number, options.clone(), None)?);
    let entries = validate_table(&table)?;
    if entries == 0 {
        return Err(crate::error::Error::corruption("empty table"));
    }
    // Walk again for bounds and max sequence (validate_table checked
    // ordering, so first/last suffice for bounds; sequence needs the walk).
    let mut iter = table.iter();
    use crate::iterator::InternalIterator;
    iter.seek_to_first()?;
    let smallest = iter.key().to_vec();
    let mut largest = iter.key().to_vec();
    let mut max_seq = 0u64;
    while iter.valid() {
        if let Some(parsed) = parse_internal_key(iter.key()) {
            max_seq = max_seq.max(parsed.sequence);
        }
        largest.clear();
        largest.extend_from_slice(iter.key());
        iter.next()?;
    }
    Ok((FileMetaData { number, file_size, smallest, largest }, entries, max_seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Db, Options};
    use storage::MemEnv;

    fn key(i: usize) -> Vec<u8> {
        format!("rep{i:05}").into_bytes()
    }

    fn build_db(env: &Arc<MemEnv>, n: usize) {
        let db = Db::open(env.clone() as Arc<dyn Env>, Options::small_for_tests()).unwrap();
        for i in 0..n {
            db.put(&key(i), format!("val-{i}").as_bytes()).unwrap();
        }
        db.flush().unwrap();
        for i in 0..n / 4 {
            db.delete(&key(i)).unwrap();
        }
        db.flush().unwrap();
        db.close().unwrap();
    }

    #[test]
    fn repair_after_current_is_destroyed() {
        let env = Arc::new(MemEnv::new());
        build_db(&env, 400);
        env.write_all(CURRENT, b"MANIFEST-GARBAGE").unwrap();
        let dyn_env = env.clone() as Arc<dyn Env>;
        assert!(Db::open(dyn_env.clone(), Options::small_for_tests()).is_err());

        let report = repair(&dyn_env, &Options::small_for_tests()).unwrap();
        assert!(report.tables_recovered >= 2);
        assert_eq!(report.tables_dropped, 0);
        assert!(report.entries >= 400);

        let db = Db::open(dyn_env, Options::small_for_tests()).unwrap();
        for i in 0..400 {
            let got = db.get(&key(i)).unwrap();
            if i < 100 {
                assert_eq!(got, None, "deleted key {i} resurrected");
            } else {
                assert_eq!(got, Some(format!("val-{i}").into_bytes()), "key {i}");
            }
        }
        db.close().unwrap();
    }

    #[test]
    fn repair_after_manifest_deleted() {
        let env = Arc::new(MemEnv::new());
        build_db(&env, 200);
        for name in env.list("MANIFEST-").unwrap() {
            env.delete(&name).unwrap();
        }
        env.delete(CURRENT).unwrap();
        let dyn_env = env.clone() as Arc<dyn Env>;
        let report = repair(&dyn_env, &Options::small_for_tests()).unwrap();
        assert!(report.tables_recovered >= 1);
        let db = Db::open(dyn_env, Options::small_for_tests()).unwrap();
        assert_eq!(db.get(&key(150)).unwrap(), Some(b"val-150".to_vec()));
        db.close().unwrap();
    }

    #[test]
    fn repair_drops_corrupt_tables_keeps_good_ones() {
        let env = Arc::new(MemEnv::new());
        build_db(&env, 300);
        // Corrupt one table file wholesale.
        let ssts: Vec<String> =
            env.list("").unwrap().into_iter().filter(|n| n.ends_with(".sst")).collect();
        assert!(ssts.len() >= 2, "need multiple tables");
        // Corrupt the newest table (the tombstone run from build_db's
        // delete pass); the base data table must survive repair.
        env.write_all(ssts.last().unwrap(), b"this is no longer a table").unwrap();
        let dyn_env = env.clone() as Arc<dyn Env>;
        let report = repair(&dyn_env, &Options::small_for_tests()).unwrap();
        assert_eq!(report.tables_dropped, 1);
        assert_eq!(report.tables_recovered, ssts.len() - 1);
        let db = Db::open(dyn_env, Options::small_for_tests()).unwrap();
        // Untouched keys read fine; keys whose tombstones lived in the
        // dropped table resurrect — repair recovers what survives.
        assert_eq!(db.get(&key(200)).unwrap(), Some(b"val-200".to_vec()));
        let mut it = db.iter().unwrap();
        it.seek_to_first().unwrap();
        assert!(!it.collect_forward(usize::MAX).unwrap().is_empty());
        db.close().unwrap();
    }

    #[test]
    fn repair_preserves_wal_replay() {
        let env = Arc::new(MemEnv::new());
        {
            let db = Db::open(env.clone() as Arc<dyn Env>, Options::small_for_tests()).unwrap();
            for i in 0..50 {
                db.put(&key(i), b"flushed").unwrap();
            }
            db.flush().unwrap();
            for i in 50..80 {
                db.put(&key(i), b"only-in-wal").unwrap();
            }
            // Crash without flushing the tail.
        }
        env.delete(CURRENT).unwrap();
        let dyn_env = env.clone() as Arc<dyn Env>;
        repair(&dyn_env, &Options::small_for_tests()).unwrap();
        let db = Db::open(dyn_env, Options::small_for_tests()).unwrap();
        assert_eq!(db.get(&key(10)).unwrap(), Some(b"flushed".to_vec()));
        assert_eq!(db.get(&key(60)).unwrap(), Some(b"only-in-wal".to_vec()));
        db.close().unwrap();
    }

    #[test]
    fn repair_of_empty_directory() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let report = repair(&env, &Options::small_for_tests()).unwrap();
        assert_eq!(report.tables_recovered, 0);
        let db = Db::open(env, Options::small_for_tests()).unwrap();
        assert_eq!(db.get(b"anything").unwrap(), None);
        db.close().unwrap();
    }
}
