//! Block compression: a from-scratch byte-oriented LZ77 codec in the LZ4
//! family, tuned for SSTable blocks (a few KiB of key/value data with
//! heavy shared-prefix redundancy).
//!
//! Format:
//!
//! ```text
//! varint(decompressed_len) followed by tokens:
//!   literal run : varint(run_len << 1)      then run_len raw bytes
//!   match       : varint(len-4 << 1 | 1)    then varint(distance)
//! ```
//!
//! Matches are found with a 4-byte rolling hash table and greedy extension
//! — LZ4's strategy. Compression never fails; [`compress`] returns `None`
//! when the input does not shrink by at least 1/16, letting callers store
//! such blocks raw.

use crate::error::{Error, Result};
use crate::util::{get_varint64, put_varint64};

const MIN_MATCH: usize = 4;
const HASH_BITS: u32 = 13;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// Upper bound on match distance (window size).
const MAX_DISTANCE: usize = 64 * 1024;

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes(data[..4].try_into().expect("4 bytes"));
    (v.wrapping_mul(0x9E3779B1) >> (32 - HASH_BITS)) as usize
}

/// Compress `input`; returns `None` when compression is not worthwhile
/// (output would exceed 15/16 of the input).
pub fn compress(input: &[u8]) -> Option<Vec<u8>> {
    if input.len() < 16 {
        return None;
    }
    let budget = input.len() - input.len() / 16;
    let mut out = Vec::with_capacity(input.len() / 2);
    put_varint64(&mut out, input.len() as u64);

    let mut table = [0usize; HASH_SIZE]; // position + 1; 0 = empty
    let mut pos = 0usize;
    let mut literal_start = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        let run = to - from;
        if run > 0 {
            put_varint64(out, (run as u64) << 1);
            out.extend_from_slice(&input[from..to]);
        }
    };

    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        let candidate = table[h];
        table[h] = pos + 1;
        let mut matched = 0usize;
        let mut distance = 0usize;
        if candidate != 0 {
            let cand = candidate - 1;
            distance = pos - cand;
            if distance > 0
                && distance <= MAX_DISTANCE
                && input[cand..cand + MIN_MATCH] == input[pos..pos + MIN_MATCH]
            {
                matched = MIN_MATCH;
                while pos + matched < input.len() && input[cand + matched] == input[pos + matched] {
                    matched += 1;
                }
            }
        }
        if matched >= MIN_MATCH {
            flush_literals(&mut out, literal_start, pos, input);
            put_varint64(&mut out, (((matched - MIN_MATCH) as u64) << 1) | 1);
            put_varint64(&mut out, distance as u64);
            // Index a few positions inside the match so later matches can
            // still be found without paying full per-byte hashing cost.
            let end = pos + matched;
            let mut p = pos + 1;
            while p + MIN_MATCH <= input.len() && p < end {
                table[hash4(&input[p..])] = p + 1;
                p += 2;
            }
            pos = end;
            literal_start = pos;
        } else {
            pos += 1;
        }
        if out.len() + (pos - literal_start) >= budget {
            return None;
        }
    }
    flush_literals(&mut out, literal_start, input.len(), input);
    if out.len() >= budget {
        None
    } else {
        Some(out)
    }
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>> {
    let bad = || Error::corruption("malformed compressed block");
    let (expected_len, mut pos) = get_varint64(input).ok_or_else(bad)?;
    let expected_len = expected_len as usize;
    if expected_len > 256 << 20 {
        return Err(Error::corruption("compressed block claims absurd size"));
    }
    let mut out = Vec::with_capacity(expected_len);
    while pos < input.len() {
        let (token, n) = get_varint64(&input[pos..]).ok_or_else(bad)?;
        pos += n;
        if token & 1 == 0 {
            // Literal run.
            let run = (token >> 1) as usize;
            if pos + run > input.len() || out.len() + run > expected_len {
                return Err(bad());
            }
            out.extend_from_slice(&input[pos..pos + run]);
            pos += run;
        } else {
            // Match.
            let len = (token >> 1) as usize + MIN_MATCH;
            let (distance, n) = get_varint64(&input[pos..]).ok_or_else(bad)?;
            pos += n;
            let distance = distance as usize;
            if distance == 0 || distance > out.len() || out.len() + len > expected_len {
                return Err(bad());
            }
            // Byte-at-a-time copy: matches may overlap themselves (RLE).
            let start = out.len() - distance;
            for i in 0..len {
                let b = out[start + i];
                out.push(b);
            }
        }
    }
    if out.len() != expected_len {
        return Err(bad());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Option<usize> {
        let compressed = compress(data)?;
        assert_eq!(decompress(&compressed).unwrap(), data);
        Some(compressed.len())
    }

    #[test]
    fn compresses_repetitive_data_well() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(100);
        let size = roundtrip(&data).expect("compressible");
        assert!(size < data.len() / 4, "only got {size} of {}", data.len());
    }

    #[test]
    fn compresses_block_like_data() {
        // Simulate a prefix-compressed block: many similar keys + values.
        let mut data = Vec::new();
        for i in 0..200 {
            data.extend_from_slice(format!("user{i:08}").as_bytes());
            data.extend_from_slice(b"{\"plan\":\"pro\",\"quota\":100}");
        }
        let size = roundtrip(&data).expect("compressible");
        assert!(size < data.len() / 2);
    }

    #[test]
    fn incompressible_data_is_refused() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let data: Vec<u8> = (0..4096).map(|_| rng.gen()).collect();
        assert!(compress(&data).is_none(), "random data must not 'compress'");
    }

    #[test]
    fn tiny_inputs_are_refused() {
        assert!(compress(b"").is_none());
        assert!(compress(b"short").is_none());
    }

    #[test]
    fn rle_style_overlapping_matches() {
        let data = vec![7u8; 10_000];
        let size = roundtrip(&data).expect("RLE compressible");
        assert!(size < 64, "run-length data should collapse, got {size}");
    }

    #[test]
    fn alternating_patterns() {
        let mut data = Vec::new();
        for i in 0..3000u32 {
            data.extend_from_slice(if i % 2 == 0 { b"abcdefgh" } else { b"12345678" });
        }
        roundtrip(&data).expect("compressible");
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(&[0xff; 32]).is_err());
        // Valid header, truncated body.
        let data = b"hello world hello world hello world ".repeat(10);
        let mut c = compress(&data).unwrap();
        c.truncate(c.len() - 3);
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn decompress_rejects_bad_distance() {
        let mut evil = Vec::new();
        put_varint64(&mut evil, 100); // claims 100 bytes
        put_varint64(&mut evil, 1); // match token, len 4
        put_varint64(&mut evil, 5); // distance 5 with empty output
        assert!(decompress(&evil).is_err());
    }

    #[test]
    fn decompress_rejects_length_mismatch() {
        let mut evil = Vec::new();
        put_varint64(&mut evil, 100); // claims 100
        put_varint64(&mut evil, 3 << 1); // 3 literals only
        evil.extend_from_slice(b"abc");
        assert!(decompress(&evil).is_err());
    }

    #[test]
    fn exact_content_boundaries() {
        // Data engineered so the final token ends exactly at the boundary.
        let mut data = b"x".repeat(64);
        data.extend_from_slice(b"unique-tail-bytes!");
        roundtrip(&data).expect("compressible");
    }
}
