//! Internal key encoding and ordering.
//!
//! Every entry the engine stores is keyed by an *internal key*:
//!
//! ```text
//! user_key | 8-byte trailer: (sequence << 8) | value_type
//! ```
//!
//! Internal keys sort by user key ascending, then sequence descending, then
//! type descending — so the newest visible version of a user key is the
//! first entry at-or-after its lookup key.

use std::cmp::Ordering;

/// Monotonically increasing global write sequence number (56 usable bits).
pub type SequenceNumber = u64;

/// Largest representable sequence number.
pub const MAX_SEQUENCE: SequenceNumber = (1 << 56) - 1;

/// Kind of a stored entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ValueType {
    /// Tombstone: the key was deleted at this sequence.
    Deletion = 0,
    /// Ordinary value.
    Value = 1,
}

impl ValueType {
    /// Decode from the low trailer byte.
    pub fn from_u8(v: u8) -> Option<ValueType> {
        match v {
            0 => Some(ValueType::Deletion),
            1 => Some(ValueType::Value),
            _ => None,
        }
    }
}

/// Type used when constructing lookup keys: sorts before all real types at
/// the same sequence, so a seek finds entries with seq <= snapshot.
pub const TYPE_FOR_SEEK: ValueType = ValueType::Value;

/// Pack a sequence number and type into the 8-byte trailer.
pub fn pack_trailer(seq: SequenceNumber, t: ValueType) -> u64 {
    debug_assert!(seq <= MAX_SEQUENCE);
    (seq << 8) | t as u64
}

/// Build an internal key from parts.
pub fn make_internal_key(user_key: &[u8], seq: SequenceNumber, t: ValueType) -> Vec<u8> {
    let mut out = Vec::with_capacity(user_key.len() + 8);
    out.extend_from_slice(user_key);
    out.extend_from_slice(&pack_trailer(seq, t).to_le_bytes());
    out
}

/// View of a decoded internal key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedInternalKey<'a> {
    /// The application key.
    pub user_key: &'a [u8],
    /// Write sequence of this entry.
    pub sequence: SequenceNumber,
    /// Entry kind.
    pub value_type: ValueType,
}

/// Split an internal key into its parts; `None` when malformed.
pub fn parse_internal_key(key: &[u8]) -> Option<ParsedInternalKey<'_>> {
    if key.len() < 8 {
        return None;
    }
    let (user_key, trailer) = key.split_at(key.len() - 8);
    let packed = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    let value_type = ValueType::from_u8((packed & 0xff) as u8)?;
    Some(ParsedInternalKey { user_key, sequence: packed >> 8, value_type })
}

/// The user-key prefix of an internal key.
pub fn extract_user_key(key: &[u8]) -> &[u8] {
    debug_assert!(key.len() >= 8);
    &key[..key.len() - 8]
}

/// Total order over internal keys: user key ascending, then trailer
/// (sequence, type) descending so newer entries come first.
pub fn internal_compare(a: &[u8], b: &[u8]) -> Ordering {
    let ua = extract_user_key(a);
    let ub = extract_user_key(b);
    match ua.cmp(ub) {
        Ordering::Equal => {
            let ta = u64::from_le_bytes(a[a.len() - 8..].try_into().expect("8 bytes"));
            let tb = u64::from_le_bytes(b[b.len() - 8..].try_into().expect("8 bytes"));
            tb.cmp(&ta)
        }
        other => other,
    }
}

/// Lookup key for reading `user_key` as of snapshot `seq`: the internal key
/// that sorts at-or-before every entry of that user key visible at `seq`.
pub fn make_lookup_key(user_key: &[u8], seq: SequenceNumber) -> Vec<u8> {
    make_internal_key(user_key, seq, TYPE_FOR_SEEK)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailer_roundtrip() {
        let key = make_internal_key(b"user", 42, ValueType::Value);
        let parsed = parse_internal_key(&key).unwrap();
        assert_eq!(parsed.user_key, b"user");
        assert_eq!(parsed.sequence, 42);
        assert_eq!(parsed.value_type, ValueType::Value);
    }

    #[test]
    fn tombstone_roundtrip() {
        let key = make_internal_key(b"k", MAX_SEQUENCE, ValueType::Deletion);
        let parsed = parse_internal_key(&key).unwrap();
        assert_eq!(parsed.sequence, MAX_SEQUENCE);
        assert_eq!(parsed.value_type, ValueType::Deletion);
    }

    #[test]
    fn malformed_keys_rejected() {
        assert!(parse_internal_key(b"short").is_none());
        let mut key = make_internal_key(b"k", 1, ValueType::Value);
        let n = key.len();
        key[n - 8] = 99; // invalid type byte
        assert!(parse_internal_key(&key).is_none());
    }

    #[test]
    fn order_by_user_key_first() {
        let a = make_internal_key(b"aaa", 1, ValueType::Value);
        let b = make_internal_key(b"bbb", 100, ValueType::Value);
        assert_eq!(internal_compare(&a, &b), Ordering::Less);
    }

    #[test]
    fn newer_sequence_sorts_first_within_user_key() {
        let newer = make_internal_key(b"k", 10, ValueType::Value);
        let older = make_internal_key(b"k", 5, ValueType::Value);
        assert_eq!(internal_compare(&newer, &older), Ordering::Less);
    }

    #[test]
    fn deletion_sorts_after_value_at_same_sequence() {
        // type Value(1) > Deletion(0); descending trailer order means the
        // Value entry comes first.
        let val = make_internal_key(b"k", 7, ValueType::Value);
        let del = make_internal_key(b"k", 7, ValueType::Deletion);
        assert_eq!(internal_compare(&val, &del), Ordering::Less);
    }

    #[test]
    fn lookup_key_finds_visible_versions() {
        // Entries at seq <= snapshot must sort at-or-after the lookup key.
        let lookup = make_lookup_key(b"k", 10);
        let visible = make_internal_key(b"k", 10, ValueType::Value);
        let older = make_internal_key(b"k", 3, ValueType::Value);
        let invisible = make_internal_key(b"k", 11, ValueType::Value);
        assert_eq!(internal_compare(&lookup, &visible), Ordering::Equal);
        assert_eq!(internal_compare(&lookup, &older), Ordering::Less);
        assert_eq!(internal_compare(&lookup, &invisible), Ordering::Greater);
    }

    #[test]
    fn user_keys_with_embedded_trailer_bytes_still_ordered() {
        // User keys containing 0xff / 0x00 bytes must not confuse ordering.
        let a = make_internal_key(&[0x00, 0xff], 1, ValueType::Value);
        let b = make_internal_key(&[0x01], 1, ValueType::Value);
        assert_eq!(internal_compare(&a, &b), Ordering::Less);
    }
}
