//! Background block readahead pool.
//!
//! Table iterators over latency-bound (cloud-resident) files schedule the
//! next few data blocks here; workers fetch them with one coalesced ranged
//! read (`RandomAccessFile::prefetch_ranges`) and stage the decoded blocks
//! in the [`BlockCache`] so the iterator's demand reads become cache hits.
//! The pool mirrors the flush/compaction threads' structure: a
//! `crossbeam::channel` work queue drained by dedicated workers, shut down
//! by closing the channel and joining.
//!
//! Prefetch is strictly advisory: failures are dropped (the demand path
//! re-reads and surfaces real errors) and staged blocks are admitted under
//! a capped footprint so readahead can never claim more than half the
//! cache from demand-fetched data.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use storage::RandomAccessFile;

use crate::cache::BlockCache;
use crate::sstable::reader::decode_block_contents;
use crate::sstable::{Block, BlockHandle, BLOCK_TRAILER_SIZE};

/// One readahead request: a run of data blocks of a single table file.
pub(crate) struct PrefetchJob {
    pub file: Arc<dyn RandomAccessFile>,
    pub file_number: u64,
    pub handles: Vec<BlockHandle>,
    pub verify: bool,
    pub cache: Arc<BlockCache>,
}

/// Blocks owned by in-flight jobs, keyed by `(file_number, offset)`.
/// The demand path consults this so a reader that catches up with the
/// readahead window waits for the in-flight coalesced read instead of
/// issuing a duplicate GET for the same block.
struct Pending {
    set: Mutex<HashSet<(u64, u64)>>,
    done: Condvar,
}

/// Fixed pool of readahead workers owned by the database.
pub struct Prefetcher {
    tx: Mutex<Option<Sender<PrefetchJob>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    pending: Arc<Pending>,
    issued: AtomicU64,
    obs: Arc<obs::Observer>,
}

impl Prefetcher {
    /// Start `workers` readahead threads. Dropped blocks (fetch or decode
    /// failures, jobs racing shutdown) surface as `PrefetchDrop` events on
    /// `obs`; prefetch stays advisory so nothing else is reported.
    pub fn new(workers: usize, obs: Arc<obs::Observer>) -> Arc<Prefetcher> {
        let (tx, rx) = crossbeam::channel::unbounded::<PrefetchJob>();
        let pending = Arc::new(Pending { set: Mutex::new(HashSet::new()), done: Condvar::new() });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers.max(1) {
            let rx: Receiver<PrefetchJob> = rx.clone();
            let pending = Arc::clone(&pending);
            let obs = Arc::clone(&obs);
            let handle = std::thread::Builder::new()
                .name(format!("lsm-prefetch-{i}"))
                .spawn(move || worker_loop(rx, pending, obs))
                .expect("spawn prefetch worker");
            handles.push(handle);
        }
        Arc::new(Prefetcher {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(handles),
            pending,
            issued: AtomicU64::new(0),
            obs,
        })
    }

    /// Enqueue a job; a no-op after shutdown or for an empty handle list.
    pub(crate) fn schedule(&self, job: PrefetchJob) {
        if job.handles.is_empty() {
            return;
        }
        let tx = self.tx.lock();
        let Some(tx) = tx.as_ref() else { return };
        let file_number = job.file_number;
        let offsets: Vec<u64> = job.handles.iter().map(|h| h.offset).collect();
        {
            let mut set = self.pending.set.lock();
            for offset in &offsets {
                set.insert((file_number, *offset));
            }
        }
        self.issued.fetch_add(job.handles.len() as u64, Ordering::Relaxed);
        if tx.send(job).is_err() {
            let mut set = self.pending.set.lock();
            for offset in &offsets {
                set.remove(&(file_number, *offset));
            }
            drop(set);
            self.pending.done.notify_all();
            self.obs.event(obs::EventKind::PrefetchDrop { blocks: offsets.len() as u64 });
        }
    }

    /// If the block at `offset` is owned by an in-flight job, wait
    /// (bounded) for that job to complete so the caller can re-check the
    /// block cache instead of duplicating the read. Returns whether the
    /// block was pending at all; the caller must still handle a cache
    /// miss afterwards — completion is not a delivery guarantee.
    pub(crate) fn wait_if_pending(&self, file_number: u64, offset: u64) -> bool {
        let key = (file_number, offset);
        let mut set = self.pending.set.lock();
        if !set.contains(&key) {
            return false;
        }
        // Bounded so a stalled worker cannot wedge the demand path; on
        // timeout the caller falls back to its own read.
        let mut budget = 4u32;
        while set.contains(&key) && budget > 0 {
            if self.pending.done.wait_for(&mut set, Duration::from_millis(500)).timed_out() {
                budget -= 1;
            }
        }
        true
    }

    /// Blocks scheduled for readahead so far.
    pub fn issued(&self) -> u64 {
        self.issued.load(Ordering::Relaxed)
    }

    /// Close the queue and join every worker. Idempotent.
    pub fn shutdown(&self) {
        *self.tx.lock() = None;
        let handles: Vec<_> = self.workers.lock().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        // Jobs still queued when the channel closed never ran; clear their
        // pending marks so any waiter unblocks immediately.
        self.pending.set.lock().clear();
        self.pending.done.notify_all();
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: Receiver<PrefetchJob>, pending: Arc<Pending>, obs: Arc<obs::Observer>) {
    while let Ok(job) = rx.recv() {
        let dropped = run_job(&job);
        if dropped > 0 {
            obs.event(obs::EventKind::PrefetchDrop { blocks: dropped });
        }
        let mut set = pending.set.lock();
        for handle in &job.handles {
            set.remove(&(job.file_number, handle.offset));
        }
        drop(set);
        pending.done.notify_all();
    }
}

/// Returns how many scheduled blocks were dropped instead of staged.
fn run_job(job: &PrefetchJob) -> u64 {
    // Skip blocks that landed in the cache since scheduling.
    let todo: Vec<BlockHandle> = job
        .handles
        .iter()
        .copied()
        .filter(|h| !job.cache.contains(job.file_number, h.offset))
        .collect();
    if todo.is_empty() {
        return 0;
    }
    let ranges: Vec<(u64, usize)> =
        todo.iter().map(|h| (h.offset, h.size as usize + BLOCK_TRAILER_SIZE)).collect();
    let Ok(buffers) = job.file.prefetch_ranges(&ranges) else {
        return todo.len() as u64;
    };
    let mut dropped = 0;
    for (handle, raw) in todo.iter().zip(buffers) {
        let Ok(contents) = decode_block_contents(&raw, handle, job.verify) else {
            dropped += 1;
            continue;
        };
        let Ok(block) = Block::new(contents) else {
            dropped += 1;
            continue;
        };
        job.cache.insert_prefetched(job.file_number, handle.offset, Arc::new(block));
    }
    dropped
}
