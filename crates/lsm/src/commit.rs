//! Group commit: a per-shard queue that batches concurrent writers into
//! one WAL append + fsync round.
//!
//! Writers enqueue their batch as a [`Slot`] and then either become the
//! shard's commit **leader** or wait as a **follower**. The leader drains a
//! bounded group off the queue (capped by `group_commit_max_batches` /
//! `group_commit_max_bytes`), runs the caller-supplied commit closure once
//! for the whole group — appending every batch and issuing a single fsync —
//! and then hands each follower its copy of the group's result. This turns
//! K concurrent fsyncs into one, which is where the write-path win comes
//! from once memtable contention is gone.
//!
//! The queue is deliberately generic over *what* committing means: the
//! engine commits to a per-shard engine WAL plus memtable, while the tiered
//! store commits to an eWAL partition. Both reuse this module so the
//! leader/follower protocol and its counters exist exactly once.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::batch::WriteBatch;
use crate::error::Result;

/// Counters describing group-commit behaviour, shared across all shards of
/// one store so a single instance summarizes the whole write path.
#[derive(Debug, Default)]
pub struct GroupCommitStats {
    /// Commit rounds led (each is one WAL append pass + at most one fsync).
    pub group_commits: AtomicU64,
    /// Write batches committed through those rounds. `group_commit_batches /
    /// group_commits` is the mean group size; values above 1 mean fsyncs
    /// are being amortized across writers.
    pub group_commit_batches: AtomicU64,
    /// Times a writer arrived while another leader was mid-commit on the
    /// same shard and had to wait — a direct measure of shard contention
    /// (and of grouping opportunity).
    pub writer_shard_conflicts: AtomicU64,
}

impl GroupCommitStats {
    fn bump(&self, batches: usize) {
        self.group_commits.fetch_add(1, Ordering::Relaxed);
        self.group_commit_batches.fetch_add(batches as u64, Ordering::Relaxed);
    }
}

/// One writer's entry in a commit queue: its batch, and the cell the group
/// leader deposits the commit result into.
pub struct Slot {
    batch: WriteBatch,
    result: Mutex<Option<Result<()>>>,
}

impl Slot {
    /// The batch this writer submitted (sequence already stamped).
    pub fn batch(&self) -> &WriteBatch {
        &self.batch
    }

    fn take_result(&self) -> Option<Result<()>> {
        self.result.lock().take()
    }

    fn set_result(&self, r: Result<()>) {
        *self.result.lock() = Some(r);
    }
}

struct Inner {
    pending: VecDeque<Arc<Slot>>,
    leader_active: bool,
}

/// A single shard's commit queue. See the module docs for the protocol.
pub struct GroupQueue {
    inner: Mutex<Inner>,
    cv: Condvar,
    max_batches: usize,
    max_bytes: usize,
    stats: Arc<GroupCommitStats>,
}

impl GroupQueue {
    /// A queue bounded to `max_batches` / `max_bytes` per commit round.
    /// `stats` is shared: pass the same instance to every shard's queue.
    pub fn new(max_batches: usize, max_bytes: usize, stats: Arc<GroupCommitStats>) -> Self {
        GroupQueue {
            inner: Mutex::new(Inner { pending: VecDeque::new(), leader_active: false }),
            cv: Condvar::new(),
            max_batches: max_batches.max(1),
            max_bytes: max_bytes.max(1),
            stats,
        }
    }

    /// Submit `batch` and block until some leader (possibly this writer)
    /// commits it. `commit` persists an entire group in one round: append
    /// every slot's batch, then sync once. It may run more than once per
    /// `submit` call when this writer leads a round that does not include
    /// its own slot.
    ///
    /// On error the whole group fails together: every member receives a
    /// duplicate of the leader's error, mirroring how a failed group WAL
    /// write leaves all its batches unpersisted.
    pub fn submit(
        &self,
        batch: WriteBatch,
        mut commit: impl FnMut(&[Arc<Slot>]) -> Result<()>,
    ) -> Result<()> {
        let slot = Arc::new(Slot { batch, result: Mutex::new(None) });
        let mut inner = self.inner.lock();
        inner.pending.push_back(slot.clone());
        let mut counted_conflict = false;
        loop {
            if let Some(result) = slot.take_result() {
                return result;
            }
            if inner.leader_active {
                if !counted_conflict {
                    counted_conflict = true;
                    self.stats.writer_shard_conflicts.fetch_add(1, Ordering::Relaxed);
                }
                self.cv.wait(&mut inner);
                continue;
            }

            // No leader and our slot is uncommitted (hence still queued):
            // lead a round. Drain a bounded group, always admitting at
            // least the front slot so oversized batches still commit.
            inner.leader_active = true;
            let mut group: Vec<Arc<Slot>> = Vec::new();
            let mut bytes = 0usize;
            while let Some(front) = inner.pending.front() {
                if !group.is_empty()
                    && (group.len() >= self.max_batches
                        || bytes + front.batch.byte_size() > self.max_bytes)
                {
                    break;
                }
                bytes += front.batch.byte_size();
                group.push(inner.pending.pop_front().expect("front exists"));
            }
            debug_assert!(!group.is_empty());
            drop(inner);

            // Test hook: `Sleep` here widens the leader window so racing
            // writers pile up and form larger groups deterministically.
            let outcome = storage::failpoint::fail_point("group_commit_lead")
                .map_err(crate::error::Error::from)
                .and_then(|()| commit(&group));
            self.stats.bump(group.len());
            for member in &group {
                member.set_result(match &outcome {
                    Ok(()) => Ok(()),
                    Err(e) => Err(e.duplicate()),
                });
            }

            inner = self.inner.lock();
            inner.leader_active = false;
            self.cv.notify_all();
            // Loop: our own slot either got a result above or is still
            // queued behind the group we just led.
        }
    }
}

/// FNV-1a over the user key — the shard routing hash. Kept dependency-free
/// and stable: recovery replays per-shard logs into one global-sequence
/// merge, so the hash only affects load balance, never correctness.
#[inline]
pub fn shard_of(key: &[u8], shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use std::sync::atomic::AtomicUsize;

    fn batch_with(n: usize) -> WriteBatch {
        let mut b = WriteBatch::new();
        for i in 0..n {
            b.put(format!("k{i}").as_bytes(), b"v");
        }
        b
    }

    #[test]
    fn single_writer_commits_immediately() {
        let stats = Arc::new(GroupCommitStats::default());
        let q = GroupQueue::new(8, 1 << 20, stats.clone());
        let committed = AtomicUsize::new(0);
        q.submit(batch_with(3), |group| {
            committed.fetch_add(group.len(), Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert_eq!(committed.load(Ordering::Relaxed), 1);
        assert_eq!(stats.group_commits.load(Ordering::Relaxed), 1);
        assert_eq!(stats.group_commit_batches.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_writers_form_groups() {
        let stats = Arc::new(GroupCommitStats::default());
        let q = Arc::new(GroupQueue::new(64, 1 << 20, stats.clone()));
        let writers = 8;
        let per = 50;
        std::thread::scope(|scope| {
            for _ in 0..writers {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for _ in 0..per {
                        q.submit(batch_with(1), |_group| {
                            // Simulate a slow fsync so groups can form.
                            std::thread::sleep(std::time::Duration::from_micros(200));
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
        });
        let total = (writers * per) as u64;
        assert_eq!(stats.group_commit_batches.load(Ordering::Relaxed), total);
        // With 8 writers racing a slow commit, at least some rounds must
        // have carried more than one batch.
        assert!(
            stats.group_commits.load(Ordering::Relaxed) < total,
            "no grouping occurred: {} rounds for {} batches",
            stats.group_commits.load(Ordering::Relaxed),
            total
        );
    }

    #[test]
    fn leader_error_reaches_every_member() {
        let stats = Arc::new(GroupCommitStats::default());
        let q = Arc::new(GroupQueue::new(64, 1 << 20, stats));
        let errs = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let q = Arc::clone(&q);
                let errs = Arc::clone(&errs);
                scope.spawn(move || {
                    let r = q.submit(batch_with(1), |_group| {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        Err(Error::corruption("injected"))
                    });
                    if r.is_err() {
                        errs.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(errs.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn byte_budget_bounds_group_size() {
        let stats = Arc::new(GroupCommitStats::default());
        // Budget below one batch: every group must still admit one batch.
        let q = GroupQueue::new(64, 1, stats.clone());
        q.submit(batch_with(4), |group| {
            assert_eq!(group.len(), 1);
            Ok(())
        })
        .unwrap();
        assert_eq!(stats.group_commits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in 1..=16usize {
            for i in 0..256 {
                let k = format!("key-{i}");
                let s = shard_of(k.as_bytes(), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(k.as_bytes(), shards), "hash must be deterministic");
            }
        }
        assert_eq!(shard_of(b"anything", 1), 0);
    }
}
