//! Atomic write batches.
//!
//! A [`WriteBatch`] is the unit of WAL logging and memtable application, in
//! the exact byte format that goes on the log:
//!
//! ```text
//! sequence: fixed64 | count: fixed32 | records...
//! record   = kTypeValue    varstring(key) varstring(value)
//!          | kTypeDeletion varstring(key)
//! ```

use crate::error::{Error, Result};
use crate::types::{SequenceNumber, ValueType};
use crate::util::{
    get_fixed32, get_fixed64, get_length_prefixed, put_fixed32, put_length_prefixed,
};

const HEADER_SIZE: usize = 12;

/// An ordered set of updates applied atomically.
#[derive(Debug, Clone)]
pub struct WriteBatch {
    rep: Vec<u8>,
    count: u32,
}

impl WriteBatch {
    /// Empty batch.
    pub fn new() -> Self {
        let mut rep = Vec::with_capacity(64);
        rep.resize(HEADER_SIZE, 0);
        WriteBatch { rep, count: 0 }
    }

    /// Queue a put of `key` → `value`.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.rep.push(ValueType::Value as u8);
        put_length_prefixed(&mut self.rep, key);
        put_length_prefixed(&mut self.rep, value);
        self.count += 1;
        self.write_count();
    }

    /// Queue a deletion of `key`.
    pub fn delete(&mut self, key: &[u8]) {
        self.rep.push(ValueType::Deletion as u8);
        put_length_prefixed(&mut self.rep, key);
        self.count += 1;
        self.write_count();
    }

    /// Remove all queued updates.
    pub fn clear(&mut self) {
        self.rep.truncate(HEADER_SIZE);
        self.rep[..HEADER_SIZE].fill(0);
        self.count = 0;
    }

    /// Number of updates queued.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// True when no updates are queued.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Serialized size in bytes (what will be appended to the WAL).
    pub fn byte_size(&self) -> usize {
        self.rep.len()
    }

    /// Stamp the starting sequence number for this batch.
    pub fn set_sequence(&mut self, seq: SequenceNumber) {
        self.rep[..8].copy_from_slice(&seq.to_le_bytes());
    }

    /// The starting sequence number stamped on this batch.
    pub fn sequence(&self) -> SequenceNumber {
        get_fixed64(&self.rep)
    }

    /// The on-log byte representation.
    pub fn data(&self) -> &[u8] {
        &self.rep
    }

    /// Rebuild a batch from its on-log representation, validating framing.
    pub fn from_data(data: &[u8]) -> Result<WriteBatch> {
        if data.len() < HEADER_SIZE {
            return Err(Error::corruption("write batch shorter than header"));
        }
        let batch = WriteBatch { rep: data.to_vec(), count: get_fixed32(&data[8..]) };
        // Validate by walking all records.
        let walked = batch.iter().count() as u32;
        if walked != batch.count {
            return Err(Error::corruption(format!(
                "write batch count mismatch: header {} walked {}",
                batch.count, walked
            )));
        }
        Ok(batch)
    }

    /// Iterate over the queued updates in insertion order.
    pub fn iter(&self) -> BatchIter<'_> {
        BatchIter { rest: &self.rep[HEADER_SIZE..] }
    }

    /// Append all updates from `other` onto this batch.
    pub fn append(&mut self, other: &WriteBatch) {
        self.rep.extend_from_slice(&other.rep[HEADER_SIZE..]);
        self.count += other.count;
        self.write_count();
    }

    /// Partition the batch's updates into `shards` sub-batches by routing
    /// each op's key through `route`. Same key → same shard, so the
    /// relative order of updates to any one key is preserved; only the
    /// interleaving of *different* keys changes, which is unobservable once
    /// a contiguous sequence range is stamped across the sub-batches.
    /// Sub-batches carry no sequence stamp — the caller allocates one range
    /// and stamps contiguous slices in shard order.
    pub fn split_by_shard(&self, shards: usize, route: impl Fn(&[u8]) -> usize) -> Vec<WriteBatch> {
        let mut out: Vec<WriteBatch> = (0..shards).map(|_| WriteBatch::new()).collect();
        for op in self.iter() {
            match op {
                BatchOp::Put(key, value) => out[route(key)].put(key, value),
                BatchOp::Delete(key) => out[route(key)].delete(key),
            }
        }
        out
    }

    fn write_count(&mut self) {
        let mut header = Vec::with_capacity(4);
        put_fixed32(&mut header, self.count);
        self.rep[8..12].copy_from_slice(&header);
    }
}

impl Default for WriteBatch {
    fn default() -> Self {
        Self::new()
    }
}

/// One update inside a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOp<'a> {
    /// key → value insertion.
    Put(&'a [u8], &'a [u8]),
    /// key deletion.
    Delete(&'a [u8]),
}

/// Iterator over batch records; stops at the first malformed record.
pub struct BatchIter<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = BatchOp<'a>;

    fn next(&mut self) -> Option<BatchOp<'a>> {
        if self.rest.is_empty() {
            return None;
        }
        let tag = ValueType::from_u8(self.rest[0])?;
        self.rest = &self.rest[1..];
        let (key, n) = get_length_prefixed(self.rest)?;
        self.rest = &self.rest[n..];
        match tag {
            ValueType::Value => {
                let (value, m) = get_length_prefixed(self.rest)?;
                self.rest = &self.rest[m..];
                Some(BatchOp::Put(key, value))
            }
            ValueType::Deletion => Some(BatchOp::Delete(key)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_delete_iterate_in_order() {
        let mut b = WriteBatch::new();
        b.put(b"a", b"1");
        b.delete(b"b");
        b.put(b"c", b"3");
        let ops: Vec<_> = b.iter().collect();
        assert_eq!(
            ops,
            vec![BatchOp::Put(b"a", b"1"), BatchOp::Delete(b"b"), BatchOp::Put(b"c", b"3")]
        );
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn sequence_stamp_roundtrip() {
        let mut b = WriteBatch::new();
        b.put(b"k", b"v");
        b.set_sequence(12345);
        assert_eq!(b.sequence(), 12345);
        let again = WriteBatch::from_data(b.data()).unwrap();
        assert_eq!(again.sequence(), 12345);
        assert_eq!(again.count(), 1);
    }

    #[test]
    fn from_data_validates_count() {
        let mut b = WriteBatch::new();
        b.put(b"k", b"v");
        let mut data = b.data().to_vec();
        data[8] = 9; // lie about the count
        assert!(matches!(WriteBatch::from_data(&data), Err(Error::Corruption(_))));
    }

    #[test]
    fn from_data_rejects_truncation() {
        let mut b = WriteBatch::new();
        b.put(b"key", b"value");
        let data = b.data();
        assert!(WriteBatch::from_data(&data[..data.len() - 2]).is_err());
        assert!(WriteBatch::from_data(&data[..4]).is_err());
    }

    #[test]
    fn append_merges_batches() {
        let mut a = WriteBatch::new();
        a.put(b"x", b"1");
        let mut b = WriteBatch::new();
        b.delete(b"y");
        b.put(b"z", b"2");
        a.append(&b);
        assert_eq!(a.count(), 3);
        let ops: Vec<_> = a.iter().collect();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[1], BatchOp::Delete(b"y"));
    }

    #[test]
    fn split_by_shard_preserves_per_key_order() {
        let mut b = WriteBatch::new();
        b.put(b"a", b"1");
        b.put(b"b", b"2");
        b.delete(b"a");
        b.put(b"a", b"3");
        let parts = b.split_by_shard(2, |k| usize::from(k == b"b"));
        assert_eq!(parts[0].iter().count() + parts[1].iter().count(), 4);
        let shard_a: Vec<_> = parts[0].iter().collect();
        assert_eq!(
            shard_a,
            vec![BatchOp::Put(b"a", b"1"), BatchOp::Delete(b"a"), BatchOp::Put(b"a", b"3")]
        );
        assert_eq!(parts[1].iter().collect::<Vec<_>>(), vec![BatchOp::Put(b"b", b"2")]);
    }

    #[test]
    fn clear_resets() {
        let mut b = WriteBatch::new();
        b.put(b"k", b"v");
        b.set_sequence(5);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.sequence(), 0);
        assert_eq!(b.iter().count(), 0);
    }

    #[test]
    fn empty_keys_and_values_allowed() {
        let mut b = WriteBatch::new();
        b.put(b"", b"");
        b.delete(b"");
        let ops: Vec<_> = b.iter().collect();
        assert_eq!(ops, vec![BatchOp::Put(b"", b""), BatchOp::Delete(b"")]);
    }

    #[test]
    fn large_values_roundtrip() {
        let big = vec![0xabu8; 1 << 16];
        let mut b = WriteBatch::new();
        b.put(b"big", &big);
        match b.iter().next().unwrap() {
            BatchOp::Put(k, v) => {
                assert_eq!(k, b"big");
                assert_eq!(v.len(), big.len());
            }
            _ => panic!("expected put"),
        }
    }
}
