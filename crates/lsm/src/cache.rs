//! Sharded LRU block cache.
//!
//! Caches decoded data blocks keyed by `(file_number, block_offset)`. The
//! cache is sharded 16 ways to keep lock hold times short under concurrent
//! readers; each shard runs an exact LRU implemented as a slab-backed
//! intrusive doubly-linked list (no allocation per touch).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::sstable::Block;

const NUM_SHARDS: usize = 16;
const NIL: usize = usize::MAX;

/// Cache key: file number + block offset within the file.
pub type BlockKey = (u64, u64);

struct Entry {
    key: BlockKey,
    block: Arc<Block>,
    charge: usize,
    /// Staged by the readahead pipeline and not yet demanded; the flag
    /// clears on first demand hit. The total footprint of such entries is
    /// capped at half the shard so a scan's readahead can never claim the
    /// whole cache, and the oldest unconsumed one is evicted first when
    /// the cap is reached.
    prefetched: bool,
    prev: usize,
    next: usize,
}

struct Shard {
    map: HashMap<BlockKey, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    used: usize,
    capacity: usize,
    /// Bytes held by prefetched-but-not-yet-demanded entries.
    prefetched_bytes: usize,
    /// Insertion order of prefetched entries, oldest first. Entries whose
    /// block has since been demanded (flag cleared) or evicted are stale
    /// and skipped on pop.
    prefetch_fifo: VecDeque<(usize, BlockKey)>,
    /// Prefetched blocks evicted without ever serving a demand read: each
    /// one was a cloud GET (often billed egress) the scan never used.
    /// Bounded-scan readahead clamping exists to keep this at ~0.
    wasted: u64,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            used: 0,
            capacity,
            prefetched_bytes: 0,
            prefetch_fifo: VecDeque::new(),
            wasted: 0,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Returns the block and whether this was the first demand hit on a
    /// prefetched entry.
    fn get(&mut self, key: &BlockKey) -> Option<(Arc<Block>, bool)> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        let was_prefetched = self.slab[idx].prefetched;
        if was_prefetched {
            // Promoted to a demand entry: no longer counts against the
            // readahead footprint cap.
            self.slab[idx].prefetched = false;
            self.prefetched_bytes -= self.slab[idx].charge;
        }
        Some((Arc::clone(&self.slab[idx].block), was_prefetched))
    }

    fn remove_index(&mut self, idx: usize) {
        self.unlink(idx);
        let entry = &mut self.slab[idx];
        self.used -= entry.charge;
        if entry.prefetched {
            // Evicted while still flagged: fetched by readahead, never
            // demanded. This is the single eviction path, so counting here
            // covers LRU pressure, the footprint cap, and erase_file alike.
            self.prefetched_bytes -= entry.charge;
            self.wasted += 1;
        }
        self.map.remove(&entry.key);
        // Drop the Arc eagerly; slot is recycled via the free list.
        entry.block = Arc::new(Block::empty());
        self.free.push(idx);
    }

    fn insert(&mut self, key: BlockKey, block: Arc<Block>, charge: usize) {
        if let Some(&idx) = self.map.get(&key) {
            self.remove_index(idx);
        }
        while self.used + charge > self.capacity && self.tail != NIL {
            let victim = self.tail;
            self.remove_index(victim);
        }
        if charge > self.capacity {
            return; // larger than the entire shard: never admit
        }
        let idx = self.alloc(Entry { key, block, charge, prefetched: false, prev: NIL, next: NIL });
        self.map.insert(key, idx);
        self.push_front(idx);
        self.used += charge;
    }

    /// Admit a prefetched block. Readahead may displace LRU-cold data —
    /// during a scan the tail is blocks the iterator already consumed —
    /// but its total footprint is capped at half the shard and the oldest
    /// unconsumed prefetched block goes first, so demand-hot data keeps
    /// at least half the cache no matter how aggressive the readahead.
    fn insert_prefetched(&mut self, key: BlockKey, block: Arc<Block>, charge: usize) {
        let cap = self.capacity / 2;
        if self.map.contains_key(&key) || charge > cap {
            return;
        }
        // Drop stale fifo entries (promoted or evicted) so the queue stays
        // bounded by the live prefetched footprint.
        while let Some(&(idx, k)) = self.prefetch_fifo.front() {
            if self.map.get(&k) == Some(&idx) && self.slab[idx].prefetched {
                break;
            }
            self.prefetch_fifo.pop_front();
        }
        while self.prefetched_bytes + charge > cap {
            let Some((idx, k)) = self.prefetch_fifo.pop_front() else { return };
            if self.map.get(&k) == Some(&idx) && self.slab[idx].prefetched {
                self.remove_index(idx);
            }
        }
        while self.used + charge > self.capacity && self.tail != NIL {
            let victim = self.tail;
            self.remove_index(victim);
        }
        let idx = self.alloc(Entry { key, block, charge, prefetched: true, prev: NIL, next: NIL });
        self.map.insert(key, idx);
        self.push_front(idx);
        self.used += charge;
        self.prefetched_bytes += charge;
        self.prefetch_fifo.push_back((idx, key));
    }

    fn alloc(&mut self, entry: Entry) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.slab[i] = entry;
                i
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        }
    }

    fn erase_file(&mut self, file_number: u64) {
        let victims: Vec<usize> =
            self.map.iter().filter(|((f, _), _)| *f == file_number).map(|(_, &i)| i).collect();
        for idx in victims {
            self.remove_index(idx);
        }
    }
}

/// Thread-safe sharded LRU cache of decoded blocks.
pub struct BlockCache {
    shards: [Mutex<Shard>; NUM_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    prefetch_useful: AtomicU64,
}

impl BlockCache {
    /// Cache with a total capacity of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        let per_shard = (capacity / NUM_SHARDS).max(1);
        BlockCache {
            shards: std::array::from_fn(|_| Mutex::new(Shard::new(per_shard))),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            prefetch_useful: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &BlockKey) -> &Mutex<Shard> {
        // File number and offset are both structured; mix them.
        let h = key
            .0
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(key.1.wrapping_mul(0xc2b2ae3d27d4eb4f));
        &self.shards[(h >> 56) as usize % NUM_SHARDS]
    }

    /// Fetch a block, updating recency and hit statistics.
    pub fn get(&self, file_number: u64, offset: u64) -> Option<Arc<Block>> {
        let key = (file_number, offset);
        let got = self.shard(&key).lock().get(&key);
        match &got {
            Some((_, was_prefetched)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if *was_prefetched {
                    self.prefetch_useful.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
        };
        got.map(|(block, _)| block)
    }

    /// Whether a block is cached, without touching recency or hit stats
    /// (used by the prefetch pool to skip already-resident blocks).
    pub fn contains(&self, file_number: u64, offset: u64) -> bool {
        let key = (file_number, offset);
        self.shard(&key).lock().map.contains_key(&key)
    }

    /// Insert a block, charging its in-memory size.
    pub fn insert(&self, file_number: u64, offset: u64, block: Arc<Block>) {
        let key = (file_number, offset);
        let charge = block.size().max(1);
        self.shard(&key).lock().insert(key, block, charge);
    }

    /// Insert a block staged by readahead: may displace LRU-cold data but
    /// the readahead footprint is capped at half of each shard, with the
    /// oldest unconsumed prefetched block evicted first.
    pub fn insert_prefetched(&self, file_number: u64, offset: u64, block: Arc<Block>) {
        let key = (file_number, offset);
        let charge = block.size().max(1);
        self.shard(&key).lock().insert_prefetched(key, block, charge);
    }

    /// Demand hits on blocks that were staged by readahead.
    pub fn prefetch_useful(&self) -> u64 {
        self.prefetch_useful.load(Ordering::Relaxed)
    }

    /// Prefetched blocks evicted without ever serving a demand read —
    /// readahead overshoot, i.e. cloud GETs (billed egress on cloud-backed
    /// schemes) the scan never consumed. Bounded scans clamp the prefetch
    /// watermark precisely to keep this at ~0.
    pub fn prefetch_wasted(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().wasted).sum()
    }

    /// Drop every cached block belonging to `file_number` (called when a
    /// compaction obsoletes the file).
    pub fn erase_file(&self, file_number: u64) {
        for shard in &self.shards {
            shard.lock().erase_file(file_number);
        }
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used).sum()
    }

    /// (hits, misses) so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

impl Block {
    /// Zero-entry block used as a tombstone in recycled cache slots.
    fn empty() -> Block {
        Block::new(vec![0, 0, 0, 0]).expect("empty block encoding is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sstable::BlockBuilder;
    use crate::types::{make_internal_key, ValueType};

    fn block_of_size(tag: u8, approx: usize) -> Arc<Block> {
        let mut b = BlockBuilder::new(16);
        let key = make_internal_key(&[tag], 1, ValueType::Value);
        b.add(&key, &vec![tag; approx]);
        Arc::new(Block::new(b.finish()).unwrap())
    }

    #[test]
    fn insert_get_roundtrip() {
        let cache = BlockCache::new(1 << 20);
        let b = block_of_size(1, 100);
        cache.insert(7, 0, Arc::clone(&b));
        let got = cache.get(7, 0).unwrap();
        assert_eq!(got.size(), b.size());
        assert!(cache.get(7, 1).is_none());
        assert!(cache.get(8, 0).is_none());
        let (hits, misses) = cache.hit_stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 2);
    }

    #[test]
    fn eviction_is_lru() {
        // One shard worth of capacity to make eviction deterministic per
        // shard; use keys that land in the same shard by using same file and
        // testing relative behavior.
        let cache = BlockCache::new(NUM_SHARDS * 600);
        let b = block_of_size(1, 400); // each ~> 400 bytes, so one fits per shard
        cache.insert(1, 0, Arc::clone(&b));
        // Re-inserting same key replaces, not duplicates.
        cache.insert(1, 0, Arc::clone(&b));
        assert!(cache.get(1, 0).is_some());
        assert!(cache.used_bytes() <= 600 * NUM_SHARDS);
    }

    #[test]
    fn capacity_is_bounded_under_many_inserts() {
        let cap = 64 * 1024;
        let cache = BlockCache::new(cap);
        for i in 0..1000u64 {
            cache.insert(i, 0, block_of_size((i % 251) as u8, 1024));
        }
        assert!(cache.used_bytes() <= cap + 2048, "used {}", cache.used_bytes());
    }

    #[test]
    fn erase_file_removes_all_its_blocks() {
        let cache = BlockCache::new(1 << 20);
        for off in 0..10u64 {
            cache.insert(42, off * 4096, block_of_size(off as u8, 64));
        }
        cache.insert(43, 0, block_of_size(9, 64));
        cache.erase_file(42);
        for off in 0..10u64 {
            assert!(cache.get(42, off * 4096).is_none());
        }
        assert!(cache.get(43, 0).is_some());
    }

    #[test]
    fn oversized_entries_are_not_admitted() {
        let cache = BlockCache::new(NUM_SHARDS * 128);
        cache.insert(1, 0, block_of_size(1, 4096));
        assert!(cache.get(1, 0).is_none());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn recycled_slots_are_reused() {
        let cache = BlockCache::new(1 << 20);
        for round in 0..3 {
            for i in 0..50u64 {
                cache.insert(round, i, block_of_size(1, 32));
            }
            cache.erase_file(round);
        }
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn prefetched_entries_promote_on_first_hit() {
        let cache = BlockCache::new(1 << 20);
        cache.insert_prefetched(1, 0, block_of_size(1, 100));
        assert!(cache.contains(1, 0));
        assert_eq!(cache.prefetch_useful(), 0);
        assert!(cache.get(1, 0).is_some());
        assert_eq!(cache.prefetch_useful(), 1);
        // Flag cleared: a second hit is an ordinary hit.
        assert!(cache.get(1, 0).is_some());
        assert_eq!(cache.prefetch_useful(), 1);
    }

    #[test]
    fn unconsumed_prefetched_evictions_count_as_wasted() {
        let cache = BlockCache::new(1 << 20);
        cache.insert_prefetched(1, 0, block_of_size(1, 100));
        cache.insert_prefetched(1, 1, block_of_size(2, 100));
        assert_eq!(cache.prefetch_wasted(), 0);
        // Consume one, drop the file: only the unconsumed block is waste.
        assert!(cache.get(1, 0).is_some());
        cache.erase_file(1);
        assert_eq!(cache.prefetch_wasted(), 1);
        assert_eq!(cache.prefetch_useful(), 1);
    }

    #[test]
    fn demand_evictions_are_not_wasted() {
        let cache = BlockCache::new(1 << 20);
        for off in 0..10u64 {
            cache.insert(3, off, block_of_size(1, 64));
        }
        cache.erase_file(3);
        assert_eq!(cache.prefetch_wasted(), 0);
    }

    #[test]
    fn prefetch_footprint_is_capped_at_half_capacity() {
        // Flooding an empty cache with readahead must leave at least half
        // of every shard free for demand data.
        let cap = NUM_SHARDS * 4096;
        let cache = BlockCache::new(cap);
        for off in 0..512u64 {
            cache.insert_prefetched(1, off, block_of_size((off % 251) as u8, 400));
        }
        assert!(
            cache.used_bytes() <= cap / 2 + 1024,
            "prefetch flood claimed {} of {} bytes",
            cache.used_bytes(),
            cap
        );
    }

    #[test]
    fn prefetched_inserts_preserve_demand_majority() {
        // Prefetch may evict LRU-cold blocks but never more than the
        // capped footprint's worth: most demanded data stays resident
        // through an aggressive readahead flood.
        let cache = BlockCache::new(NUM_SHARDS * 2400);
        for off in 0..16u64 {
            cache.insert(1, off, block_of_size(1, 400));
        }
        let resident: Vec<u64> = (0..16).filter(|&off| cache.contains(1, off)).collect();
        assert!(!resident.is_empty());
        for off in 1000..1256u64 {
            cache.insert_prefetched(1, off, block_of_size(2, 400));
        }
        let survivors = resident.iter().filter(|&&off| cache.contains(1, off)).count();
        assert!(
            survivors * 2 >= resident.len(),
            "readahead flood displaced {} of {} demand blocks",
            resident.len() - survivors,
            resident.len()
        );
    }

    #[test]
    fn unused_prefetched_entries_age_out_under_demand_pressure() {
        let cache = BlockCache::new(NUM_SHARDS * 600);
        cache.insert_prefetched(1, 0, block_of_size(1, 400));
        // Demand inserts push the unconsumed prefetched entry down the LRU
        // list until it is evicted like any cold block.
        for off in 0..2048u64 {
            cache.insert(2, off, block_of_size(2, 400));
            if !cache.contains(1, 0) {
                return;
            }
        }
        panic!("unused prefetched block survived 2048 demand inserts");
    }

    #[test]
    fn oldest_prefetched_block_is_evicted_first() {
        // Single-shard-sized flood: with a 4 KiB shard (2 KiB prefetch
        // cap) and ~400 B blocks, sustained readahead keeps only the most
        // recent handful; the very first block must be long gone while the
        // latest one is resident.
        let cache = BlockCache::new(NUM_SHARDS * 4096);
        for off in 0..256u64 {
            cache.insert_prefetched(9, off, block_of_size((off % 251) as u8, 400));
        }
        assert!(!cache.contains(9, 0), "oldest prefetched block outlived the footprint cap");
        assert!(cache.contains(9, 255), "most recent prefetched block was evicted");
    }

    #[test]
    fn contains_does_not_touch_stats() {
        let cache = BlockCache::new(1 << 20);
        cache.insert(5, 0, block_of_size(1, 64));
        let before = cache.hit_stats();
        assert!(cache.contains(5, 0));
        assert!(!cache.contains(5, 1));
        assert_eq!(cache.hit_stats(), before);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(BlockCache::new(256 * 1024));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    cache.insert(t, i, block_of_size((i % 256) as u8, 128));
                    let _ = cache.get(t, i);
                    let _ = cache.get((t + 1) % 8, i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (hits, misses) = cache.hit_stats();
        assert_eq!(hits + misses, 8 * 500 * 2);
    }
}
