//! Low-level encoding utilities: varints, fixed-width integers, and CRC32C.

/// Append a little-endian u32.
pub fn put_fixed32(dst: &mut Vec<u8>, v: u32) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian u64.
pub fn put_fixed64(dst: &mut Vec<u8>, v: u64) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Decode a little-endian u32 at the start of `src`.
pub fn get_fixed32(src: &[u8]) -> u32 {
    u32::from_le_bytes(src[..4].try_into().expect("4 bytes"))
}

/// Decode a little-endian u64 at the start of `src`.
pub fn get_fixed64(src: &[u8]) -> u64 {
    u64::from_le_bytes(src[..8].try_into().expect("8 bytes"))
}

/// Append a LEB128 varint-encoded u64.
pub fn put_varint64(dst: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        dst.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    dst.push(v as u8);
}

/// Append a LEB128 varint-encoded u32.
pub fn put_varint32(dst: &mut Vec<u8>, v: u32) {
    put_varint64(dst, v as u64);
}

/// Decode a varint u64 from the front of `src`, returning the value and the
/// number of bytes consumed, or `None` on truncated/overlong input.
pub fn get_varint64(src: &[u8]) -> Option<(u64, usize)> {
    let mut result: u64 = 0;
    for (i, &byte) in src.iter().enumerate().take(10) {
        result |= ((byte & 0x7f) as u64) << (7 * i);
        if byte < 0x80 {
            return Some((result, i + 1));
        }
    }
    None
}

/// Decode a varint u32 from the front of `src`.
pub fn get_varint32(src: &[u8]) -> Option<(u32, usize)> {
    let (v, n) = get_varint64(src)?;
    if v > u32::MAX as u64 {
        return None;
    }
    Some((v as u32, n))
}

/// Decode a length-prefixed byte slice (varint length + bytes), returning the
/// slice and the total bytes consumed.
pub fn get_length_prefixed(src: &[u8]) -> Option<(&[u8], usize)> {
    let (len, n) = get_varint64(src)?;
    let len = len as usize;
    if src.len() < n + len {
        return None;
    }
    Some((&src[n..n + len], n + len))
}

/// Append a length-prefixed byte slice.
pub fn put_length_prefixed(dst: &mut Vec<u8>, data: &[u8]) {
    put_varint64(dst, data.len() as u64);
    dst.extend_from_slice(data);
}

/// CRC32C (Castagnoli) — the checksum LevelDB/RocksDB use for blocks and
/// log records. Table-driven, one table, byte-at-a-time; fast enough for the
/// simulator scales this repo targets.
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_extend(0, data)
}

/// Extend a running CRC32C with more data.
pub fn crc32c_extend(init: u32, data: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc = !init;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// LevelDB "masked" CRC: rotated and offset so that CRCs stored alongside
/// data that itself contains CRCs do not degenerate.
pub fn crc32c_masked(data: &[u8]) -> u32 {
    mask_crc(crc32c(data))
}

const MASK_DELTA: u32 = 0xa282ead8;

/// Mask a raw CRC value.
pub fn mask_crc(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(MASK_DELTA)
}

/// Invert [`mask_crc`].
pub fn unmask_crc(masked: u32) -> u32 {
    masked.wrapping_sub(MASK_DELTA).rotate_left(15)
}

fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        const POLY: u32 = 0x82f63b78; // reflected Castagnoli polynomial
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut j = 0;
            while j < 8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
                j += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_roundtrip() {
        let mut buf = Vec::new();
        put_fixed32(&mut buf, 0xdeadbeef);
        put_fixed64(&mut buf, u64::MAX - 7);
        assert_eq!(get_fixed32(&buf), 0xdeadbeef);
        assert_eq!(get_fixed64(&buf[4..]), u64::MAX - 7);
    }

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 300, 1 << 14, (1 << 21) - 1, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            let (decoded, n) = get_varint64(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn varint_sizes() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_varint64(&mut buf, 128);
        assert_eq!(buf.len(), 2);
        buf.clear();
        put_varint64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn truncated_varint_is_none() {
        assert_eq!(get_varint64(&[0x80]), None);
        assert_eq!(get_varint64(&[]), None);
    }

    #[test]
    fn varint32_rejects_out_of_range() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u32::MAX as u64 + 1);
        assert_eq!(get_varint32(&buf), None);
    }

    #[test]
    fn length_prefixed_roundtrip() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"hello");
        put_length_prefixed(&mut buf, b"");
        let (a, n) = get_length_prefixed(&buf).unwrap();
        assert_eq!(a, b"hello");
        let (b, m) = get_length_prefixed(&buf[n..]).unwrap();
        assert_eq!(b, b"");
        assert_eq!(n + m, buf.len());
    }

    #[test]
    fn length_prefixed_truncated() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"hello");
        assert!(get_length_prefixed(&buf[..3]).is_none());
    }

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 test vectors for CRC32C.
        assert_eq!(crc32c(&[0u8; 32]), 0x8a9136aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8ab43);
        let ascending: Vec<u8> = (0..32).collect();
        assert_eq!(crc32c(&ascending), 0x46dd794e);
        assert_eq!(crc32c(b"123456789"), 0xe3069283);
    }

    #[test]
    fn crc_extend_equals_whole() {
        let data = b"the quick brown fox";
        let whole = crc32c(data);
        let part = crc32c_extend(crc32c(&data[..7]), &data[7..]);
        assert_eq!(whole, part);
    }

    #[test]
    fn mask_roundtrip() {
        for v in [0u32, 1, 0xffffffff, 0x12345678] {
            assert_eq!(unmask_crc(mask_crc(v)), v);
            assert_ne!(mask_crc(v), v, "mask must change the value");
        }
    }
}
