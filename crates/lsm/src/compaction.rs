//! Leveled compaction: picking inputs and iterating them.
//!
//! Scoring follows LevelDB: L0 is scored by file count against the trigger,
//! deeper levels by total bytes against their budget. The compaction with
//! the highest score ≥ 1 wins. Inputs are the victim file(s) at the level
//! plus every overlapping file one level down; execution (in `db`) merges
//! them, drops shadowed/dead entries, and writes fresh tables at the lower
//! level. Trivial moves are intentionally not implemented: every compaction
//! rewrites its inputs, which keeps tier placement decisions (crate
//! `rocksmash`) a pure function of the output level (see DESIGN.md).

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::error::Result;
use crate::iterator::InternalIterator;
use crate::options::{Options, ReadOptions};
use crate::sstable::{Table, TableIter};
use crate::types::{extract_user_key, internal_compare};
use crate::version::{FileMetaData, Version};

/// Opens tables by metadata; implemented by the DB's table cache.
pub trait TableProvider: Send + Sync {
    /// Return an open table for `meta`.
    fn table(&self, meta: &FileMetaData) -> Result<Arc<Table>>;
}

/// A picked compaction: merge `inputs[0]` (at `level`) with `inputs[1]`
/// (at `level + 1`), writing outputs at `level + 1`.
#[derive(Debug, Clone)]
pub struct Compaction {
    /// Input level.
    pub level: usize,
    /// Files at `level` and at `level + 1`.
    pub inputs: [Vec<Arc<FileMetaData>>; 2],
}

impl Compaction {
    /// Level compaction outputs land on.
    pub fn output_level(&self) -> usize {
        self.level + 1
    }

    /// All input files with their levels.
    pub fn all_inputs(&self) -> impl Iterator<Item = (usize, &Arc<FileMetaData>)> {
        self.inputs[0]
            .iter()
            .map(move |f| (self.level, f))
            .chain(self.inputs[1].iter().map(move |f| (self.level + 1, f)))
    }

    /// Total bytes of input data.
    pub fn input_bytes(&self) -> u64 {
        self.all_inputs().map(|(_, f)| f.file_size).sum()
    }
}

/// Compute the compaction score of every level; index 0 is L0.
pub fn level_scores(version: &Version, options: &Options) -> Vec<f64> {
    let mut scores = vec![0.0; version.levels.len()];
    scores[0] = version.levels[0].len() as f64 / options.l0_compaction_trigger as f64;
    // The last level has no budget: data rests there.
    #[allow(clippy::needless_range_loop)] // indexes two parallel arrays
    for level in 1..version.levels.len() - 1 {
        scores[level] =
            version.level_bytes(level) as f64 / options.max_bytes_for_level(level) as f64;
    }
    scores
}

/// Pick the most urgent compaction that does not conflict with the
/// in-flight jobs holding `busy` (their claimed input file numbers), or
/// `None` when every level is within budget or every over-budget candidate
/// conflicts. `compact_pointer` rotates the victim file per level across
/// calls so one hot level does not starve the key space.
///
/// Conflict rule: a candidate is rejected when any of its would-be inputs
/// is already claimed. Because inputs always include *every* next-level
/// file overlapping the base range, disjoint claims imply disjoint output
/// key ranges, so non-conflicting compactions can run concurrently and
/// commit in any order.
pub fn pick_compaction(
    version: &Version,
    options: &Options,
    compact_pointer: &mut [Vec<u8>],
    busy: &BTreeSet<u64>,
) -> Option<Compaction> {
    let scores = level_scores(version, options);
    // Most urgent level first, but fall through to less urgent levels when
    // the urgent one is fully claimed by in-flight work.
    let mut over: Vec<(usize, f64)> =
        scores.iter().copied().enumerate().filter(|&(_, s)| s >= 1.0).collect();
    over.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));
    over.into_iter().find_map(|(level, _)| pick_at_level(version, level, compact_pointer, busy))
}

fn pick_at_level(
    version: &Version,
    level: usize,
    compact_pointer: &mut [Vec<u8>],
    busy: &BTreeSet<u64>,
) -> Option<Compaction> {
    if level == 0 {
        // Merge every L0 file: they overlap each other anyway, and taking
        // all of them empties L0 in one shot. That also means at most one
        // L0→L1 compaction can be in flight: any L0 or overlapped-L1 claim
        // blocks the next pick.
        let base = version.levels[0].clone();
        if base.is_empty() || version.range_claimed(0, None, None, busy) {
            return None;
        }
        let begin =
            base.iter().map(|f| extract_user_key(&f.smallest)).min().expect("non-empty").to_vec();
        let end =
            base.iter().map(|f| extract_user_key(&f.largest)).max().expect("non-empty").to_vec();
        if version.range_claimed(1, Some(&begin), Some(&end), busy) {
            return None;
        }
        let overlap = version.overlapping_files(1, Some(&begin), Some(&end));
        return Some(Compaction { level: 0, inputs: [base, overlap] });
    }
    // Rotate through the level by key: first file starting after the
    // pointer, wrapping to the first file. Conflicting candidates are
    // skipped instead of picked, so a busy key range does not block
    // compacting the rest of the level.
    let files = &version.levels[level];
    if files.is_empty() {
        return None;
    }
    let start = files
        .iter()
        .position(|f| {
            compact_pointer[level].is_empty()
                || internal_compare(&f.smallest, &compact_pointer[level])
                    == std::cmp::Ordering::Greater
        })
        .unwrap_or(0);
    for step in 0..files.len() {
        let f = &files[(start + step) % files.len()];
        if busy.contains(&f.number) {
            continue;
        }
        let begin = extract_user_key(&f.smallest).to_vec();
        let end = extract_user_key(&f.largest).to_vec();
        if version.range_claimed(level + 1, Some(&begin), Some(&end), busy) {
            continue;
        }
        let overlap = version.overlapping_files(level + 1, Some(&begin), Some(&end));
        compact_pointer[level] = f.largest.clone();
        return Some(Compaction { level, inputs: [vec![Arc::clone(f)], overlap] });
    }
    None
}

/// Lazy iterator over the disjoint, sorted files of one level (> 0): opens
/// at most one table at a time.
pub struct LevelIterator {
    files: Vec<Arc<FileMetaData>>,
    provider: Arc<dyn TableProvider>,
    index: usize,
    current: Option<TableIter>,
    read_opts: ReadOptions,
}

impl LevelIterator {
    /// Iterate `files`, which must be range-disjoint and sorted by smallest
    /// key (i.e. a level > 0 file list, or compaction inputs from one).
    pub fn new(files: Vec<Arc<FileMetaData>>, provider: Arc<dyn TableProvider>) -> Self {
        Self::with_options(files, provider, ReadOptions::default())
    }

    /// Like [`LevelIterator::new`] with per-read tuning passed down to each
    /// table iterator (readahead for sequential scans).
    pub fn with_options(
        files: Vec<Arc<FileMetaData>>,
        provider: Arc<dyn TableProvider>,
        read_opts: ReadOptions,
    ) -> Self {
        debug_assert!(files
            .windows(2)
            .all(|w| internal_compare(&w[0].largest, &w[1].smallest) == std::cmp::Ordering::Less));
        LevelIterator { files, provider, index: 0, current: None, read_opts }
    }

    fn open_index(&mut self, index: usize) -> Result<()> {
        self.index = index;
        // A file whose smallest key is at or past the upper bound holds
        // nothing the scan can return; stopping here means bounded scans
        // never open (or prefetch from) tables beyond the bound.
        let in_bounds = index < self.files.len()
            && self
                .read_opts
                .iterate_upper_bound
                .as_deref()
                .is_none_or(|upper| extract_user_key(&self.files[index].smallest) < upper);
        self.current = if in_bounds {
            let table = self.provider.table(&self.files[index])?;
            Some(table.iter_with(self.read_opts.clone()))
        } else {
            None
        };
        Ok(())
    }

    fn skip_exhausted(&mut self) -> Result<()> {
        loop {
            match &self.current {
                Some(it) if !it.valid() => {
                    let next = self.index + 1;
                    self.open_index(next)?;
                    if let Some(it) = self.current.as_mut() {
                        it.seek_to_first()?;
                    }
                }
                _ => return Ok(()),
            }
        }
    }
}

impl InternalIterator for LevelIterator {
    fn seek_to_first(&mut self) -> Result<()> {
        self.open_index(0)?;
        if let Some(it) = self.current.as_mut() {
            it.seek_to_first()?;
        }
        self.skip_exhausted()
    }

    fn seek(&mut self, target: &[u8]) -> Result<()> {
        // First file whose largest key is >= target.
        let idx = self
            .files
            .partition_point(|f| internal_compare(&f.largest, target) == std::cmp::Ordering::Less);
        self.open_index(idx)?;
        if let Some(it) = self.current.as_mut() {
            it.seek(target)?;
        }
        self.skip_exhausted()
    }

    fn next(&mut self) -> Result<()> {
        let Some(it) = self.current.as_mut() else {
            return Err(crate::error::Error::corruption("next on invalid level iterator"));
        };
        it.next()?;
        self.skip_exhausted()
    }

    fn valid(&self) -> bool {
        self.current.as_ref().is_some_and(|it| it.valid())
    }

    fn key(&self) -> &[u8] {
        self.current.as_ref().expect("valid").key()
    }

    fn value(&self) -> &[u8] {
        self.current.as_ref().expect("valid").value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sstable::TableBuilder;
    use crate::types::{make_internal_key, make_lookup_key, ValueType};
    use storage::{Env, MemEnv};

    fn meta(number: u64, small: &str, large: &str, size: u64) -> Arc<FileMetaData> {
        Arc::new(FileMetaData {
            number,
            file_size: size,
            smallest: make_internal_key(small.as_bytes(), 100, ValueType::Value),
            largest: make_internal_key(large.as_bytes(), 1, ValueType::Value),
        })
    }

    #[test]
    fn no_compaction_when_within_budget() {
        let options = Options::default();
        let mut version = Version::empty(7);
        version.levels[0] = vec![meta(1, "a", "b", 100)];
        let mut ptrs = vec![Vec::new(); 7];
        assert!(pick_compaction(&version, &options, &mut ptrs, &BTreeSet::new()).is_none());
    }

    #[test]
    fn l0_trigger_picks_all_l0_plus_overlap() {
        let options = Options { l0_compaction_trigger: 2, ..Options::default() };
        let mut version = Version::empty(7);
        version.levels[0] = vec![meta(3, "d", "k", 100), meta(2, "a", "f", 100)];
        version.levels[1] = vec![meta(1, "a", "c", 100), meta(4, "m", "z", 100)];
        let mut ptrs = vec![Vec::new(); 7];
        let c = pick_compaction(&version, &options, &mut ptrs, &BTreeSet::new()).unwrap();
        assert_eq!(c.level, 0);
        assert_eq!(c.inputs[0].len(), 2);
        // Range a..k overlaps only the first L1 file.
        assert_eq!(c.inputs[1].len(), 1);
        assert_eq!(c.inputs[1][0].number, 1);
        assert_eq!(c.output_level(), 1);
        assert_eq!(c.input_bytes(), 300);
    }

    #[test]
    fn size_trigger_picks_deep_level() {
        let options = Options {
            max_bytes_for_level_base: 1000,
            l0_compaction_trigger: 100,
            ..Options::default()
        };
        let mut version = Version::empty(7);
        version.levels[1] = vec![meta(1, "a", "f", 900), meta(2, "g", "p", 900)];
        version.levels[2] = vec![meta(3, "a", "e", 100)];
        let mut ptrs = vec![Vec::new(); 7];
        let c = pick_compaction(&version, &options, &mut ptrs, &BTreeSet::new()).unwrap();
        assert_eq!(c.level, 1);
        assert_eq!(c.inputs[0].len(), 1);
        assert_eq!(c.inputs[0][0].number, 1);
        assert_eq!(c.inputs[1].len(), 1); // a..f overlaps L2's a..e
    }

    #[test]
    fn compact_pointer_rotates_victims() {
        let options = Options {
            max_bytes_for_level_base: 100,
            l0_compaction_trigger: 100,
            ..Options::default()
        };
        let mut version = Version::empty(7);
        version.levels[1] = vec![meta(1, "a", "c", 200), meta(2, "d", "f", 200)];
        let mut ptrs = vec![Vec::new(); 7];
        let c1 = pick_compaction(&version, &options, &mut ptrs, &BTreeSet::new()).unwrap();
        assert_eq!(c1.inputs[0][0].number, 1);
        let c2 = pick_compaction(&version, &options, &mut ptrs, &BTreeSet::new()).unwrap();
        assert_eq!(c2.inputs[0][0].number, 2, "pointer must advance past file 1");
        let c3 = pick_compaction(&version, &options, &mut ptrs, &BTreeSet::new()).unwrap();
        assert_eq!(c3.inputs[0][0].number, 1, "pointer wraps");
    }

    #[test]
    fn busy_inputs_are_never_picked_twice() {
        let options = Options {
            max_bytes_for_level_base: 100,
            l0_compaction_trigger: 100,
            ..Options::default()
        };
        let mut version = Version::empty(7);
        version.levels[1] = vec![meta(1, "a", "c", 200), meta(2, "d", "f", 200)];
        version.levels[2] = vec![meta(3, "a", "c", 10), meta(4, "d", "f", 10)];
        let mut ptrs = vec![Vec::new(); 7];
        let c1 = pick_compaction(&version, &options, &mut ptrs, &BTreeSet::new()).unwrap();
        assert_eq!(c1.inputs[0][0].number, 1);
        let busy: BTreeSet<u64> = c1.all_inputs().map(|(_, f)| f.number).collect();
        // With file 1 (and its L2 overlap, file 3) claimed, the pick lands
        // on the disjoint candidate instead of conflicting or giving up.
        let c2 = pick_compaction(&version, &options, &mut ptrs, &busy).unwrap();
        assert_eq!(c2.inputs[0][0].number, 2);
        assert!(c2.all_inputs().all(|(_, f)| !busy.contains(&f.number)));
        // Everything claimed: nothing left to pick.
        let all: BTreeSet<u64> =
            busy.union(&c2.all_inputs().map(|(_, f)| f.number).collect()).copied().collect();
        assert!(pick_compaction(&version, &options, &mut ptrs, &all).is_none());
    }

    #[test]
    fn second_l0_compaction_is_blocked_while_one_runs() {
        let options = Options { l0_compaction_trigger: 2, ..Options::default() };
        let mut version = Version::empty(7);
        version.levels[0] = vec![meta(3, "d", "k", 100), meta(2, "a", "f", 100)];
        let mut ptrs = vec![Vec::new(); 7];
        let c = pick_compaction(&version, &options, &mut ptrs, &BTreeSet::new()).unwrap();
        assert_eq!(c.level, 0);
        let busy: BTreeSet<u64> = c.all_inputs().map(|(_, f)| f.number).collect();
        // Even if another flush has landed a fresh L0 file meanwhile, a
        // second L0 merge would take the claimed files too; it must wait.
        version.levels[0].push(meta(9, "a", "z", 100));
        assert!(pick_compaction(&version, &options, &mut ptrs, &busy).is_none());
    }

    #[test]
    fn busy_urgent_level_falls_through_to_next_over_budget_level() {
        let options = Options {
            max_bytes_for_level_base: 100,
            level_size_multiplier: 10,
            l0_compaction_trigger: 100,
            ..Options::default()
        };
        let mut version = Version::empty(7);
        // L1 is the most over budget but fully claimed; L2 is also over
        // budget and free.
        version.levels[1] = vec![meta(1, "a", "c", 100_000)];
        version.levels[2] = vec![meta(2, "p", "r", 100_000)];
        let mut ptrs = vec![Vec::new(); 7];
        let busy: BTreeSet<u64> = [1].into_iter().collect();
        let c = pick_compaction(&version, &options, &mut ptrs, &busy).unwrap();
        assert_eq!(c.level, 2);
        assert_eq!(c.inputs[0][0].number, 2);
    }

    #[test]
    fn last_level_is_never_scored() {
        let options = Options { max_bytes_for_level_base: 1, num_levels: 3, ..Options::default() };
        let mut version = Version::empty(3);
        version.levels[2] = vec![meta(1, "a", "z", u64::MAX / 2)];
        let scores = level_scores(&version, &options);
        assert_eq!(scores[2], 0.0);
    }

    struct EnvProvider {
        env: MemEnv,
        options: Options,
    }

    impl TableProvider for EnvProvider {
        fn table(&self, meta: &FileMetaData) -> Result<Arc<Table>> {
            let file = self.env.open_random(&crate::version::sst_name(meta.number))?;
            Ok(Arc::new(Table::open(file, meta.number, self.options.clone(), None)?))
        }
    }

    fn build_file(
        env: &MemEnv,
        options: &Options,
        number: u64,
        keys: &[&str],
    ) -> Arc<FileMetaData> {
        let name = crate::version::sst_name(number);
        let mut b = TableBuilder::new(env.new_writable(&name).unwrap(), options.clone());
        for k in keys {
            let ik = make_internal_key(k.as_bytes(), 50, ValueType::Value);
            b.add(&ik, format!("v-{k}").as_bytes()).unwrap();
        }
        let size = b.finish().unwrap();
        Arc::new(FileMetaData {
            number,
            file_size: size,
            smallest: make_internal_key(keys[0].as_bytes(), 50, ValueType::Value),
            largest: make_internal_key(keys[keys.len() - 1].as_bytes(), 50, ValueType::Value),
        })
    }

    #[test]
    fn level_iterator_walks_files_in_order() {
        let env = MemEnv::new();
        let options = Options::small_for_tests();
        let f1 = build_file(&env, &options, 1, &["a", "b", "c"]);
        let f2 = build_file(&env, &options, 2, &["m", "n"]);
        let f3 = build_file(&env, &options, 3, &["x", "y", "z"]);
        let provider = Arc::new(EnvProvider { env, options });
        let mut it = LevelIterator::new(vec![f1, f2, f3], provider);
        it.seek_to_first().unwrap();
        let mut got = Vec::new();
        while it.valid() {
            got.push(String::from_utf8(extract_user_key(it.key()).to_vec()).unwrap());
            it.next().unwrap();
        }
        assert_eq!(got, vec!["a", "b", "c", "m", "n", "x", "y", "z"]);
    }

    #[test]
    fn level_iterator_seeks_across_file_boundaries() {
        let env = MemEnv::new();
        let options = Options::small_for_tests();
        let f1 = build_file(&env, &options, 1, &["a", "c"]);
        let f2 = build_file(&env, &options, 2, &["m", "p"]);
        let provider = Arc::new(EnvProvider { env, options });
        let mut it = LevelIterator::new(vec![f1, f2], provider);
        it.seek(&make_lookup_key(b"d", (1 << 55) - 1)).unwrap();
        assert!(it.valid());
        assert_eq!(extract_user_key(it.key()), b"m");
        it.seek(&make_lookup_key(b"q", (1 << 55) - 1)).unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn level_iterator_empty_file_list() {
        let env = MemEnv::new();
        let options = Options::small_for_tests();
        let provider = Arc::new(EnvProvider { env, options });
        let mut it = LevelIterator::new(vec![], provider);
        it.seek_to_first().unwrap();
        assert!(!it.valid());
    }
}
