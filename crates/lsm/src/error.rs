//! Engine error type, layered over storage errors.

use std::fmt;

use storage::StorageError;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the LSM engine.
#[derive(Debug)]
pub enum Error {
    /// Underlying storage failed.
    Storage(StorageError),
    /// Persistent state failed validation (bad checksum, truncated block,
    /// malformed manifest...).
    Corruption(String),
    /// The database is shutting down or already closed.
    Closed,
    /// Caller misuse (e.g. empty key).
    InvalidArgument(String),
}

impl Error {
    /// Convenience constructor for corruption errors.
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Clone-equivalent (the type cannot derive `Clone` because
    /// `std::io::Error` is not `Clone`). Used by group commit to hand every
    /// follower in a write group its own copy of the leader's result.
    pub fn duplicate(&self) -> Error {
        match self {
            Error::Storage(e) => Error::Storage(e.duplicate()),
            Error::Corruption(msg) => Error::Corruption(msg.clone()),
            Error::Closed => Error::Closed,
            Error::InvalidArgument(msg) => Error::InvalidArgument(msg.clone()),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Storage(e) => write!(f, "storage: {e}"),
            Error::Corruption(msg) => write!(f, "corruption: {msg}"),
            Error::Closed => write!(f, "database closed"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for Error {
    fn from(e: StorageError) -> Self {
        match e {
            StorageError::Corruption(msg) => Error::Corruption(msg),
            other => Error::Storage(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_corruption_becomes_engine_corruption() {
        let e: Error = StorageError::corruption("bad crc").into();
        assert!(matches!(e, Error::Corruption(_)));
    }

    #[test]
    fn other_storage_errors_wrap() {
        let e: Error = StorageError::NotFound("f".into()).into();
        assert!(matches!(e, Error::Storage(_)));
        assert!(e.to_string().contains("not found"));
    }
}
