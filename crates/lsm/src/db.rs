//! The `Db` facade: write batches, point reads, range scans, snapshots,
//! background flush/compaction, and crash recovery.
//!
//! ## Tiering hook
//!
//! Every table file the engine creates is first built on the local [`Env`];
//! afterwards the [`FileRouter`] decides where it lives. The default
//! [`LocalFileRouter`] leaves files where they were built. The `rocksmash`
//! crate supplies a router that uploads cold-level files to the cloud store
//! and serves reads through its LSM-aware persistent cache — that router is
//! the integration point corresponding to the paper's RocksDB changes.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rayon::prelude::*;
use storage::{Env, RandomAccessFile};

use crate::batch::WriteBatch;
use crate::cache::BlockCache;
use crate::commit::{shard_of, GroupCommitStats, GroupQueue, Slot};
use crate::compaction::{level_scores, pick_compaction, Compaction, LevelIterator, TableProvider};
use crate::error::{Error, Result};
use crate::iterator::{InternalIterator, MergingIterator};
use crate::memtable::{LookupResult, MemTable};
use crate::options::{Options, ReadOptions};
use crate::prefetch::Prefetcher;
use crate::sstable::{Table, TableBuilder};
use crate::types::{
    extract_user_key, make_lookup_key, parse_internal_key, SequenceNumber, ValueType, MAX_SEQUENCE,
};
use crate::version::{log_name, sst_name, FileMetaData, Version, VersionEdit, VersionSet};
use crate::wal::{LogReader, LogWriter};

/// Decides where finished table files live and how they are opened.
///
/// The engine always *builds* tables on the local `Env` (compaction needs
/// cheap sequential writes); the router then publishes, opens, and deletes
/// them. All methods receive the engine's local `Env`.
pub trait FileRouter: Send + Sync {
    /// A finished table `number` was written locally at level `level`.
    /// Move/copy/upload it as placement policy dictates.
    fn publish_table(&self, env: &dyn Env, number: u64, level: usize) -> storage::Result<()>;

    /// Open table `number` for reads, wherever it lives.
    fn open_table(&self, env: &dyn Env, number: u64) -> storage::Result<Arc<dyn RandomAccessFile>>;

    /// Table `number` is obsolete; remove it from every tier.
    fn delete_table(&self, env: &dyn Env, number: u64) -> storage::Result<()>;

    /// Batch form of [`FileRouter::delete_table`] for tables that became
    /// obsolete together (e.g. all inputs of one compaction). Routers with
    /// per-file bookkeeping override this to amortize it; a failure on one
    /// file does not stop the rest of the batch — the first error is
    /// reported after every file has been attempted.
    fn delete_tables(&self, env: &dyn Env, numbers: &[u64]) -> storage::Result<()> {
        let mut first_err = None;
        for &number in numbers {
            if let Err(e) = self.delete_table(env, number) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// A periodic background job an outer layer installs on the engine's
/// worker pool via [`Db::set_external_job`] (e.g. the tier-promotion pass
/// in `rocksmash`). The pool claims it at the LOWEST priority — only when
/// no flush is queued and no compaction is runnable — at most one instance
/// at a time, and re-arms it `interval` after each completion.
///
/// A failing run is journaled as a `BgError` event but deliberately does
/// NOT set the engine's sticky background error: promotion is advisory
/// work, and a flaky cloud must never stall writers.
pub trait ExternalJob: Send + Sync {
    /// Short name used as the `BgError` context on failure.
    fn name(&self) -> &str;

    /// Execute one pass. Runs with no engine locks held; use the view for
    /// anything that needs engine state.
    fn run(&self, view: &BgView<'_>) -> Result<()>;
}

/// Engine facilities exposed to an [`ExternalJob`] while it runs. Holds no
/// locks itself; each method acquires and releases what it needs, so jobs
/// may call them freely mid-pass.
pub struct BgView<'a> {
    shared: &'a Arc<DbShared>,
}

impl BgView<'_> {
    /// The current version (live file layout snapshot).
    pub fn current_version(&self) -> Arc<Version> {
        self.shared.state.lock().versions.current()
    }

    /// Drop any cached open handle for table `number`, forcing the next
    /// read to re-open it through the router. Required after a file
    /// changes tier, or reads keep going to the old location.
    pub fn evict_table(&self, number: u64) {
        self.shared.evict_table(number);
    }
}

/// Router that keeps every table on the local environment.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalFileRouter;

impl FileRouter for LocalFileRouter {
    fn publish_table(&self, _env: &dyn Env, _number: u64, _level: usize) -> storage::Result<()> {
        Ok(())
    }

    fn open_table(&self, env: &dyn Env, number: u64) -> storage::Result<Arc<dyn RandomAccessFile>> {
        env.open_random(&sst_name(number))
    }

    fn delete_table(&self, env: &dyn Env, number: u64) -> storage::Result<()> {
        env.delete(&sst_name(number))
    }
}

/// Engine-level counters.
#[derive(Debug, Default)]
pub struct DbStats {
    /// Write batches applied.
    pub writes: AtomicU64,
    /// Point lookups served. Each key resolved through [`Db::multi_get`]
    /// also counts once here, even though the whole batch shares a single
    /// memtable/version snapshot (see `multi_get` for those semantics).
    pub gets: AtomicU64,
    /// Memtable flushes completed.
    pub flushes: AtomicU64,
    /// Bytes written to L0 by memtable flushes.
    pub flush_bytes: AtomicU64,
    /// Compactions completed.
    pub compactions: AtomicU64,
    /// Bytes read by compaction inputs.
    pub compact_bytes_in: AtomicU64,
    /// Bytes written by compaction outputs.
    pub compact_bytes_out: AtomicU64,
    /// Nanoseconds writers spent stalled waiting for room.
    pub stall_ns: AtomicU64,
    /// Flush attempts that failed and were requeued for a backed-off retry.
    pub flush_retries: AtomicU64,
    /// Range-partitioned subcompaction workers run (counted only when a
    /// picked compaction was actually split).
    pub subcompactions: AtomicU64,
    /// Most compactions ever observed executing at the same time.
    pub compaction_parallelism_peak: AtomicU64,
    /// Deepest the immutable-memtable flush queue has ever been.
    pub imm_queue_peak: AtomicU64,
    /// Per-level amplification accounting, maintained at version-edit
    /// apply time (flush and compaction commits).
    pub levels: crate::levels::LevelAccounting,
}

impl DbStats {
    fn add(&self, counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    fn peak(&self, counter: &AtomicU64, v: u64) {
        counter.fetch_max(v, Ordering::Relaxed);
    }
}

/// A consistent read point. Reads through a snapshot ignore writes with a
/// higher sequence; compaction keeps versions the snapshot can still see.
pub struct Snapshot {
    seq: SequenceNumber,
    registry: Arc<Mutex<BTreeMap<SequenceNumber, usize>>>,
}

impl Snapshot {
    /// The sequence number this snapshot reads at.
    pub fn sequence(&self) -> SequenceNumber {
        self.seq
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        let mut reg = self.registry.lock();
        if let Some(count) = reg.get_mut(&self.seq) {
            *count -= 1;
            if *count == 0 {
                reg.remove(&self.seq);
            }
        }
    }
}

/// One sealed memtable in the flush queue.
struct ImmEntry {
    /// Monotonic flush ticket. [`Db::seal_memtable`] hands it out; waiters
    /// compare it against the queue front to tell when the flush landed.
    id: u64,
    /// Write shard this memtable was sealed from. Point reads probe only
    /// entries whose shard matches the key's hash route.
    shard: usize,
    mem: Arc<MemTable>,
    /// WAL number that became active on the owning shard when this memtable
    /// was sealed — its contents live entirely in logs older than this.
    wal_floor: u64,
    /// Taken by a background flush job. The entry stays in the queue (and
    /// visible to readers) until its L0 table commits; a failed flush
    /// unclaims it so a later retry preserves the data.
    claimed: bool,
}

/// One write shard's foreground state: its active memtable and WAL stream.
/// Swapped together under the shard lock when the memtable is sealed, so a
/// record appended to WAL `n` always lands in a memtable whose eventual
/// floor is > `n`.
struct ShardCore {
    mem: Arc<MemTable>,
    wal: Option<LogWriter>,
}

/// A hash partition of the write path. Writers on different shards share
/// nothing on the hot path: each shard has its own memtable, WAL stream,
/// and group-commit queue. The db-wide state lock is only taken for
/// version/metadata transitions (sealing, flush commits).
struct WriteShard {
    core: Mutex<ShardCore>,
    /// The active WAL number, mirrored outside `core` because flush commits
    /// hold the state lock and the lock order is shard core → db state:
    /// they must read the min-active-WAL floor without touching core locks.
    /// Updated only while BOTH locks are held (sealing), so reads under
    /// either lock are exact.
    wal_number: AtomicU64,
    queue: GroupQueue,
}

/// Global sequence allocation and the visible-sequence watermark.
///
/// `next` hands out ranges with one atomic add — no db mutex on the write
/// path. A committed range is parked in `ledger` and `visible` advances
/// only over the contiguous committed prefix, so a reader never observes
/// sequence `s` while some `s' < s` is still uncommitted. That is what
/// makes a multi-shard `WriteBatch` atomic to snapshots: its whole range
/// becomes visible in one watermark step or not at all.
struct SeqState {
    next: AtomicU64,
    visible: AtomicU64,
    /// Committed-but-not-yet-visible ranges: start → inclusive end.
    ledger: Mutex<BTreeMap<u64, u64>>,
}

impl SeqState {
    fn new(last: SequenceNumber) -> Self {
        SeqState {
            next: AtomicU64::new(last + 1),
            visible: AtomicU64::new(last),
            ledger: Mutex::new(BTreeMap::new()),
        }
    }

    /// Reserve `n` consecutive sequence numbers; returns the first.
    fn allocate(&self, n: u64) -> SequenceNumber {
        self.next.fetch_add(n, Ordering::Relaxed)
    }

    /// Highest sequence visible to new reads.
    fn visible(&self) -> SequenceNumber {
        self.visible.load(Ordering::Acquire)
    }

    /// Highest sequence ever allocated (committed or not). Flush commits
    /// stamp this into the manifest: it may overshoot real data, and gaps
    /// are harmless because replay re-derives sequences from the logs.
    fn allocated_max(&self) -> SequenceNumber {
        self.next.load(Ordering::Relaxed) - 1
    }

    /// Mark `[start, end]` committed and advance the watermark over the
    /// contiguous committed prefix. Serialized by the ledger lock so two
    /// racing commits cannot publish the watermark out of order.
    fn commit(&self, start: SequenceNumber, end: SequenceNumber) {
        let mut ledger = self.ledger.lock();
        ledger.insert(start, end);
        let mut vis = self.visible.load(Ordering::Relaxed);
        while let Some((&s, &e)) = ledger.first_key_value() {
            if s > vis + 1 {
                break;
            }
            vis = vis.max(e);
            ledger.remove(&s);
        }
        self.visible.store(vis, Ordering::Release);
    }

    /// Raise both cursors to cover externally recovered data at `seq`.
    fn install(&self, seq: SequenceNumber) {
        self.next.fetch_max(seq + 1, Ordering::Relaxed);
        self.visible.fetch_max(seq, Ordering::Release);
    }
}

struct DbState {
    /// Sealed memtables awaiting flush, oldest first. Writers stall in
    /// `make_room` only once this queue holds `max_imm_memtables` entries.
    imm: VecDeque<ImmEntry>,
    next_imm_id: u64,
    /// Flush tickets that committed out of order (id → WAL floor), held
    /// until every older queue entry commits: the manifest's log number
    /// may only advance over a contiguous committed prefix, or a crash
    /// would drop WALs still covering unflushed older memtables.
    flush_done: BTreeMap<u64, u64>,
    versions: VersionSet,
    compact_pointer: Vec<Vec<u8>>,
    bg_error: Option<String>,
    /// Exponential delay applied to background claims after a failed job;
    /// zero while healthy (the failed-flush busy-loop fix).
    bg_backoff: Duration,
    bg_backoff_until: Option<Instant>,
    /// File numbers claimed as inputs by in-flight compactions. The state
    /// lock is released during each merge, so picking consults this set —
    /// a candidate touching any claimed file is skipped, which keeps
    /// concurrent compactions on disjoint inputs (and therefore disjoint
    /// output key ranges).
    compacting_inputs: BTreeSet<u64>,
    /// Compactions currently executing on the pool.
    compactions_inflight: usize,
    /// Highest `smallest_snapshot` any compaction has dropped obsolete
    /// versions against. A consistent read must capture a visible
    /// watermark at or above this before trusting the current version:
    /// the watermark is loaded before the state lock, and a compaction
    /// committing in between may have discarded exactly the key versions
    /// an older watermark still needs (`read_snapshot` retries then).
    drop_horizon: SequenceNumber,
    /// Superseded versions paired with the files their replacement
    /// obsoleted. A file is physically deleted only once every version
    /// that could reference it has been released by readers (the queue is
    /// age-ordered, so the front gates everything behind it).
    retired: VecDeque<(Arc<Version>, Vec<u64>)>,
    /// Periodic job installed by an outer layer (tier promotion); claimed
    /// by the worker pool at the lowest priority when due.
    external: Option<ExternalJobState>,
}

struct ExternalJobState {
    job: Arc<dyn ExternalJob>,
    interval: Duration,
    next_run: Instant,
    /// At most one instance runs at a time across the pool.
    running: bool,
}

struct TableCacheInner {
    map: HashMap<u64, Arc<Table>>,
    fifo: VecDeque<u64>,
}

const TABLE_CACHE_CAPACITY: usize = 512;

/// Background readahead workers per database.
const PREFETCH_WORKERS: usize = 2;

/// Below this many keys, `multi_get` stays serial: the rayon dispatch
/// overhead exceeds what fan-out saves on local (sub-µs) reads.
const MULTI_GET_PARALLEL_THRESHOLD: usize = 8;

/// Hard cap on the background pool regardless of
/// [`Options::max_background_jobs`], mirroring the `multi_get` pool bound.
const MAX_BG_POOL: usize = 16;

/// Hard cap on [`Options::write_shards`].
const MAX_WRITE_SHARDS: usize = 16;

/// First retry delay after a background failure; doubles per consecutive
/// failure up to [`BG_BACKOFF_MAX`].
const BG_BACKOFF_BASE: Duration = Duration::from_millis(10);
const BG_BACKOFF_MAX: Duration = Duration::from_secs(5);

/// Bound on every background/writer park. Nothing waits on a condvar
/// longer than this without re-checking shutdown and `bg_error`, so a dead
/// worker or a surfaced error is noticed promptly instead of hanging a
/// writer forever.
const BG_WAIT: Duration = Duration::from_millis(100);

/// Worker threads in the background flush/compaction pool.
fn bg_pool_size(options: &Options) -> usize {
    options.max_background_jobs.clamp(1, MAX_BG_POOL)
}

/// Shared fan-out pool for `multi_get`. One process-wide pool bounds the
/// total thread count no matter how many `Db` instances exist (benchmarks
/// open several side by side); keys from concurrent callers interleave
/// fairly because rayon work-steals per item.
fn multi_get_pool() -> &'static rayon::ThreadPool {
    static POOL: OnceLock<rayon::ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).clamp(4, 16);
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .thread_name(|i| format!("lsm-multiget-{i}"))
            .build()
            .expect("build multi_get pool")
    })
}

/// Everything one consistent read needs. The visible watermark is loaded
/// FIRST, then the per-shard memtables, then (atomically under the state
/// lock) the flush queue and version. Data only moves forward through
/// those structures (mem → imm → L0), so anything committed at or below
/// the captured watermark is present in at least one captured layer; a
/// memtable appearing both as active and sealed is the same `Arc` and
/// deduplicates by sequence.
struct ReadSnapshot {
    seq: SequenceNumber,
    /// Active memtable of each shard, indexed by shard.
    mems: Vec<Arc<MemTable>>,
    /// Sealed memtables newest-first (the probe order after `mems`), each
    /// tagged with its shard, including entries claimed by in-flight
    /// flushes — their data is not in any committed table yet.
    imm: Vec<(usize, Arc<MemTable>)>,
    version: Arc<Version>,
}

struct DbShared {
    options: Options,
    /// Live file numbers and the file-number floor as recovered from the
    /// MANIFEST, captured before any background activity. Startup garbage
    /// collection in outer layers must use these, not the current version,
    /// to avoid racing concurrent compactions.
    recovered_live: BTreeSet<u64>,
    recovered_next_file: u64,
    env: Arc<dyn Env>,
    router: Arc<dyn FileRouter>,
    block_cache: Option<Arc<BlockCache>>,
    /// Readahead pool; present whenever the block cache is (prefetched
    /// blocks are staged there, so without a cache there is nowhere to put
    /// them).
    prefetcher: Option<Arc<Prefetcher>>,
    /// Hash-partitioned write shards (`Options::write_shards`, clamped to
    /// `1..=16`). Lock order: a shard core lock is always taken BEFORE the
    /// state lock, never while holding it.
    shards: Vec<WriteShard>,
    /// Sequence allocation + visible watermark (no lock on the hot path).
    seq: SeqState,
    /// Group-commit counters shared by every shard's queue.
    group_stats: Arc<GroupCommitStats>,
    /// Mirrors `DbState::bg_error.is_some()` so the sharded write path can
    /// skip the state lock entirely while the scheduler is healthy.
    bg_error_flag: AtomicBool,
    state: Mutex<DbState>,
    /// Signals the background thread that work may be available.
    work_cv: Condvar,
    /// Signals writers stalled in `make_room` and `flush` waiters.
    room_cv: Condvar,
    tables: Mutex<TableCacheInner>,
    snapshots: Arc<Mutex<BTreeMap<SequenceNumber, usize>>>,
    /// `Arc` so detached samplers (stats-dump thread, metrics exporter)
    /// can read counters without borrowing the `Db`.
    stats: Arc<DbStats>,
    /// Latency histograms plus the structured event journal. Always
    /// present; when no observer was supplied via [`Options::observer`]
    /// this is a disabled one, so every hot-path hook costs one branch.
    obs: Arc<obs::Observer>,
    shutdown: AtomicBool,
}

impl DbShared {
    fn get_table(&self, meta: &FileMetaData) -> Result<Arc<Table>> {
        {
            let cache = self.tables.lock();
            if let Some(t) = cache.map.get(&meta.number) {
                return Ok(Arc::clone(t));
            }
        }
        // Open outside the lock: cloud-backed opens can be slow.
        let file = self.router.open_table(&*self.env, meta.number)?;
        let mut table =
            Table::open(file, meta.number, self.options.clone(), self.block_cache.clone())?;
        if let Some(prefetcher) = &self.prefetcher {
            table.set_prefetcher(Arc::clone(prefetcher));
        }
        let table = Arc::new(table);
        let mut cache = self.tables.lock();
        if cache.map.insert(meta.number, Arc::clone(&table)).is_none() {
            cache.fifo.push_back(meta.number);
            while cache.fifo.len() > TABLE_CACHE_CAPACITY {
                let victim = cache.fifo.pop_front().expect("non-empty");
                cache.map.remove(&victim);
            }
        }
        Ok(table)
    }

    fn evict_table(&self, number: u64) {
        let mut cache = self.tables.lock();
        if cache.map.remove(&number).is_some() {
            cache.fifo.retain(|&n| n != number);
        }
    }

    fn smallest_snapshot(&self, last_sequence: SequenceNumber) -> SequenceNumber {
        self.snapshots.lock().keys().next().copied().unwrap_or(last_sequence)
    }

    /// Capture a consistent read point. The watermark is loaded BEFORE any
    /// structure: a write committing afterwards carries a higher sequence
    /// and is invisible, and data at or below the watermark only migrates
    /// forward (mem → imm → L0) into layers captured later, so nothing the
    /// snapshot may read can be lost between the captures.
    fn read_snapshot(&self, seq_override: Option<SequenceNumber>) -> ReadSnapshot {
        loop {
            let seq = seq_override.unwrap_or_else(|| self.seq.visible());
            let mems: Vec<Arc<MemTable>> =
                self.shards.iter().map(|s| Arc::clone(&s.core.lock().mem)).collect();
            let state = self.state.lock();
            // A compaction that committed between the watermark load above
            // and this lock may have dropped key versions an older
            // watermark still resolves to; recapture with a fresh one.
            // Registered snapshots (`seq_override`) hold the horizon back
            // via `smallest_snapshot`, so they never trip this.
            if seq_override.is_none() && seq < state.drop_horizon {
                drop(state);
                continue;
            }
            return ReadSnapshot {
                seq,
                mems,
                imm: state.imm.iter().rev().map(|e| (e.shard, Arc::clone(&e.mem))).collect(),
                version: state.versions.current(),
            };
        }
    }

    /// Memtable byte budget of one shard: the configured write buffer is
    /// split evenly so total memory stays `write_buffer_size` regardless of
    /// the shard count.
    fn shard_budget(&self) -> usize {
        (self.options.write_buffer_size / self.shards.len().max(1)).max(1)
    }

    /// The oldest WAL still active on any shard. Every flush-commit floor
    /// is clamped to this: a sealed memtable's own floor may exceed another
    /// shard's active log, which still covers that shard's unflushed
    /// writes. 0 when the engine WAL is disabled. Exact under the state
    /// lock (shard numbers only change while it is held).
    fn min_active_wal(&self) -> u64 {
        self.shards.iter().map(|s| s.wal_number.load(Ordering::Relaxed)).min().unwrap_or(0)
    }
}

impl TableProvider for DbShared {
    fn table(&self, meta: &FileMetaData) -> Result<Arc<Table>> {
        self.get_table(meta)
    }
}

/// An open LSM database.
pub struct Db {
    shared: Arc<DbShared>,
    bg_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Db {
    /// Open (creating if necessary) a database on `env` with the default
    /// local-only file router.
    pub fn open(env: Arc<dyn Env>, options: Options) -> Result<Db> {
        Self::open_with_router(env, options, Arc::new(LocalFileRouter))
    }

    /// Open with a custom [`FileRouter`] (the tiering hook).
    pub fn open_with_router(
        env: Arc<dyn Env>,
        options: Options,
        router: Arc<dyn FileRouter>,
    ) -> Result<Db> {
        let mut versions = VersionSet::open(Arc::clone(&env), options.num_levels)?;
        let block_cache = if options.block_cache_bytes > 0 {
            Some(Arc::new(BlockCache::new(options.block_cache_bytes)))
        } else {
            None
        };
        let observer =
            options.observer.clone().unwrap_or_else(|| Arc::new(obs::Observer::disabled()));
        let prefetcher =
            block_cache.as_ref().map(|_| Prefetcher::new(PREFETCH_WORKERS, Arc::clone(&observer)));

        // Recover WAL contents newer than the manifest's log number.
        let mut recovered = Vec::new();
        let mut max_seq = versions.last_sequence;
        for name in env.list("wal/")? {
            let number: u64 = match name
                .strip_prefix("wal/")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse().ok())
            {
                Some(n) => n,
                None => continue,
            };
            if number >= versions.log_number {
                recovered.push((number, name));
            }
        }
        recovered.sort();

        // Replay every surviving log into ONE memtable at the stamped
        // sequences. Sharded incarnations leave one log stream per shard;
        // entries are sequence-stamped, so merging them is order-independent
        // and reproduces the global commit order regardless of how (or with
        // how many shards) the logs were written.
        let mem = Arc::new(MemTable::new());
        for (_, name) in &recovered {
            let mut reader = LogReader::new(env.open_random(name)?);
            while let Some(record) = reader.read_record()? {
                let batch = WriteBatch::from_data(&record)?;
                if batch.count() == 0 {
                    continue;
                }
                mem.apply_batch(&batch);
                max_seq = max_seq.max(batch.sequence() + batch.count() as u64 - 1);
            }
        }
        versions.last_sequence = max_seq;
        let recovered_live = versions.live_files();
        let recovered_next_file = versions.next_file_number;

        // Build the write shards up front — each gets a fresh WAL stream
        // numbered above every recovered log, so the recovery floor can
        // advance past the replayed set in one step below.
        let nshards = options.write_shards.clamp(1, MAX_WRITE_SHARDS);
        let group_stats = Arc::new(GroupCommitStats::default());
        let mut shards = Vec::with_capacity(nshards);
        for _ in 0..nshards {
            let (wal, number) = if options.wal_enabled {
                let number = versions.new_file_number();
                (Some(LogWriter::new(env.new_writable(&log_name(number))?)), number)
            } else {
                (None, 0)
            };
            shards.push(WriteShard {
                core: Mutex::new(ShardCore { mem: Arc::new(MemTable::new()), wal }),
                wal_number: AtomicU64::new(number),
                queue: GroupQueue::new(
                    options.group_commit_max_batches,
                    options.group_commit_max_bytes,
                    Arc::clone(&group_stats),
                ),
            });
        }

        let shared = Arc::new(DbShared {
            recovered_live,
            recovered_next_file,
            env: Arc::clone(&env),
            router,
            block_cache,
            prefetcher,
            shards,
            seq: SeqState::new(max_seq),
            group_stats,
            bg_error_flag: AtomicBool::new(false),
            state: Mutex::new(DbState {
                imm: VecDeque::new(),
                next_imm_id: 1,
                flush_done: BTreeMap::new(),
                versions,
                compact_pointer: vec![Vec::new(); options.num_levels],
                bg_error: None,
                bg_backoff: Duration::ZERO,
                bg_backoff_until: None,
                compacting_inputs: BTreeSet::new(),
                compactions_inflight: 0,
                drop_horizon: 0,
                retired: VecDeque::new(),
                external: None,
            }),
            work_cv: Condvar::new(),
            room_cv: Condvar::new(),
            tables: Mutex::new(TableCacheInner { map: HashMap::new(), fifo: VecDeque::new() }),
            snapshots: Arc::new(Mutex::new(BTreeMap::new())),
            stats: Arc::new(DbStats::default()),
            obs: observer,
            shutdown: AtomicBool::new(false),
            options,
        });

        // Flush whatever the WAL replay recovered, then start from a clean
        // log. Done synchronously so a crash loop cannot grow the WAL set.
        {
            let mut state = shared.state.lock();
            if !mem.is_empty() {
                Self::write_level0_table(&shared, &mut state, &mem, FlushCommit::Direct)?;
            }
            if shared.options.wal_enabled {
                let edit =
                    VersionEdit { log_number: Some(shared.min_active_wal()), ..Default::default() };
                state.versions.log_and_apply(edit)?;
            }
            Self::gc_obsolete_files(&shared, &mut state)?;
            // Seed the per-level shape from the recovered tree; the byte
            // flows start at zero (recovery bypasses the flow hooks).
            shared.stats.levels.refresh_shape(&state.versions.current(), &shared.options);
        }

        let db = Db { shared: Arc::clone(&shared), bg_threads: Mutex::new(Vec::new()) };
        let workers = bg_pool_size(&shared.options);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let bg_shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("lsm-bg-{i}"))
                    .spawn(move || background_worker(bg_shared))
                    .expect("spawn background thread"),
            );
        }
        *db.bg_threads.lock() = handles;
        Ok(db)
    }

    /// Engine statistics.
    pub fn stats(&self) -> &DbStats {
        &self.shared.stats
    }

    /// Cloneable handle to the engine statistics, for detached threads
    /// (stats sampler, metrics exporter) that must outlive a borrow.
    pub fn stats_handle(&self) -> Arc<DbStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Handle to the published current version: observers clone this once
    /// and later list the live tree (per-level files and sizes) without
    /// taking the engine state lock — a stalled write path can never
    /// block a stats scrape through it.
    pub fn version_handle(&self) -> Arc<parking_lot::RwLock<Arc<Version>>> {
        self.shared.state.lock().versions.published()
    }

    /// The observability handle this engine records into: per-op latency
    /// histograms and the event journal. A disabled observer unless one was
    /// supplied via [`Options::observer`].
    pub fn observer(&self) -> &Arc<obs::Observer> {
        &self.shared.obs
    }

    /// Engine options this database was opened with.
    pub fn options(&self) -> &Options {
        &self.shared.options
    }

    /// The block cache, when enabled.
    pub fn block_cache(&self) -> Option<&Arc<BlockCache>> {
        self.shared.block_cache.as_ref()
    }

    /// The background readahead pool, when enabled (requires a block cache).
    pub fn prefetcher(&self) -> Option<&Arc<Prefetcher>> {
        self.shared.prefetcher.as_ref()
    }

    /// Insert or overwrite one key.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.put(key, value);
        self.write(batch)
    }

    /// Delete one key.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.delete(key);
        self.write(batch)
    }

    /// Apply a batch atomically.
    ///
    /// The batch is hash-partitioned across the write shards, a contiguous
    /// sequence range is reserved with one atomic add, and each sub-batch
    /// rides its shard's group-commit queue (one WAL append + at most one
    /// fsync per group). The whole range becomes visible to readers in a
    /// single watermark step once every shard has committed, so the batch
    /// stays atomic to snapshots even when it spans shards.
    pub fn write(&self, mut batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let shared = &self.shared;
        let timer = shared.obs.start();
        let _perf = shared.obs.perf_guard(false);
        let _span = shared.obs.span_if_perf("write");
        let count = batch.count() as u64;
        let nshards = shared.shards.len();
        let result = if nshards == 1 {
            Self::make_room_shard(shared, 0)?;
            let start = shared.seq.allocate(count);
            batch.set_sequence(start);
            let submitted =
                shared.shards[0].queue.submit(batch, |group| commit_group(shared, 0, group));
            // Publish even on failure: the range holds no data then, which
            // replay tolerates, but a gap would wedge the watermark forever.
            shared.seq.commit(start, start + count - 1);
            submitted
        } else {
            let parts = batch.split_by_shard(nshards, |k| shard_of(k, nshards));
            for (shard, part) in parts.iter().enumerate() {
                if !part.is_empty() {
                    Self::make_room_shard(shared, shard)?;
                }
            }
            let start = shared.seq.allocate(count);
            let mut next = start;
            let mut first_err: Option<Error> = None;
            for (shard, mut part) in parts.into_iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                let n = part.count() as u64;
                part.set_sequence(next);
                next += n;
                let submitted = shared.shards[shard]
                    .queue
                    .submit(part, |group| commit_group(shared, shard, group));
                if let Err(e) = submitted {
                    first_err.get_or_insert(e);
                }
            }
            shared.seq.commit(start, start + count - 1);
            match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        };
        shared.stats.add(&shared.stats.writes, 1);
        shared.obs.finish(obs::Op::Write, timer);
        result
    }

    /// Reserve `count` consecutive sequence numbers (returns the first).
    /// For outer layers that log writes themselves (the tiered store's
    /// eWAL): reserve, stamp, persist externally, [`Db::apply_stamped`],
    /// then [`Db::publish_sequences`].
    pub fn reserve_sequences(&self, count: u64) -> SequenceNumber {
        self.shared.seq.allocate(count)
    }

    /// Make the reserved range `[start, end]` visible to readers. Must be
    /// called exactly once per reserved range — even when applying it
    /// failed (an unpublished range wedges the watermark; an empty one is
    /// harmless).
    pub fn publish_sequences(&self, start: SequenceNumber, end: SequenceNumber) {
        self.shared.seq.commit(start, end);
    }

    /// Apply an externally logged, sequence-stamped batch to the memtable
    /// shards, bypassing the engine WAL and group commit (the caller's own
    /// log already made it durable). Ops route through the same shard hash
    /// as live writes; shard backpressure applies. Does NOT publish the
    /// range — callers publish after every shard of the batch is applied.
    pub fn apply_stamped(&self, batch: &WriteBatch) -> Result<()> {
        let shared = &self.shared;
        debug_assert!(batch.sequence() > 0, "apply_stamped needs a stamped batch");
        let nshards = shared.shards.len();
        if nshards == 1 {
            Self::make_room_shard(shared, 0)?;
            shared.shards[0].core.lock().mem.apply_batch(batch);
        } else {
            let parts = batch.split_by_shard(nshards, |k| shard_of(k, nshards));
            let mut next = batch.sequence();
            for (shard, mut part) in parts.into_iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                Self::make_room_shard(shared, shard)?;
                part.set_sequence(next);
                next += part.count() as u64;
                shared.shards[shard].core.lock().mem.apply_batch(&part);
            }
        }
        shared.stats.add(&shared.stats.writes, 1);
        Ok(())
    }

    /// Group-commit counters (rounds, batches, shard conflicts), shared by
    /// every shard's commit queue.
    pub fn group_commit_stats(&self) -> &Arc<GroupCommitStats> {
        &self.shared.group_stats
    }

    /// The number of write shards this instance runs with.
    pub fn write_shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Read the newest visible value of `key`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_with(ReadOptions::default(), key)
    }

    /// Read `key` with per-read tuning ([`ReadOptions::perf_context`]
    /// captures a stage-by-stage breakdown of this call).
    pub fn get_with(&self, read_opts: ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let shared = &self.shared;
        let _perf = shared.obs.perf_guard(read_opts.perf_context);
        let _span = shared.obs.span_if_perf("get");
        let timer = shared.obs.start();
        let snap = shared.read_snapshot(None);
        let result = get_with_snapshot(shared, &snap, key);
        shared.obs.finish(obs::Op::Get, timer);
        result
    }

    /// Read `key` as of `snapshot`.
    pub fn get_at(&self, key: &[u8], snapshot: &Snapshot) -> Result<Option<Vec<u8>>> {
        let shared = &self.shared;
        let _perf = shared.obs.perf_guard(false);
        let _span = shared.obs.span_if_perf("get");
        let timer = shared.obs.start();
        let snap = shared.read_snapshot(Some(snapshot.sequence()));
        let result = get_with_snapshot(shared, &snap, key);
        shared.obs.finish(obs::Op::Get, timer);
        result
    }

    /// Take a consistent snapshot for repeatable reads. Pinned to the
    /// visible watermark, so a multi-shard batch is either entirely inside
    /// the snapshot or entirely after it.
    pub fn snapshot(&self) -> Snapshot {
        loop {
            let seq = self.shared.seq.visible();
            let registry = Arc::clone(&self.shared.snapshots);
            *registry.lock().entry(seq).or_insert(0) += 1;
            // Same guard as `read_snapshot`: a compaction committing
            // between the watermark load and the registration above may
            // have dropped key versions this sequence still resolves to.
            // Registration happened first, so once the horizon check
            // passes no later compaction can outrun this snapshot.
            if seq >= self.shared.state.lock().drop_horizon {
                return Snapshot { seq, registry };
            }
            drop(Snapshot { seq, registry });
        }
    }

    /// Iterator over the live keyspace at the current sequence.
    pub fn iter(&self) -> Result<DbIterator> {
        self.iter_internal(None, ReadOptions::default())
    }

    /// Iterator over the live keyspace with per-read tuning (readahead).
    pub fn iter_with(&self, read_opts: ReadOptions) -> Result<DbIterator> {
        self.iter_internal(None, read_opts)
    }

    /// Iterator pinned to `snapshot`.
    pub fn iter_at(&self, snapshot: &Snapshot) -> Result<DbIterator> {
        self.iter_internal(Some(snapshot.sequence()), ReadOptions::default())
    }

    /// Iterator pinned to `snapshot`, with per-read tuning.
    pub fn iter_at_with(&self, snapshot: &Snapshot, read_opts: ReadOptions) -> Result<DbIterator> {
        self.iter_internal(Some(snapshot.sequence()), read_opts)
    }

    fn iter_internal(
        &self,
        seq_override: Option<SequenceNumber>,
        read_opts: ReadOptions,
    ) -> Result<DbIterator> {
        let shared = &self.shared;
        let snap = shared.read_snapshot(seq_override);
        let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
        for mem in &snap.mems {
            children.push(Box::new(mem.iter()));
        }
        for (_, imm) in &snap.imm {
            children.push(Box::new(imm.iter()));
        }
        for meta in &snap.version.levels[0] {
            // L0 files overlap, so none can be skipped outright, but a file
            // wholly past the upper bound will never yield a key: its table
            // iterator goes straight to out-of-bounds on the first seek.
            let table = shared.get_table(meta)?;
            children.push(Box::new(table.iter_with(read_opts.clone())));
        }
        let provider: Arc<dyn TableProvider> = shared.clone();
        for files in snap.version.levels.iter().skip(1) {
            if !files.is_empty() {
                children.push(Box::new(LevelIterator::with_options(
                    files.clone(),
                    Arc::clone(&provider),
                    read_opts.clone(),
                )));
            }
        }
        Ok(DbIterator {
            inner: MergingIterator::new_bounded(children, read_opts.iterate_upper_bound.clone()),
            snapshot: snap.seq,
            lower_bound: read_opts.iterate_lower_bound.clone(),
            key: Vec::new(),
            value: Vec::new(),
            valid: false,
            obs: Arc::clone(&shared.obs),
            perf: read_opts.perf_context,
            _version: snap.version,
        })
    }

    /// Ingest a fully built memtable (e.g. rebuilt from an external log by
    /// parallel recovery) directly as an L0 table. Entries must carry
    /// their original sequence numbers; `last_sequence` advances to cover
    /// them. The engine's multi-version read paths resolve any sequence
    /// overlap between the resulting L0 tables.
    pub fn ingest_recovered_memtable(
        &self,
        mem: &Arc<MemTable>,
        max_sequence: SequenceNumber,
    ) -> Result<()> {
        if mem.is_empty() {
            return Ok(());
        }
        let shared = &self.shared;
        let mut state = shared.state.lock();
        state.versions.last_sequence = state.versions.last_sequence.max(max_sequence);
        shared.seq.install(max_sequence);
        Self::write_level0_table(shared, &mut state, mem, FlushCommit::Direct)?;
        Ok(())
    }

    /// Force every shard's memtable to disk and wait until the whole flush
    /// queue (including them) has drained. A no-op on an empty database.
    pub fn flush(&self) -> Result<()> {
        let shared = &self.shared;
        let mut ticket = None;
        for shard in 0..shared.shards.len() {
            let mut core = shared.shards[shard].core.lock();
            if core.mem.is_empty() {
                continue;
            }
            let mut state = shared.state.lock();
            ticket = Some(Self::seal_shard_locked(shared, shard, &mut core, &mut state)?);
        }
        shared.work_cv.notify_all();
        let mut state = shared.state.lock();
        let ticket = match ticket.or_else(|| state.imm.back().map(|e| e.id)) {
            Some(t) => t,
            None => return Ok(()),
        };
        Self::wait_flush_locked(shared, &mut state, ticket)
    }

    /// Seal every non-empty shard memtable into the flush queue without
    /// waiting for the background flush. Returns the newest ticket to poll
    /// via [`Db::flush_caught_up`] or block on via [`Db::wait_flush`], or
    /// `None` when all memtables are empty and the queue has already
    /// drained. Applies the same queue-full backpressure as writers.
    pub fn seal_memtable(&self) -> Result<Option<u64>> {
        let shared = &self.shared;
        let cap = shared.options.max_imm_memtables.max(1);
        let mut ticket = None;
        for shard in 0..shared.shards.len() {
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return Err(Error::Closed);
                }
                let mut core = shared.shards[shard].core.lock();
                if core.mem.is_empty() {
                    break;
                }
                let mut state = shared.state.lock();
                Self::check_bg_error(&state)?;
                if state.imm.len() >= cap {
                    drop(core);
                    let stalled = Instant::now();
                    shared.work_cv.notify_all();
                    shared.room_cv.wait_for(&mut state, BG_WAIT);
                    Self::record_stall(shared, stalled);
                    continue;
                }
                ticket = Some(Self::seal_shard_locked(shared, shard, &mut core, &mut state)?);
                break;
            }
        }
        shared.work_cv.notify_all();
        match ticket {
            Some(t) => Ok(Some(t)),
            None => {
                let state = shared.state.lock();
                Self::check_bg_error(&state)?;
                Ok(state.imm.back().map(|e| e.id))
            }
        }
    }

    /// Whether every memtable sealed up to `ticket` has been flushed.
    /// Errors when the background scheduler has failed.
    pub fn flush_caught_up(&self, ticket: u64) -> Result<bool> {
        let state = self.shared.state.lock();
        Self::check_bg_error(&state)?;
        Ok(state.imm.front().is_none_or(|e| e.id > ticket))
    }

    /// Block until the memtable sealed as `ticket` has been flushed.
    pub fn wait_flush(&self, ticket: u64) -> Result<()> {
        let shared = &self.shared;
        let mut state = shared.state.lock();
        Self::wait_flush_locked(shared, &mut state, ticket)
    }

    fn wait_flush_locked(
        shared: &Arc<DbShared>,
        state: &mut parking_lot::MutexGuard<'_, DbState>,
        ticket: u64,
    ) -> Result<()> {
        loop {
            Self::check_bg_error(state)?;
            if state.imm.front().is_none_or(|e| e.id > ticket) {
                return Ok(());
            }
            if shared.shutdown.load(Ordering::Relaxed) {
                return Err(Error::Closed);
            }
            shared.work_cv.notify_all();
            shared.room_cv.wait_for(state, BG_WAIT);
        }
    }

    /// Wait until no compaction work is pending (levels within budget and
    /// no immutable memtable). Test and benchmark helper.
    pub fn wait_for_compactions(&self) -> Result<()> {
        let shared = &self.shared;
        let mut state = shared.state.lock();
        loop {
            Self::check_bg_error(&state)?;
            let scores = level_scores(&state.versions.current(), &shared.options);
            let busy = !state.imm.is_empty()
                || state.compactions_inflight > 0
                || (shared.options.auto_compaction && scores.iter().any(|&s| s >= 1.0));
            if !busy {
                return Ok(());
            }
            shared.work_cv.notify_all();
            shared.room_cv.wait_for(&mut state, std::time::Duration::from_millis(50));
        }
    }

    /// Trigger one compaction round synchronously if any level is over
    /// budget. Returns whether a compaction ran.
    pub fn compact_once(&self) -> Result<bool> {
        let shared = &self.shared;
        let mut state = shared.state.lock();
        run_one_compaction(shared, &mut state)
    }

    /// Point-read several keys at one consistent read point. The
    /// memtable/version snapshot is taken once (a `get()` loop re-snapshots
    /// per key, so concurrent writes can land between keys); large batches
    /// additionally fan out across a bounded thread pool so per-key cloud
    /// latencies overlap instead of adding up.
    pub fn multi_get(&self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>> {
        self.multi_get_with(ReadOptions::default(), keys)
    }

    /// [`Db::multi_get`] with per-read tuning. When
    /// [`ReadOptions::perf_context`] is set, pool workers capture into
    /// their own thread-local contexts and the caller merges them, so the
    /// breakdown covers the whole fan-out.
    pub fn multi_get_with(
        &self,
        read_opts: ReadOptions,
        keys: &[&[u8]],
    ) -> Result<Vec<Option<Vec<u8>>>> {
        let shared = &self.shared;
        let _perf = shared.obs.perf_guard(read_opts.perf_context);
        let _span = shared.obs.span_if_perf("multi_get");
        let timer = shared.obs.start();
        let snap = shared.read_snapshot(None);
        let result = if keys.len() < MULTI_GET_PARALLEL_THRESHOLD {
            keys.iter().map(|key| get_with_snapshot(shared, &snap, key)).collect()
        } else {
            // Hand the perf context across the pool: each worker captures
            // into its own thread-local context (inheriting the caller's
            // span so cloud GETs stay in the trace) and returns it for the
            // caller to merge. A task stolen onto the calling thread finds
            // the context already active and records into it directly.
            // One fan-out result: the value plus the worker's captured
            // context (None when the worker recorded into the caller's).
            type KeyResult = (Option<Vec<u8>>, Option<obs::PerfContext>);
            let active = obs::perf::enabled();
            let parent_span = obs::perf::current_span();
            let pairs: Result<Vec<KeyResult>> = multi_get_pool().install(|| {
                keys.par_iter()
                    .map(|key| {
                        let began = active && obs::perf::begin();
                        let prev =
                            if began { obs::perf::swap_current_span(parent_span) } else { None };
                        let out = get_with_snapshot(shared, &snap, key);
                        let ctx = if began {
                            obs::perf::swap_current_span(prev);
                            Some(obs::perf::end())
                        } else {
                            None
                        };
                        out.map(|v| (v, ctx))
                    })
                    .collect()
            });
            pairs.map(|pairs| {
                let mut values = Vec::with_capacity(pairs.len());
                for (v, ctx) in pairs {
                    if let Some(ctx) = ctx {
                        obs::perf::count(|c| c.add(&ctx));
                    }
                    values.push(v);
                }
                values
            })
        };
        shared.obs.finish(obs::Op::MultiGet, timer);
        result
    }

    /// Compact every file overlapping `[begin, end]` (None = unbounded)
    /// all the way down the tree. Blocks until done. Mirrors RocksDB's
    /// `CompactRange`: useful to force cold data to its final level (and,
    /// under RocksMash placement, onto the cloud tier).
    pub fn compact_range(&self, begin: Option<&[u8]>, end: Option<&[u8]>) -> Result<()> {
        self.flush()?;
        let shared = &self.shared;
        for level in 0..shared.options.num_levels - 1 {
            loop {
                let mut state = shared.state.lock();
                Self::check_bg_error(&state)?;
                if !state.compacting_inputs.is_empty() {
                    // Automatic compactions are mid-flight; wait until all
                    // claims drain and re-evaluate against the versions
                    // they produce, so the manual pick cannot conflict.
                    shared.room_cv.wait_for(&mut state, Duration::from_millis(20));
                    continue;
                }
                let version = state.versions.current();
                let base: Vec<_> = version.overlapping_files(level, begin, end);
                if base.is_empty() {
                    break;
                }
                // At L0 take every overlapping file at once (they overlap
                // each other); deeper levels go file-by-file to bound the
                // size of any single compaction.
                let inputs0 = if level == 0 { base } else { vec![base[0].clone()] };
                let lo = inputs0
                    .iter()
                    .map(|f| crate::types::extract_user_key(&f.smallest).to_vec())
                    .min()
                    .expect("non-empty");
                let hi = inputs0
                    .iter()
                    .map(|f| crate::types::extract_user_key(&f.largest).to_vec())
                    .max()
                    .expect("non-empty");
                let overlap = version.overlapping_files(level + 1, Some(&lo), Some(&hi));
                let compaction = Compaction { level, inputs: [inputs0, overlap] };
                run_claimed_compaction(shared, &mut state, version, compaction)?;
            }
        }
        Ok(())
    }

    /// Number of files at `level`.
    pub fn num_files_at_level(&self, level: usize) -> usize {
        self.shared.state.lock().versions.current().levels[level].len()
    }

    /// Approximate total bytes at `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.shared.state.lock().versions.current().level_bytes(level)
    }

    /// Human-readable summary of the tree shape and engine counters,
    /// in the spirit of RocksDB's `GetProperty("rocksdb.stats")`.
    pub fn debug_string(&self) -> String {
        use std::fmt::Write as _;
        let (last_seq, retired) = {
            let state = self.shared.state.lock();
            (self.shared.seq.visible(), state.retired.len())
        };
        let stats = self.stats();
        let mut out = String::new();
        // The accounting table carries both the tree shape and the
        // per-level amplification columns.
        out.push_str(&stats.levels.snapshot().render());
        let _ = writeln!(out, "last sequence      {last_seq}");
        let _ = writeln!(out, "pending deletions  {retired} version(s)");
        let _ = writeln!(
            out,
            "writes {} | gets {} | flushes {} | compactions {} ({} MiB in, {} MiB out)",
            stats.writes.load(Ordering::Relaxed),
            stats.gets.load(Ordering::Relaxed),
            stats.flushes.load(Ordering::Relaxed),
            stats.compactions.load(Ordering::Relaxed),
            stats.compact_bytes_in.load(Ordering::Relaxed) >> 20,
            stats.compact_bytes_out.load(Ordering::Relaxed) >> 20,
        );
        if let Some(cache) = &self.shared.block_cache {
            let (hits, misses) = cache.hit_stats();
            let _ = writeln!(
                out,
                "block cache        {} KiB used, {hits} hits / {misses} misses",
                cache.used_bytes() >> 10
            );
        }
        let stalled = stats.stall_ns.load(Ordering::Relaxed);
        let _ = writeln!(out, "write stalls       {:.1} ms total", stalled as f64 / 1e6);
        out
    }

    /// Copy a consistent point-in-time image of this database into
    /// `target` (an empty directory/Env): the live table files plus a
    /// fresh single-snapshot MANIFEST. The checkpoint opens as a normal
    /// database. Unflushed memtable contents are NOT included — call
    /// [`Db::flush`] first for a full-state image.
    pub fn checkpoint(&self, target: &dyn Env) -> Result<u64> {
        // Pin a version so compaction cannot delete files mid-copy.
        let (version, last_seq) = {
            let state = self.shared.state.lock();
            (state.versions.current(), self.shared.seq.visible())
        };
        let mut copied = 0u64;
        let mut edit = VersionEdit {
            log_number: Some(0),
            last_sequence: Some(last_seq),
            ..VersionEdit::default()
        };
        let mut max_number = 1;
        for (level, files) in version.levels.iter().enumerate() {
            for meta in files {
                let name = sst_name(meta.number);
                // Read through the router: works for cloud-resident tables.
                let file = self.shared.router.open_table(&*self.shared.env, meta.number)?;
                let data = file.read_exact_at(0, file.len() as usize)?;
                target.write_all(&name, &data)?;
                copied += data.len() as u64;
                max_number = max_number.max(meta.number);
                edit.new_files.push((level, (**meta).clone()));
            }
        }
        edit.next_file_number = Some(max_number + 2);
        let manifest = crate::version::manifest_name(max_number + 1);
        let mut writer = LogWriter::new(target.new_writable(&manifest)?);
        writer.add_record(&edit.encode())?;
        writer.finish()?;
        target.write_all(crate::version::CURRENT, manifest.as_bytes())?;
        Ok(copied)
    }

    /// The last committed (reader-visible) sequence number.
    pub fn last_sequence(&self) -> SequenceNumber {
        self.shared.seq.visible()
    }

    /// The current version (file layout snapshot).
    pub fn current_version(&self) -> Arc<Version> {
        self.shared.state.lock().versions.current()
    }

    /// File numbers that were live in the MANIFEST when this instance
    /// opened, before any background work ran. The companion floor is
    /// [`Db::recovered_next_file_number`]; together they let outer layers
    /// garbage-collect leftovers of a previous incarnation without racing
    /// this one's compactions.
    pub fn recovered_live_files(&self) -> &BTreeSet<u64> {
        &self.shared.recovered_live
    }

    /// First file number this incarnation may allocate; files numbered at
    /// or above it were created after recovery.
    pub fn recovered_next_file_number(&self) -> u64 {
        self.shared.recovered_next_file
    }

    /// Install (or replace) the periodic [`ExternalJob`] the worker pool
    /// runs at the lowest priority. The first run happens once `interval`
    /// has elapsed; each completion re-arms the timer. See the trait docs
    /// for the failure contract.
    pub fn set_external_job(&self, interval: Duration, job: Arc<dyn ExternalJob>) {
        {
            let mut state = self.shared.state.lock();
            state.external = Some(ExternalJobState {
                job,
                interval,
                next_run: Instant::now() + interval,
                running: false,
            });
        }
        self.shared.work_cv.notify_all();
    }

    /// Engine view for running an [`ExternalJob`] synchronously from the
    /// caller's thread (tests and on-demand passes use this; the scheduled
    /// path gets the same view from the pool).
    pub fn bg_view(&self) -> BgView<'_> {
        BgView { shared: &self.shared }
    }

    fn check_bg_error(state: &DbState) -> Result<()> {
        match &state.bg_error {
            Some(msg) => Err(Error::corruption(format!("background error: {msg}"))),
            None => Ok(()),
        }
    }

    /// Seal `shard`'s memtable into the flush queue, rotating its WAL
    /// stream first, and return the ticket id. Requires BOTH the shard's
    /// core lock and the state lock (in that order): the two-lock hold is
    /// what makes the wal-number mirror exact for flush commits and keeps
    /// imm ids monotone in seal order across shards.
    fn seal_shard_locked(
        shared: &Arc<DbShared>,
        shard: usize,
        core: &mut ShardCore,
        state: &mut DbState,
    ) -> Result<u64> {
        let mut old_wal = None;
        if shared.options.wal_enabled {
            let number = state.versions.new_file_number();
            let file = shared.env.new_writable(&log_name(number))?;
            old_wal = core.wal.replace(LogWriter::new(file));
            shared.shards[shard].wal_number.store(number, Ordering::Relaxed);
        }
        let id = state.next_imm_id;
        state.next_imm_id += 1;
        let sealed = std::mem::replace(&mut core.mem, Arc::new(MemTable::new()));
        state.imm.push_back(ImmEntry {
            id,
            shard,
            mem: sealed,
            wal_floor: shared.shards[shard].wal_number.load(Ordering::Relaxed),
            claimed: false,
        });
        shared.stats.peak(&shared.stats.imm_queue_peak, state.imm.len() as u64);
        if let Some(wal) = old_wal {
            wal.finish()?;
        }
        Ok(id)
    }

    /// Admit a write on `shard`: seal its memtable once full, stalling only
    /// when the flush queue or L0 is backed up. Healthy-path cost is one
    /// shard-core lock — the db state lock is touched only to seal or stall,
    /// and the background-error check rides a lock-free flag.
    fn make_room_shard(shared: &Arc<DbShared>, shard: usize) -> Result<()> {
        loop {
            if shared.bg_error_flag.load(Ordering::Relaxed) {
                let state = shared.state.lock();
                Self::check_bg_error(&state)?;
            }
            if shared.shutdown.load(Ordering::Relaxed) {
                return Err(Error::Closed);
            }
            let mut core = shared.shards[shard].core.lock();
            if core.mem.approximate_bytes() < shared.shard_budget() {
                return Ok(());
            }
            if !shared.options.auto_compaction {
                // Caller drives flushes explicitly; admit the write.
                return Ok(());
            }
            let mut state = shared.state.lock();
            Self::check_bg_error(&state)?;
            if state.imm.len() >= shared.options.max_imm_memtables.max(1) {
                // Flush queue is full: wait (bounded) for a flush to drain.
                // Drop the core lock first so the shard's group commits and
                // snapshots keep flowing while this writer stalls.
                drop(core);
                let stalled = Instant::now();
                shared.work_cv.notify_all();
                shared.room_cv.wait_for(&mut state, BG_WAIT);
                Self::record_stall(shared, stalled);
            } else if state.versions.current().levels[0].len() >= shared.options.l0_stall_trigger {
                drop(core);
                let stalled = Instant::now();
                shared.work_cv.notify_all();
                shared.room_cv.wait_for(&mut state, Duration::from_millis(10));
                Self::record_stall(shared, stalled);
            } else {
                // Seal into the queue and admit the write immediately: no
                // wait happened, so no stall is recorded.
                Self::seal_shard_locked(shared, shard, &mut core, &mut state)?;
                shared.work_cv.notify_all();
                return Ok(());
            }
        }
    }

    /// Record a writer stall that began at `stalled`. Zero-length waits
    /// (e.g. a wait that returned immediately) are not reported.
    fn record_stall(shared: &DbShared, stalled: Instant) {
        let stall_ns = stalled.elapsed().as_nanos() as u64;
        if stall_ns == 0 {
            return;
        }
        shared.stats.add(&shared.stats.stall_ns, stall_ns);
        shared.obs.event(obs::EventKind::WriterStall { dur_ns: stall_ns });
    }

    /// Build an L0 table from `mem` and install it. Called with the state
    /// lock held; releases it during the build.
    fn write_level0_table(
        shared: &Arc<DbShared>,
        state: &mut parking_lot::MutexGuard<'_, DbState>,
        mem: &Arc<MemTable>,
        commit: FlushCommit,
    ) -> Result<()> {
        // Crash site: dying at flush start must lose nothing — every
        // flushed-from record is still replayable from the WAL/eWAL.
        storage::failpoint::fail_point("flush_begin")?;
        let number = state.versions.new_file_number();
        let timer = shared.obs.start();
        // Root span for the flush trace: the SST upload and cache fills it
        // triggers open child spans under it.
        let _span = shared.obs.span("flush");
        shared.obs.event(obs::EventKind::FlushStart);
        let meta = parking_lot::MutexGuard::unlocked(state, || -> Result<Option<FileMetaData>> {
            let name = sst_name(number);
            let mut builder =
                TableBuilder::new(shared.env.new_writable(&name)?, shared.options.clone());
            let mut iter = mem.iter();
            iter.seek_to_first();
            while iter.valid() {
                builder.add(iter.key(), iter.value())?;
                iter.next();
            }
            if builder.num_entries() == 0 {
                drop(builder);
                let _ = shared.env.delete(&name);
                return Ok(None);
            }
            let smallest = builder.smallest().expect("non-empty").to_vec();
            let largest = builder.largest().expect("non-empty").to_vec();
            let file_size = builder.finish()?;
            shared.router.publish_table(&*shared.env, number, 0)?;
            Ok(Some(FileMetaData { number, file_size, smallest, largest }))
        })?;
        let flushed_bytes = meta.as_ref().map_or(0, |m| m.file_size);
        if let Some(meta) = meta {
            // The manifest's last_sequence covers everything that may be in
            // this table: the allocation high-water mark bounds every
            // stamped entry, and sequence gaps are harmless on replay.
            state.versions.last_sequence =
                state.versions.last_sequence.max(shared.seq.allocated_max());
            // Flushes commit out of order, but log_number may only advance
            // past WALs whose memtables have *all* been flushed: the floor
            // is advanced only by the flush that completes the contiguous
            // prefix of the seal order, and is additionally clamped to the
            // oldest WAL still active on ANY shard — another shard's live
            // log may be older than this flush's floor and still covers
            // that shard's unflushed writes.
            let log_number = match &commit {
                FlushCommit::Direct => {
                    debug_assert!(state.imm.is_empty(), "direct flush with queued memtables");
                    Some(shared.min_active_wal())
                }
                FlushCommit::Queued { id, wal_floor } => {
                    Self::queued_log_floor(state, *id, *wal_floor)
                        .map(|floor| floor.min(shared.min_active_wal()))
                }
            };
            let edit = VersionEdit { log_number, new_files: vec![(0, meta)], ..Default::default() };
            let prev = state.versions.current();
            // Crash site: the L0 table is fully written but not yet
            // referenced by the manifest — recovery must treat it as an
            // orphan and replay the log instead.
            storage::failpoint::fail_point("flush_manifest")?;
            state.versions.log_and_apply(edit)?;
            // No files were obsoleted, but the superseded version must
            // still enter the age-ordered queue: readers holding it gate
            // deletions queued by *later* transitions.
            state.retired.push_back((prev, Vec::new()));
        }
        if let FlushCommit::Queued { id, wal_floor } = commit {
            Self::settle_flush_ticket(state, id, wal_floor);
        }
        shared.stats.add(&shared.stats.flushes, 1);
        if flushed_bytes > 0 {
            shared.stats.add(&shared.stats.flush_bytes, flushed_bytes);
            shared.stats.levels.record_flush(flushed_bytes);
            shared.stats.levels.refresh_shape(&state.versions.current(), &shared.options);
        }
        shared.obs.finish(obs::Op::Flush, timer);
        shared.obs.event(obs::EventKind::FlushEnd {
            bytes: flushed_bytes,
            dur_ns: timer.map_or(0, |t| t.elapsed().as_nanos() as u64),
        });
        Self::gc_obsolete_files(shared, state)?;
        Ok(())
    }

    /// The `log_number` to stamp on a queued flush's version edit, or
    /// `None` when older memtables are still unflushed (the floor may not
    /// advance past their WALs yet).
    ///
    /// Flushes commit out of order, so the floor only moves when the
    /// committing flush is the oldest still queued: it then covers its own
    /// WAL plus every already-settled floor below the new front boundary.
    fn queued_log_floor(state: &DbState, id: u64, wal_floor: u64) -> Option<u64> {
        let oldest_other = state.imm.iter().filter(|e| e.id != id).map(|e| e.id).min();
        if oldest_other.is_some_and(|o| o < id) {
            return None;
        }
        let settled = state
            .flush_done
            .iter()
            .filter(|(done, _)| oldest_other.is_none_or(|b| **done < b))
            .map(|(_, floor)| *floor)
            .max();
        Some(wal_floor.max(settled.unwrap_or(0)))
    }

    /// Remove a committed flush's entry from the queue and fold its WAL
    /// floor into the settled set consumed by [`Db::queued_log_floor`].
    fn settle_flush_ticket(state: &mut DbState, id: u64, wal_floor: u64) {
        state.imm.retain(|e| e.id != id);
        match state.imm.front().map(|e| e.id) {
            // Queue drained: every settled floor was folded into the edit
            // this flush (or an earlier one) committed.
            None => state.flush_done.clear(),
            // This flush completed the contiguous prefix: floors below the
            // new front boundary were consumed by `queued_log_floor`.
            Some(oldest) if id < oldest => {
                state.flush_done.retain(|done, _| *done >= oldest);
            }
            // Out-of-order completion: park the floor until the prefix
            // catches up.
            Some(_) => {
                state.flush_done.insert(id, wal_floor);
            }
        }
    }

    /// Delete files no version references: old WALs, orphaned SSTs, stale
    /// manifests.
    fn gc_obsolete_files(
        shared: &Arc<DbShared>,
        state: &mut parking_lot::MutexGuard<'_, DbState>,
    ) -> Result<()> {
        let mut live = state.versions.live_files();
        // Files pending deferred deletion are still reachable by readers.
        for (_, files) in &state.retired {
            live.extend(files.iter().copied());
        }
        let log_floor = state.versions.log_number;
        // Local SSTs not referenced by the current version. Runtime
        // deletion is handled by the deferred-deletion queue; this sweep
        // exists only for crash leftovers, so it must ignore any file
        // numbered at or above the recovery floor — such a file may be a
        // compaction output currently under construction on another
        // thread, not yet committed to any version.
        for name in shared.env.list("")? {
            if let Some(number) = name.strip_suffix(".sst").and_then(|s| s.parse::<u64>().ok()) {
                if number < shared.recovered_next_file && !live.contains(&number) {
                    shared.evict_table(number);
                    if let Some(cache) = &shared.block_cache {
                        cache.erase_file(number);
                    }
                    let _ = shared.env.delete(&name);
                }
            }
        }
        for name in shared.env.list("wal/")? {
            let number: Option<u64> = name
                .strip_prefix("wal/")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse().ok());
            if let Some(number) = number {
                if number < log_floor {
                    let _ = shared.env.delete(&name);
                }
            }
        }
        for name in state.versions.obsolete_manifests()? {
            let _ = shared.env.delete(&name);
        }
        Ok(())
    }

    /// Close the database: stop background work and sync the WAL.
    pub fn close(&self) -> Result<()> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
        self.shared.room_cv.notify_all();
        for handle in self.bg_threads.lock().drain(..) {
            let _ = handle.join();
        }
        if let Some(prefetcher) = &self.shared.prefetcher {
            prefetcher.shutdown();
        }
        {
            let mut state = self.shared.state.lock();
            gc_retired_versions(&self.shared, &mut state);
        }
        // Sync each shard's WAL stream (cores after state: lock order).
        for shard in &self.shared.shards {
            if let Some(wal) = shard.core.lock().wal.as_mut() {
                wal.sync()?;
            }
        }
        Ok(())
    }
}

impl Drop for Db {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

/// Commit one group on `shard`: append every member's batch to the shard's
/// WAL stream, fsync once for the whole group (when `sync_writes`), then
/// apply all members to the shard's memtable. Runs under the shard core
/// lock, so the WAL/memtable pair cannot rotate mid-group and the skiplist's
/// single-writer requirement is upheld by construction. The group fails as
/// a unit: after an append error nothing is applied and no member is
/// acknowledged (records already buffered may replay after a crash, which
/// is the usual at-least-once contract for unacknowledged writes).
fn commit_group(shared: &DbShared, shard: usize, group: &[Arc<Slot>]) -> Result<()> {
    let mut core = shared.shards[shard].core.lock();
    if let Some(wal) = core.wal.as_mut() {
        let stage = obs::perf::start_stage();
        wal.add_records(group.iter().map(|slot| slot.batch().data()))?;
        obs::perf::finish_stage(stage, |c, ns| c.wal_append_ns += ns);
        if shared.options.sync_writes {
            let stage = obs::perf::start_stage();
            wal.sync()?;
            obs::perf::finish_stage(stage, |c, ns| c.wal_sync_ns += ns);
        }
    }
    for slot in group {
        core.mem.apply_batch(slot.batch());
    }
    Ok(())
}

/// Point-read `key` against an already captured [`ReadSnapshot`]. Shared by
/// `get`, `get_at`, and every `multi_get` worker: the snapshot is immutable,
/// so any number of threads can read through it concurrently.
fn get_with_snapshot(
    shared: &DbShared,
    snap: &ReadSnapshot,
    key: &[u8],
) -> Result<Option<Vec<u8>>> {
    shared.stats.add(&shared.stats.gets, 1);
    shared.obs.record_key_heat(key);
    // Hash routing is stable, so the key can only live in one shard's
    // active memtable and in sealed memtables from that same shard.
    let shard = shard_of(key, snap.mems.len());
    let mem_probe = obs::perf::start_stage();
    let mut probed = snap.mems[shard].get(key, snap.seq);
    if matches!(probed, LookupResult::NotFound) {
        for (imm_shard, imm) in &snap.imm {
            if *imm_shard != shard {
                continue;
            }
            probed = imm.get(key, snap.seq);
            if !matches!(probed, LookupResult::NotFound) {
                break;
            }
        }
    }
    obs::perf::finish_stage(mem_probe, |c, ns| c.memtable_probe_ns += ns);
    match probed {
        LookupResult::Value(v) => return Ok(Some(v)),
        LookupResult::Deleted => return Ok(None),
        LookupResult::NotFound => {}
    }
    let lookup = make_lookup_key(key, snap.seq);
    // L0 files may hold overlapping sequence ranges (recovery ingests
    // partition memtables as parallel L0 tables), so every matching L0
    // file must be consulted and the highest visible sequence wins.
    // Deeper levels are disjoint and strictly older, so the first hit
    // below L0 is final.
    //
    // The SST stage is timed exclusively: cloud/cache/decompress time
    // spent inside it is recorded by those layers and subtracted here, so
    // the perf-context stages stay disjoint and sum to the op total.
    let sst_stage = obs::perf::start_exclusive();
    let best = (|| -> Result<Option<(SequenceNumber, ValueType, Vec<u8>)>> {
        let mut best: Option<(SequenceNumber, ValueType, Vec<u8>)> = None;
        for (level, meta) in snap.version.files_for_get(key) {
            if level > 0 && best.is_some() {
                break;
            }
            let table = shared.get_table(&meta)?;
            if let Some((ikey, value)) = table.get(&lookup)? {
                let parsed = parse_internal_key(&ikey)
                    .ok_or_else(|| Error::corruption("bad internal key in table"))?;
                if parsed.user_key == key
                    && best.as_ref().is_none_or(|(s, _, _)| parsed.sequence > *s)
                {
                    best = Some((parsed.sequence, parsed.value_type, value));
                }
                if level > 0 && best.is_some() {
                    break;
                }
            }
        }
        Ok(best)
    })();
    obs::perf::finish_exclusive(sst_stage, |c, ns| c.sst_read_ns += ns);
    match best? {
        Some((_, ValueType::Value, value)) => Ok(Some(value)),
        Some((_, ValueType::Deletion, _)) => Ok(None),
        None => Ok(None),
    }
}

/// How a flush commit interacts with the immutable-memtable queue.
enum FlushCommit {
    /// The memtable is not in the queue (recovery, partition ingest): the
    /// queue must be empty and `log_number` advances to the current WAL.
    Direct,
    /// The memtable was sealed into the queue as `id` with WAL floor
    /// `wal_floor`; the commit removes the entry and advances the floor
    /// only when it completes the contiguous prefix of the seal order.
    Queued { id: u64, wal_floor: u64 },
}

/// One unit of background work claimed under the state lock.
enum BgJob {
    Flush { id: u64, mem: Arc<MemTable>, wal_floor: u64 },
    Compaction { version: Arc<Version>, compaction: Compaction },
    External { job: Arc<dyn ExternalJob> },
}

/// Background pool worker: claim flushes and non-conflicting compactions
/// and run them until shutdown. Each worker holds the state lock while
/// claiming (so claims are atomic) and releases it during I/O via
/// `MutexGuard::unlocked` inside the job bodies.
fn background_worker(shared: Arc<DbShared>) {
    loop {
        let mut state = shared.state.lock();
        let job = loop {
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            gc_retired_versions(&shared, &mut state);
            if let Some(job) = claim_job(&shared, &mut state) {
                break job;
            }
            let wait = claim_wait(&state);
            shared.work_cv.wait_for(&mut state, wait);
        };
        match job {
            BgJob::Flush { id, mem, wal_floor } => {
                run_flush_job(&shared, &mut state, id, &mem, wal_floor);
            }
            BgJob::Compaction { version, compaction } => {
                let result = run_claimed_compaction(&shared, &mut state, version, compaction);
                note_bg_outcome(&shared, &mut state, "compaction", result);
            }
            BgJob::External { job } => {
                let result = parking_lot::MutexGuard::unlocked(&mut state, || {
                    job.run(&BgView { shared: &shared })
                });
                if let Some(ext) = state.external.as_mut() {
                    ext.running = false;
                    ext.next_run = Instant::now() + ext.interval;
                }
                // Journal failures but do NOT touch the sticky bg_error:
                // external work is advisory and must not stall writers.
                if let Err(e) = result {
                    shared.obs.event(obs::EventKind::BgError {
                        context: format!("external:{}", job.name()),
                        error: e.to_string(),
                        backoff_ms: 0,
                    });
                }
            }
        }
        shared.room_cv.notify_all();
    }
}

/// How long an idle worker sleeps before re-polling for work: the normal
/// poll interval, shortened to wake exactly when an error backoff expires.
fn claim_wait(state: &DbState) -> Duration {
    match state.bg_backoff_until {
        Some(until) => until
            .saturating_duration_since(Instant::now())
            .min(BG_WAIT)
            .max(Duration::from_millis(1)),
        None => BG_WAIT,
    }
}

/// Whether background work may start: always when healthy, and only after
/// the exponential backoff expires while a background error is standing.
/// This is what stops a failing flush from busy-looping.
fn bg_gate_open(state: &DbState) -> bool {
    state.bg_error.is_none() || state.bg_backoff_until.is_none_or(|t| Instant::now() >= t)
}

/// Claim the next runnable background job under the state lock. Flushes
/// take priority (they unblock writers); compactions are picked against the
/// set of in-flight input files so concurrent claims never overlap, and one
/// pool slot is reserved for flushes so compactions cannot starve them.
fn claim_job(shared: &Arc<DbShared>, state: &mut DbState) -> Option<BgJob> {
    if !bg_gate_open(state) {
        return None;
    }
    if let Some(entry) = state.imm.iter_mut().find(|e| !e.claimed) {
        entry.claimed = true;
        return Some(BgJob::Flush {
            id: entry.id,
            mem: Arc::clone(&entry.mem),
            wal_floor: entry.wal_floor,
        });
    }
    if shared.options.auto_compaction {
        let slots = bg_pool_size(&shared.options).saturating_sub(1).max(1);
        if state.compactions_inflight < slots {
            let version = state.versions.current();
            if let Some(compaction) = pick_compaction(
                &version,
                &shared.options,
                &mut state.compact_pointer,
                &state.compacting_inputs,
            ) {
                return Some(BgJob::Compaction { version, compaction });
            }
        }
    }
    // Lowest priority: a due external job, one instance at a time.
    let ext = state.external.as_mut()?;
    if ext.running || Instant::now() < ext.next_run {
        return None;
    }
    ext.running = true;
    Some(BgJob::External { job: Arc::clone(&ext.job) })
}

/// Run a claimed flush: build the L0 table and commit it, or unclaim the
/// queue entry on failure so the next gate-open worker retries it.
fn run_flush_job(
    shared: &Arc<DbShared>,
    state: &mut parking_lot::MutexGuard<'_, DbState>,
    id: u64,
    mem: &Arc<MemTable>,
    wal_floor: u64,
) {
    let result = Db::write_level0_table(shared, state, mem, FlushCommit::Queued { id, wal_floor });
    if result.is_err() {
        if let Some(entry) = state.imm.iter_mut().find(|e| e.id == id) {
            entry.claimed = false;
        }
        shared.stats.add(&shared.stats.flush_retries, 1);
    }
    note_bg_outcome(shared, state, "flush", result);
}

/// Fold a background job's outcome into the error/backoff state: success
/// clears both, failure records the error and doubles the backoff.
fn note_bg_outcome(
    shared: &Arc<DbShared>,
    state: &mut parking_lot::MutexGuard<'_, DbState>,
    context: &str,
    result: Result<()>,
) {
    match result {
        Ok(()) => {
            state.bg_error = None;
            state.bg_backoff = Duration::ZERO;
            state.bg_backoff_until = None;
            shared.bg_error_flag.store(false, Ordering::Relaxed);
        }
        Err(e) => {
            state.bg_backoff = if state.bg_backoff.is_zero() {
                BG_BACKOFF_BASE
            } else {
                (state.bg_backoff * 2).min(BG_BACKOFF_MAX)
            };
            state.bg_backoff_until = Some(Instant::now() + state.bg_backoff);
            state.bg_error = Some(e.to_string());
            shared.bg_error_flag.store(true, Ordering::Relaxed);
            shared.obs.event(obs::EventKind::BgError {
                context: context.to_string(),
                error: e.to_string(),
                backoff_ms: state.bg_backoff.as_millis() as u64,
            });
        }
    }
}

/// Pick and execute a single compaction. Returns whether one ran. When
/// compactions are already executing on other threads and nothing
/// non-conflicting is available, waits briefly and reports false (the
/// caller re-evaluates the tree shape).
fn run_one_compaction(
    shared: &Arc<DbShared>,
    state: &mut parking_lot::MutexGuard<'_, DbState>,
) -> Result<bool> {
    let version = state.versions.current();
    // Split the guard borrow so the pointer and claim-set fields can be
    // borrowed disjointly.
    let st: &mut DbState = state;
    let compaction = match pick_compaction(
        &version,
        &shared.options,
        &mut st.compact_pointer,
        &st.compacting_inputs,
    ) {
        Some(c) => c,
        None => {
            if state.compactions_inflight > 0 {
                shared.room_cv.wait_for(state, Duration::from_millis(20));
            }
            return Ok(false);
        }
    };
    run_claimed_compaction(shared, state, version, compaction)?;
    Ok(true)
}

/// Execute `compaction` against `version` (which must be the current
/// version, picked against the current in-flight input set) and commit the
/// result. Claims the compaction's input files for the duration so no
/// concurrent pick can overlap them.
fn run_claimed_compaction(
    shared: &Arc<DbShared>,
    state: &mut parking_lot::MutexGuard<'_, DbState>,
    version: Arc<Version>,
    compaction: Compaction,
) -> Result<()> {
    for (_, f) in compaction.all_inputs() {
        let fresh = state.compacting_inputs.insert(f.number);
        debug_assert!(fresh, "compaction input {} already claimed", f.number);
    }
    state.compactions_inflight += 1;
    shared.stats.peak(&shared.stats.compaction_parallelism_peak, state.compactions_inflight as u64);
    let result = run_compaction_locked(shared, state, version, &compaction);
    for (_, f) in compaction.all_inputs() {
        state.compacting_inputs.remove(&f.number);
    }
    state.compactions_inflight -= 1;
    shared.room_cv.notify_all();
    result
}

/// Output count of one compaction is unknown up front, so a window of file
/// numbers is reserved before dropping the lock; compactions never produce
/// anywhere near this many outputs (inputs are bounded by level budgets).
/// Subcompaction workers carve disjoint sub-windows out of it.
const NUMBER_WINDOW: u64 = 4096;

fn run_compaction_locked(
    shared: &Arc<DbShared>,
    state: &mut parking_lot::MutexGuard<'_, DbState>,
    version: Arc<Version>,
    compaction: &Compaction,
) -> Result<()> {
    let timer = shared.obs.start();
    let _span = shared.obs.span("compaction");
    shared.obs.event(obs::EventKind::CompactionStart { level: compaction.level as u32 });
    let smallest_snapshot = shared.smallest_snapshot(shared.seq.visible());
    state.drop_horizon = state.drop_horizon.max(smallest_snapshot);
    let first_number = state.versions.next_file_number;
    state.versions.next_file_number += NUMBER_WINDOW;
    let outputs = parking_lot::MutexGuard::unlocked(state, || {
        execute_compaction(shared, &version, compaction, smallest_snapshot, first_number)
    })?;
    debug_assert!((outputs.len() as u64) < NUMBER_WINDOW);

    let mut edit = VersionEdit::default();
    for (level, f) in compaction.all_inputs() {
        edit.deleted_files.push((level, f.number));
    }
    let out_level = compaction.output_level();
    let mut out_bytes = 0;
    for meta in outputs {
        out_bytes += meta.file_size;
        edit.new_files.push((out_level, meta));
    }
    state.versions.log_and_apply(edit)?;
    shared.stats.add(&shared.stats.compactions, 1);
    shared.stats.add(&shared.stats.compact_bytes_in, compaction.input_bytes());
    shared.stats.add(&shared.stats.compact_bytes_out, out_bytes);
    // A non-empty boundary set is exactly the condition under which the
    // merge ran split into parallel subcompaction workers.
    let split = !subcompaction_boundaries(&shared.options, compaction).is_empty();
    let upper_bytes: u64 = compaction.inputs[0].iter().map(|f| f.file_size).sum();
    shared.stats.levels.record_compaction(
        out_level,
        upper_bytes,
        compaction.input_bytes(),
        out_bytes,
        if split { out_bytes } else { 0 },
    );
    shared.stats.levels.refresh_shape(&state.versions.current(), &shared.options);
    shared.obs.finish(obs::Op::Compaction, timer);
    shared.obs.event(obs::EventKind::CompactionEnd {
        level: compaction.level as u32,
        bytes_in: compaction.input_bytes(),
        bytes_out: out_bytes,
        dur_ns: timer.map_or(0, |t| t.elapsed().as_nanos() as u64),
    });

    // Defer physical deletion of the inputs until no reader can hold a
    // version that references them.
    let input_numbers: Vec<u64> = compaction.all_inputs().map(|(_, f)| f.number).collect();
    state.retired.push_back((version, input_numbers));
    gc_retired_versions(shared, state);
    Ok(())
}

/// Physically delete files whose last referencing versions have been
/// released. The queue is in supersession order; the front entry's version
/// is older than everything behind it, so it gates the whole queue.
fn gc_retired_versions(shared: &Arc<DbShared>, state: &mut parking_lot::MutexGuard<'_, DbState>) {
    let mut doomed: Vec<u64> = Vec::new();
    while let Some((version, _)) = state.retired.front() {
        // strong_count == 1 means only the queue itself holds the version:
        // no reader can reach the obsolete files any more.
        if Arc::strong_count(version) > 1 {
            break;
        }
        let (_, files) = state.retired.pop_front().expect("front exists");
        doomed.extend(files);
    }
    if doomed.is_empty() {
        return;
    }
    for &number in &doomed {
        shared.evict_table(number);
        if let Some(cache) = &shared.block_cache {
            cache.erase_file(number);
        }
    }
    // One batched call so the cache invalidates all files under a single
    // lock acquisition and tier removals stay grouped per GC round.
    let _ = shared.router.delete_tables(&*shared.env, &doomed);
}

/// Merge compaction inputs into fresh tables at the output level. Runs
/// without the state lock.
///
/// When the picked compaction spans several next-level input files and
/// `max_subcompactions > 1`, the key space is partitioned at those file
/// boundaries and merged by parallel workers writing non-overlapping
/// outputs; all outputs are returned together so the caller commits them
/// in a single version edit. Finished outputs stream to a publisher thread
/// that runs the SST uploads, so cloud PUTs overlap the merge instead of
/// serializing behind it.
fn execute_compaction(
    shared: &Arc<DbShared>,
    version: &Arc<Version>,
    compaction: &Compaction,
    smallest_snapshot: SequenceNumber,
    first_number: u64,
) -> Result<Vec<FileMetaData>> {
    // Fault site: sits in the unlocked merge region, so a Sleep action here
    // holds a compaction open without blocking claims of other compactions.
    storage::failpoint::fail_point("compaction_begin")?;
    let boundaries = subcompaction_boundaries(&shared.options, compaction);
    let workers = boundaries.len() + 1;
    let out_level = compaction.output_level();
    let parent_span = obs::perf::current_span();
    std::thread::scope(|scope| {
        let (publish_tx, publish_rx) = std::sync::mpsc::channel::<u64>();
        let publisher = scope.spawn(move || -> Result<()> {
            let prev = obs::perf::swap_current_span(parent_span);
            let result = (|| {
                for number in publish_rx {
                    shared.router.publish_table(&*shared.env, number, out_level)?;
                }
                Ok(())
            })();
            obs::perf::swap_current_span(prev);
            result
        });
        let merged: Result<Vec<Vec<FileMetaData>>> = if workers == 1 {
            merge_range(
                shared,
                version,
                compaction,
                smallest_snapshot,
                MergeSlice { lo: None, hi: None, first_number, window: NUMBER_WINDOW },
                &publish_tx,
            )
            .map(|outputs| vec![outputs])
        } else {
            shared.stats.add(&shared.stats.subcompactions, workers as u64);
            let window = NUMBER_WINDOW / workers as u64;
            let handles: Vec<_> = (0..workers)
                .map(|i| {
                    let lo = (i > 0).then(|| boundaries[i - 1].clone());
                    let hi = (i < workers - 1).then(|| boundaries[i].clone());
                    let tx = publish_tx.clone();
                    let sub_first = first_number + i as u64 * window;
                    scope.spawn(move || {
                        let prev = obs::perf::swap_current_span(parent_span);
                        let _span = shared.obs.child_span("subcompaction");
                        let result = merge_range(
                            shared,
                            version,
                            compaction,
                            smallest_snapshot,
                            MergeSlice {
                                lo: lo.as_deref(),
                                hi: hi.as_deref(),
                                first_number: sub_first,
                                window,
                            },
                            &tx,
                        );
                        drop(_span);
                        obs::perf::swap_current_span(prev);
                        result
                    })
                })
                .collect();
            let mut all = Vec::new();
            let mut first_err = None;
            for handle in handles {
                match handle.join().expect("subcompaction worker panicked") {
                    Ok(outputs) => all.push(outputs),
                    Err(e) => {
                        first_err.get_or_insert(e);
                    }
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(all),
            }
        };
        // Close the channel so the publisher drains and exits, then surface
        // merge errors first (they are the root cause when both fail).
        drop(publish_tx);
        let published = publisher.join().expect("publisher thread panicked");
        let merged = merged?;
        published?;
        // Workers are spawned in key order and outputs within a worker are
        // produced in key order, so the concatenation is globally sorted.
        Ok(merged.into_iter().flatten().collect())
    })
}

/// User keys partitioning one compaction into subcompaction ranges: the
/// smallest keys of the next-level input files (each already a natural
/// output boundary), thinned evenly when they exceed `max_subcompactions`.
fn subcompaction_boundaries(options: &Options, compaction: &Compaction) -> Vec<Vec<u8>> {
    let max_workers = options.max_subcompactions.max(1);
    if max_workers <= 1 || compaction.inputs[1].len() < 2 {
        return Vec::new();
    }
    let cuts: Vec<Vec<u8>> =
        compaction.inputs[1][1..].iter().map(|f| extract_user_key(&f.smallest).to_vec()).collect();
    if cuts.len() < max_workers {
        return cuts;
    }
    (1..max_workers).map(|i| cuts[i * cuts.len() / max_workers].clone()).collect()
}

/// The slice of the key space and file-number window one merge worker owns.
struct MergeSlice<'a> {
    /// Inclusive lower user-key bound; `None` = from the start.
    lo: Option<&'a [u8]>,
    /// Exclusive upper user-key bound; `None` = to the end.
    hi: Option<&'a [u8]>,
    /// First output file number this worker may allocate.
    first_number: u64,
    /// How many numbers from `first_number` the worker may use.
    window: u64,
}

/// Merge the compaction inputs restricted to `slice` into fresh tables,
/// streaming finished output numbers to `publish` for upload.
fn merge_range(
    shared: &Arc<DbShared>,
    version: &Arc<Version>,
    compaction: &Compaction,
    smallest_snapshot: SequenceNumber,
    slice: MergeSlice<'_>,
    publish: &std::sync::mpsc::Sender<u64>,
) -> Result<Vec<FileMetaData>> {
    let provider: Arc<dyn TableProvider> = shared.clone();
    let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
    if compaction.level == 0 {
        for meta in &compaction.inputs[0] {
            let table = shared.get_table(meta)?;
            children.push(Box::new(table.iter()));
        }
    } else {
        children.push(Box::new(LevelIterator::new(
            compaction.inputs[0].clone(),
            Arc::clone(&provider),
        )));
    }
    if !compaction.inputs[1].is_empty() {
        children.push(Box::new(LevelIterator::new(
            compaction.inputs[1].clone(),
            Arc::clone(&provider),
        )));
    }
    let mut iter = MergingIterator::new(children);
    match slice.lo {
        // MAX_SEQUENCE sorts before every entry of the boundary user key,
        // so the seek lands on its first version and no key is shared with
        // the neighbouring worker.
        Some(lo) => iter.seek(&make_lookup_key(lo, MAX_SEQUENCE))?,
        None => iter.seek_to_first()?,
    }

    let out_level = compaction.output_level();
    let bottommost =
        (out_level + 1..version.levels.len()).all(|lvl| version.levels[lvl].is_empty());

    let mut outputs: Vec<FileMetaData> = Vec::new();
    let mut builder: Option<(u64, TableBuilder)> = None;
    let mut next_number = slice.first_number;
    let mut current_user_key: Option<Vec<u8>> = None;
    let mut last_seq_for_key = MAX_SEQUENCE;

    while iter.valid() {
        let ikey = iter.key();
        let parsed =
            parse_internal_key(ikey).ok_or_else(|| Error::corruption("bad key in compaction"))?;
        if slice.hi.is_some_and(|hi| parsed.user_key >= hi) {
            // The next worker's slice starts here.
            break;
        }
        let first_occurrence = current_user_key.as_deref() != Some(parsed.user_key);
        if first_occurrence {
            current_user_key = Some(parsed.user_key.to_vec());
            last_seq_for_key = MAX_SEQUENCE;
        }
        let mut drop = false;
        if last_seq_for_key <= smallest_snapshot {
            // A newer entry for this key is already ≤ the oldest snapshot:
            // nothing can ever read this one.
            drop = true;
        } else if parsed.value_type == ValueType::Deletion
            && parsed.sequence <= smallest_snapshot
            && bottommost
        {
            // Tombstone with nothing underneath it to shadow.
            drop = true;
        }
        last_seq_for_key = parsed.sequence;

        if !drop {
            // Rotate only at user-key boundaries: all versions of one user
            // key must land in the same output file, or files at the same
            // level would overlap by user key (snapshots keep multiple
            // versions alive through compactions).
            if first_occurrence {
                if let Some((_, b)) = &builder {
                    if b.estimated_size() >= shared.options.target_file_size {
                        let (number, b) = builder.take().expect("builder present");
                        outputs.push(finish_output(number, b, publish)?);
                    }
                }
            }
            if builder.is_none() {
                let number = next_number;
                next_number += 1;
                let file = shared.env.new_writable(&sst_name(number))?;
                builder = Some((number, TableBuilder::new(file, shared.options.clone())));
            }
            let (_, b) = builder.as_mut().expect("just created");
            b.add(ikey, iter.value())?;
        }
        iter.next()?;
    }
    if let Some((number, b)) = builder.take() {
        if b.num_entries() > 0 {
            outputs.push(finish_output(number, b, publish)?);
        } else {
            let _ = shared.env.delete(&sst_name(number));
        }
    }
    debug_assert!(
        next_number - slice.first_number <= slice.window,
        "merge worker overran its file-number window"
    );
    Ok(outputs)
}

/// Seal one finished output table and hand its number to the publisher
/// thread for upload. A send after the publisher died is ignored here; the
/// upload error surfaces when the caller joins the publisher.
fn finish_output(
    number: u64,
    builder: TableBuilder,
    publish: &std::sync::mpsc::Sender<u64>,
) -> Result<FileMetaData> {
    let smallest = builder.smallest().expect("non-empty output").to_vec();
    let largest = builder.largest().expect("non-empty output").to_vec();
    let file_size = builder.finish()?;
    let _ = publish.send(number);
    Ok(FileMetaData { number, file_size, smallest, largest })
}

/// User-facing forward iterator: newest visible version per key, tombstones
/// elided, pinned at a sequence number.
pub struct DbIterator {
    inner: MergingIterator,
    snapshot: SequenceNumber,
    /// Inclusive lower bound (user-key space) from
    /// [`ReadOptions::iterate_lower_bound`]: every seek target is clamped
    /// up to it, so keys below are never yielded.
    lower_bound: Option<Vec<u8>>,
    key: Vec<u8>,
    value: Vec<u8>,
    valid: bool,
    obs: Arc<obs::Observer>,
    /// Capture a perf-context around each seek/next (from
    /// [`ReadOptions::perf_context`]).
    perf: bool,
    /// Pins the file layout this iterator walks: obsolete tables are not
    /// physically deleted while the pin is held.
    _version: Arc<Version>,
}

impl DbIterator {
    /// Position at the first visible key (at or after the lower bound,
    /// when one is set).
    pub fn seek_to_first(&mut self) -> Result<()> {
        let obs = Arc::clone(&self.obs);
        let _perf = obs.perf_guard(self.perf);
        match self.lower_bound.clone() {
            Some(lower) => self.inner.seek(&make_lookup_key(&lower, self.snapshot))?,
            None => self.inner.seek_to_first()?,
        }
        self.find_next_visible(None)
    }

    /// Position at the first visible key >= `user_key` (clamped up to the
    /// lower bound, when one is set).
    pub fn seek(&mut self, user_key: &[u8]) -> Result<()> {
        let obs = Arc::clone(&self.obs);
        let _perf = obs.perf_guard(self.perf);
        let target = match self.lower_bound.as_deref() {
            Some(lower) if user_key < lower => lower,
            _ => user_key,
        };
        self.inner.seek(&make_lookup_key(target, self.snapshot))?;
        self.find_next_visible(None)
    }

    /// Advance to the next visible key.
    #[allow(clippy::should_implement_trait)] // cursor API, deliberately like LevelDB's
    pub fn next(&mut self) -> Result<()> {
        debug_assert!(self.valid);
        let obs = Arc::clone(&self.obs);
        let _perf = obs.perf_guard(self.perf);
        let timer = self.obs.start();
        let skip = std::mem::take(&mut self.key);
        let result = self.find_next_visible(Some(skip));
        self.obs.finish(obs::Op::IterNext, timer);
        result
    }

    /// Whether the iterator points at a visible entry.
    pub fn valid(&self) -> bool {
        self.valid
    }

    /// Current user key.
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.key
    }

    /// Current value.
    pub fn value(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.value
    }

    /// Scan from the current position, collecting up to `limit` pairs.
    pub fn collect_forward(&mut self, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        while self.valid() && out.len() < limit {
            out.push((self.key.clone(), self.value.clone()));
            self.next()?;
        }
        Ok(out)
    }

    /// Skip entries until a visible one is found. `skip_key` suppresses all
    /// versions of the given user key (used by `next`).
    fn find_next_visible(&mut self, mut skip_key: Option<Vec<u8>>) -> Result<()> {
        self.valid = false;
        while self.inner.valid() {
            let parsed = match parse_internal_key(self.inner.key()) {
                Some(p) => p,
                None => return Err(Error::corruption("bad internal key in iterator")),
            };
            if parsed.sequence > self.snapshot {
                self.inner.next()?;
                continue;
            }
            if skip_key.as_deref() == Some(parsed.user_key) {
                self.inner.next()?;
                continue;
            }
            match parsed.value_type {
                ValueType::Deletion => {
                    // Shadow every older version of this key.
                    skip_key = Some(parsed.user_key.to_vec());
                    self.inner.next()?;
                }
                ValueType::Value => {
                    self.key = parsed.user_key.to_vec();
                    self.value = self.inner.value().to_vec();
                    self.valid = true;
                    return Ok(());
                }
            }
        }
        Ok(())
    }
}
