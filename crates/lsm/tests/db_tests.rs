//! End-to-end tests of the LSM engine: write/read paths, flush, compaction,
//! snapshots, iterators, and crash recovery.

use std::sync::Arc;

use lsm::{Db, Options, WriteBatch};
use storage::{Env, MemEnv};

fn mem_db(options: Options) -> (Arc<MemEnv>, Db) {
    let env = Arc::new(MemEnv::new());
    let db = Db::open(env.clone() as Arc<dyn Env>, options).unwrap();
    (env, db)
}

fn key(i: usize) -> Vec<u8> {
    format!("key{i:06}").into_bytes()
}

fn val(i: usize, tag: &str) -> Vec<u8> {
    format!("value{i:06}-{tag}").into_bytes()
}

#[test]
fn put_get_delete() {
    let (_env, db) = mem_db(Options::small_for_tests());
    db.put(b"a", b"1").unwrap();
    db.put(b"b", b"2").unwrap();
    assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
    assert_eq!(db.get(b"b").unwrap(), Some(b"2".to_vec()));
    assert_eq!(db.get(b"c").unwrap(), None);
    db.delete(b"a").unwrap();
    assert_eq!(db.get(b"a").unwrap(), None);
    db.put(b"a", b"3").unwrap();
    assert_eq!(db.get(b"a").unwrap(), Some(b"3".to_vec()));
}

#[test]
fn overwrites_return_newest() {
    let (_env, db) = mem_db(Options::small_for_tests());
    for round in 0..5 {
        for i in 0..100 {
            db.put(&key(i), &val(i, &round.to_string())).unwrap();
        }
    }
    for i in 0..100 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, "4")));
    }
}

#[test]
fn batch_is_atomic_and_ordered() {
    let (_env, db) = mem_db(Options::small_for_tests());
    db.put(b"x", b"old").unwrap();
    let mut batch = WriteBatch::new();
    batch.put(b"x", b"mid");
    batch.delete(b"x");
    batch.put(b"x", b"new");
    batch.put(b"y", b"why");
    db.write(batch).unwrap();
    assert_eq!(db.get(b"x").unwrap(), Some(b"new".to_vec()));
    assert_eq!(db.get(b"y").unwrap(), Some(b"why".to_vec()));
}

#[test]
fn reads_after_flush_hit_sstables() {
    let (env, db) = mem_db(Options::small_for_tests());
    for i in 0..200 {
        db.put(&key(i), &val(i, "flushed")).unwrap();
    }
    db.flush().unwrap();
    assert!(db.num_files_at_level(0) >= 1);
    // SSTs exist on the env.
    assert!(!env
        .list("")
        .unwrap()
        .iter()
        .filter(|n| n.ends_with(".sst"))
        .collect::<Vec<_>>()
        .is_empty());
    for i in (0..200).step_by(7) {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, "flushed")));
    }
    assert_eq!(db.get(b"missing").unwrap(), None);
}

#[test]
fn deletes_survive_flush() {
    let (_env, db) = mem_db(Options::small_for_tests());
    for i in 0..50 {
        db.put(&key(i), &val(i, "v")).unwrap();
    }
    db.flush().unwrap();
    for i in 0..50 {
        if i % 2 == 0 {
            db.delete(&key(i)).unwrap();
        }
    }
    db.flush().unwrap();
    for i in 0..50 {
        let got = db.get(&key(i)).unwrap();
        if i % 2 == 0 {
            assert_eq!(got, None, "key {i} should be deleted");
        } else {
            assert_eq!(got, Some(val(i, "v")));
        }
    }
}

#[test]
fn heavy_writes_trigger_compaction_and_stay_correct() {
    let options = Options {
        write_buffer_size: 16 << 10,
        target_file_size: 16 << 10,
        max_bytes_for_level_base: 64 << 10,
        l0_compaction_trigger: 2,
        ..Options::small_for_tests()
    };
    let (_env, db) = mem_db(options);
    let n = 2000;
    for i in 0..n {
        db.put(&key(i % 500), &val(i, "latest")).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    assert!(db.stats().compactions.load(std::sync::atomic::Ordering::Relaxed) > 0);
    // Values are the newest write of each key slot.
    for slot in 0..500 {
        let latest = (0..n).filter(|i| i % 500 == slot).max().unwrap();
        assert_eq!(db.get(&key(slot)).unwrap(), Some(val(latest, "latest")), "slot {slot}");
    }
    // Deep levels got populated.
    let deep_files: usize = (1..7).map(|l| db.num_files_at_level(l)).sum();
    assert!(deep_files > 0, "expected files below L0");
}

#[test]
fn iterator_scans_in_order_across_memtable_and_ssts() {
    let options = Options { write_buffer_size: 8 << 10, ..Options::small_for_tests() };
    let (_env, db) = mem_db(options);
    for i in (0..300).rev() {
        db.put(&key(i), &val(i, "s")).unwrap();
    }
    db.flush().unwrap();
    for i in 300..350 {
        db.put(&key(i), &val(i, "s")).unwrap(); // still in memtable
    }
    let mut it = db.iter().unwrap();
    it.seek_to_first().unwrap();
    let mut count = 0;
    let mut prev: Option<Vec<u8>> = None;
    while it.valid() {
        if let Some(p) = &prev {
            assert!(p < &it.key().to_vec());
        }
        prev = Some(it.key().to_vec());
        count += 1;
        it.next().unwrap();
    }
    assert_eq!(count, 350);
}

#[test]
fn iterator_seek_and_collect() {
    let (_env, db) = mem_db(Options::small_for_tests());
    for i in 0..100 {
        db.put(&key(i), &val(i, "x")).unwrap();
    }
    let mut it = db.iter().unwrap();
    it.seek(&key(90)).unwrap();
    let rest = it.collect_forward(100).unwrap();
    assert_eq!(rest.len(), 10);
    assert_eq!(rest[0].0, key(90));
    assert_eq!(rest[9].0, key(99));
}

#[test]
fn iterator_hides_deleted_keys() {
    let (_env, db) = mem_db(Options::small_for_tests());
    for i in 0..20 {
        db.put(&key(i), &val(i, "x")).unwrap();
    }
    db.flush().unwrap();
    for i in (0..20).step_by(2) {
        db.delete(&key(i)).unwrap();
    }
    let mut it = db.iter().unwrap();
    it.seek_to_first().unwrap();
    let all = it.collect_forward(100).unwrap();
    assert_eq!(all.len(), 10);
    for (k, _) in &all {
        let i: usize = String::from_utf8_lossy(&k[3..]).parse().unwrap();
        assert_eq!(i % 2, 1);
    }
}

#[test]
fn snapshot_isolates_reads() {
    let (_env, db) = mem_db(Options::small_for_tests());
    db.put(b"k", b"v1").unwrap();
    let snap = db.snapshot();
    db.put(b"k", b"v2").unwrap();
    db.delete(b"k").unwrap();
    assert_eq!(db.get(b"k").unwrap(), None);
    assert_eq!(db.get_at(b"k", &snap).unwrap(), Some(b"v1".to_vec()));
    // Snapshot survives a flush.
    db.flush().unwrap();
    assert_eq!(db.get_at(b"k", &snap).unwrap(), Some(b"v1".to_vec()));
}

#[test]
fn snapshot_iterator_sees_frozen_state() {
    let (_env, db) = mem_db(Options::small_for_tests());
    for i in 0..10 {
        db.put(&key(i), &val(i, "old")).unwrap();
    }
    let snap = db.snapshot();
    for i in 0..10 {
        db.put(&key(i), &val(i, "new")).unwrap();
    }
    for i in 10..20 {
        db.put(&key(i), &val(i, "new")).unwrap();
    }
    let mut it = db.iter_at(&snap).unwrap();
    it.seek_to_first().unwrap();
    let all = it.collect_forward(100).unwrap();
    assert_eq!(all.len(), 10);
    for (i, (_, v)) in all.iter().enumerate() {
        assert_eq!(v, &val(i, "old"));
    }
}

#[test]
fn recovery_replays_wal() {
    let env = Arc::new(MemEnv::new());
    {
        let db = Db::open(env.clone() as Arc<dyn Env>, Options::small_for_tests()).unwrap();
        for i in 0..100 {
            db.put(&key(i), &val(i, "walled")).unwrap();
        }
        // Drop without flush: data only in WAL + memtable.
    }
    let db = Db::open(env as Arc<dyn Env>, Options::small_for_tests()).unwrap();
    for i in 0..100 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, "walled")), "key {i}");
    }
}

#[test]
fn recovery_preserves_flushed_and_walled_data() {
    let env = Arc::new(MemEnv::new());
    {
        let db = Db::open(env.clone() as Arc<dyn Env>, Options::small_for_tests()).unwrap();
        for i in 0..100 {
            db.put(&key(i), &val(i, "a")).unwrap();
        }
        db.flush().unwrap();
        for i in 50..150 {
            db.put(&key(i), &val(i, "b")).unwrap();
        }
    }
    let db = Db::open(env as Arc<dyn Env>, Options::small_for_tests()).unwrap();
    for i in 0..50 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, "a")));
    }
    for i in 50..150 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, "b")));
    }
}

#[test]
fn recovery_is_idempotent_across_many_restarts() {
    let env = Arc::new(MemEnv::new());
    for round in 0..5usize {
        let db = Db::open(env.clone() as Arc<dyn Env>, Options::small_for_tests()).unwrap();
        // All earlier rounds' data must still be there.
        for r in 0..round {
            for i in 0..40 {
                assert_eq!(
                    db.get(&key(r * 40 + i)).unwrap(),
                    Some(val(r * 40 + i, "r")),
                    "round {round} reading {r}"
                );
            }
        }
        for i in 0..40 {
            db.put(&key(round * 40 + i), &val(round * 40 + i, "r")).unwrap();
        }
    }
}

#[test]
fn sequence_numbers_advance_per_operation() {
    let (_env, db) = mem_db(Options::small_for_tests());
    let s0 = db.last_sequence();
    db.put(b"a", b"1").unwrap();
    assert_eq!(db.last_sequence(), s0 + 1);
    let mut batch = WriteBatch::new();
    batch.put(b"b", b"2");
    batch.put(b"c", b"3");
    batch.delete(b"a");
    db.write(batch).unwrap();
    assert_eq!(db.last_sequence(), s0 + 4);
}

#[test]
fn empty_batch_is_a_noop() {
    let (_env, db) = mem_db(Options::small_for_tests());
    let s0 = db.last_sequence();
    db.write(WriteBatch::new()).unwrap();
    assert_eq!(db.last_sequence(), s0);
}

#[test]
fn compaction_reclaims_deleted_space() {
    let options = Options {
        write_buffer_size: 16 << 10,
        target_file_size: 16 << 10,
        max_bytes_for_level_base: 32 << 10,
        l0_compaction_trigger: 2,
        ..Options::small_for_tests()
    };
    let (_env, db) = mem_db(options);
    let big = vec![b'x'; 512];
    for i in 0..500 {
        db.put(&key(i), &big).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    for i in 0..500 {
        db.delete(&key(i)).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    // Keep compacting until tombstones reach the bottom.
    while db.compact_once().unwrap() {}
    for i in (0..500).step_by(13) {
        assert_eq!(db.get(&key(i)).unwrap(), None);
    }
    let mut it = db.iter().unwrap();
    it.seek_to_first().unwrap();
    assert!(!it.valid(), "all keys deleted; iterator must be empty");
}

#[test]
fn close_is_idempotent_and_rejects_writes() {
    let (_env, db) = mem_db(Options::small_for_tests());
    db.put(b"a", b"1").unwrap();
    db.close().unwrap();
    db.close().unwrap();
    assert!(db.put(b"b", b"2").is_err());
}

#[test]
fn get_with_bloom_disabled_still_correct() {
    let options = Options { bloom_bits_per_key: 0, ..Options::small_for_tests() };
    let (_env, db) = mem_db(options);
    for i in 0..100 {
        db.put(&key(i), &val(i, "nb")).unwrap();
    }
    db.flush().unwrap();
    for i in 0..100 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, "nb")));
    }
    assert_eq!(db.get(b"absent").unwrap(), None);
}

#[test]
fn concurrent_readers_and_writer() {
    let options = Options { write_buffer_size: 32 << 10, ..Options::small_for_tests() };
    let (_env, db) = mem_db(options);
    let db = Arc::new(db);
    for i in 0..200 {
        db.put(&key(i), &val(i, "seed")).unwrap();
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..4 {
        let db = db.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                for i in (0..200).step_by(11) {
                    let got = db.get(&key(i)).unwrap().expect("key must exist");
                    assert!(got.starts_with(format!("value{i:06}").as_bytes()));
                }
            }
        }));
    }
    for round in 0..20 {
        for i in 0..200 {
            db.put(&key(i), &val(i, &format!("round{round}"))).unwrap();
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
}

#[test]
fn wal_disabled_mode_with_manual_flush() {
    let env = Arc::new(MemEnv::new());
    let options = Options {
        wal_enabled: false,
        write_buffer_size: usize::MAX,
        auto_compaction: false,
        ..Options::small_for_tests()
    };
    {
        let db = Db::open(env.clone() as Arc<dyn Env>, options.clone()).unwrap();
        for i in 0..100 {
            db.put(&key(i), &val(i, "nowal")).unwrap();
        }
        db.flush().unwrap();
        for i in 100..120 {
            db.put(&key(i), &val(i, "lost")).unwrap();
        }
        // No WAL: unflushed writes are lost on crash by design (the outer
        // RocksMash eWAL provides durability in that configuration).
    }
    let db = Db::open(env as Arc<dyn Env>, options).unwrap();
    for i in 0..100 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, "nowal")));
    }
    for i in 100..120 {
        assert_eq!(db.get(&key(i)).unwrap(), None, "unflushed write must be gone");
    }
    // And no WAL files were ever created.
}

#[test]
fn multi_get_is_consistent() {
    let (_env, db) = mem_db(Options::small_for_tests());
    for i in 0..50 {
        db.put(&key(i), &val(i, "mg")).unwrap();
    }
    db.delete(&key(7)).unwrap();
    let keys: Vec<Vec<u8>> = (0..10).map(key).collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let got = db.multi_get(&refs).unwrap();
    assert_eq!(got.len(), 10);
    for (i, v) in got.iter().enumerate() {
        if i == 7 {
            assert_eq!(*v, None);
        } else {
            assert_eq!(*v, Some(val(i, "mg")));
        }
    }
}

#[test]
fn compact_range_pushes_data_to_the_bottom() {
    let options = Options {
        write_buffer_size: 16 << 10,
        target_file_size: 16 << 10,
        max_bytes_for_level_base: 32 << 10,
        l0_compaction_trigger: 2,
        auto_compaction: false,
        ..Options::small_for_tests()
    };
    let (_env, db) = mem_db(options);
    for round in 0..4 {
        for i in 0..300 {
            db.put(&key(i), &val(i, &format!("r{round}"))).unwrap();
        }
        db.flush().unwrap();
    }
    assert!(db.num_files_at_level(0) >= 2, "several L0 files before compaction");
    db.compact_range(None, None).unwrap();
    // Everything overlapping was pushed off the upper levels.
    assert_eq!(db.num_files_at_level(0), 0);
    assert_eq!(db.num_files_at_level(1), 0);
    let deep: usize = (2..7).map(|l| db.num_files_at_level(l)).sum();
    assert!(deep > 0);
    for i in (0..300).step_by(17) {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, "r3")), "key {i}");
    }
}

#[test]
fn compact_range_partial_range_only_touches_overlap() {
    let options = Options { auto_compaction: false, ..Options::small_for_tests() };
    let (_env, db) = mem_db(options);
    for i in 0..200 {
        db.put(&key(i), &val(i, "p")).unwrap();
    }
    db.flush().unwrap();
    db.compact_range(Some(&key(0)), Some(&key(50))).unwrap();
    // Data still correct after a bounded compaction.
    for i in (0..200).step_by(11) {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, "p")));
    }
}

#[test]
fn compression_roundtrips_and_shrinks_tables() {
    let plain_opts = Options { compression: false, ..Options::small_for_tests() };
    let comp_opts = Options { compression: true, ..Options::small_for_tests() };
    let value =
        |i: usize| format!("{{\"user\":{i},\"plan\":\"professional\",\"active\":true}}").repeat(4);

    let (plain_env, plain_db) = mem_db(plain_opts);
    let (comp_env, comp_db) = mem_db(comp_opts);
    for i in 0..500 {
        plain_db.put(&key(i), value(i).as_bytes()).unwrap();
        comp_db.put(&key(i), value(i).as_bytes()).unwrap();
    }
    plain_db.flush().unwrap();
    comp_db.flush().unwrap();
    plain_db.wait_for_compactions().unwrap();
    comp_db.wait_for_compactions().unwrap();

    for i in (0..500).step_by(7) {
        assert_eq!(comp_db.get(&key(i)).unwrap(), Some(value(i).into_bytes()), "key {i}");
    }
    let mut it = comp_db.iter().unwrap();
    it.seek_to_first().unwrap();
    assert_eq!(it.collect_forward(usize::MAX).unwrap().len(), 500);

    let sst_bytes = |env: &Arc<MemEnv>| -> u64 {
        env.list("")
            .unwrap()
            .iter()
            .filter(|n| n.ends_with(".sst"))
            .map(|n| env.size(n).unwrap())
            .sum()
    };
    let plain = sst_bytes(&plain_env);
    let compressed = sst_bytes(&comp_env);
    assert!(
        compressed * 2 < plain,
        "compressed tables ({compressed}) should be <50% of plain ({plain})"
    );
}

#[test]
fn compressed_db_recovers_after_restart() {
    let env = Arc::new(MemEnv::new());
    let options = Options { compression: true, ..Options::small_for_tests() };
    {
        let db = Db::open(env.clone() as Arc<dyn Env>, options.clone()).unwrap();
        for i in 0..200 {
            db.put(&key(i), format!("compress-me-{i}").repeat(8).as_bytes()).unwrap();
        }
        db.flush().unwrap();
    }
    let db = Db::open(env as Arc<dyn Env>, options).unwrap();
    for i in (0..200).step_by(13) {
        assert_eq!(
            db.get(&key(i)).unwrap(),
            Some(format!("compress-me-{i}").repeat(8).into_bytes())
        );
    }
}

#[test]
fn debug_string_reports_tree_shape() {
    let (_env, db) = mem_db(Options::small_for_tests());
    for i in 0..100 {
        db.put(&key(i), &val(i, "d")).unwrap();
    }
    db.flush().unwrap();
    let s = db.debug_string();
    assert!(s.contains("L0"), "{s}");
    assert!(s.contains("flushes 1"), "{s}");
    assert!(s.contains("last sequence      100"), "{s}");
}

#[test]
fn checkpoint_opens_as_an_independent_database() {
    let (_env, db) = mem_db(Options::small_for_tests());
    for i in 0..300 {
        db.put(&key(i), &val(i, "cp")).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();

    let target = Arc::new(MemEnv::new());
    let copied = db.checkpoint(&*target).unwrap();
    assert!(copied > 0);

    // Mutate the source after the checkpoint.
    for i in 0..300 {
        db.put(&key(i), &val(i, "post")).unwrap();
    }

    let restored = Db::open(target as Arc<dyn Env>, Options::small_for_tests()).unwrap();
    for i in (0..300).step_by(19) {
        assert_eq!(restored.get(&key(i)).unwrap(), Some(val(i, "cp")), "key {i}");
    }
    restored.close().unwrap();
}

#[test]
fn checkpoint_excludes_unflushed_writes() {
    let (_env, db) = mem_db(Options::small_for_tests());
    for i in 0..50 {
        db.put(&key(i), &val(i, "flushed")).unwrap();
    }
    db.flush().unwrap();
    for i in 50..80 {
        db.put(&key(i), &val(i, "memonly")).unwrap();
    }
    let target = Arc::new(MemEnv::new());
    db.checkpoint(&*target).unwrap();
    let restored = Db::open(target as Arc<dyn Env>, Options::small_for_tests()).unwrap();
    assert_eq!(restored.get(&key(10)).unwrap(), Some(val(10, "flushed")));
    assert_eq!(restored.get(&key(60)).unwrap(), None);
    restored.close().unwrap();
}
