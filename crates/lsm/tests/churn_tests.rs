//! Churn tests: readers, scanners, and snapshot holders racing flushes and
//! compactions. These target the engine's trickiest invariants — version
//! pinning, deferred file deletion, and sequence visibility.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lsm::{Db, Options};
use storage::{Env, MemEnv};

fn churn_options() -> Options {
    Options {
        write_buffer_size: 8 << 10,
        target_file_size: 8 << 10,
        max_bytes_for_level_base: 24 << 10,
        l0_compaction_trigger: 2,
        ..Options::small_for_tests()
    }
}

fn key(i: usize) -> Vec<u8> {
    format!("churn{i:05}").into_bytes()
}

#[test]
fn point_reads_never_fail_during_compaction_storm() {
    let db = Arc::new(Db::open(Arc::new(MemEnv::new()) as Arc<dyn Env>, churn_options()).unwrap());
    for i in 0..300 {
        db.put(&key(i), format!("seed{i}").as_bytes()).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for t in 0..3 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for i in ((t * 7)..300).step_by(13) {
                    let got = db.get(&key(i)).unwrap();
                    assert!(got.is_some(), "key {i} vanished");
                    reads += 1;
                }
            }
            reads
        }));
    }
    // Writer drives flush + compaction churn.
    for round in 0..30 {
        for i in 0..300 {
            db.put(&key(i), format!("round{round}-{i}-{}", "x".repeat(64)).as_bytes()).unwrap();
        }
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 0);
    db.close().unwrap();
}

#[test]
fn scans_stay_sorted_and_complete_during_writes() {
    let db = Arc::new(Db::open(Arc::new(MemEnv::new()) as Arc<dyn Env>, churn_options()).unwrap());
    for i in 0..400 {
        db.put(&key(i), b"seed").unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let scanner = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut scans = 0;
            while !stop.load(Ordering::Relaxed) {
                let mut it = db.iter().unwrap();
                it.seek_to_first().unwrap();
                let rows = it.collect_forward(usize::MAX).unwrap();
                // Keys never deleted in this test: a scan snapshot must see
                // all 400 keys, in order.
                assert_eq!(rows.len(), 400, "scan lost keys");
                assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "scan out of order");
                scans += 1;
            }
            scans
        })
    };
    for round in 0..20 {
        for i in 0..400 {
            db.put(&key(i), format!("r{round}{}", "y".repeat(80)).as_bytes()).unwrap();
        }
    }
    stop.store(true, Ordering::Relaxed);
    let scans = scanner.join().unwrap();
    assert!(scans > 0, "scanner made no progress");
    db.close().unwrap();
}

#[test]
fn old_snapshots_stay_readable_through_heavy_churn() {
    let db = Db::open(Arc::new(MemEnv::new()) as Arc<dyn Env>, churn_options()).unwrap();
    for i in 0..200 {
        db.put(&key(i), format!("epoch0-{i}").as_bytes()).unwrap();
    }
    let snap = db.snapshot();
    // Heavy churn: many epochs of overwrites, flushes, compactions.
    for epoch in 1..=10 {
        for i in 0..200 {
            db.put(&key(i), format!("epoch{epoch}-{i}-{}", "z".repeat(100)).as_bytes()).unwrap();
        }
        db.flush().unwrap();
    }
    db.wait_for_compactions().unwrap();
    // The snapshot still reads epoch-0 values for every key.
    for i in (0..200).step_by(7) {
        assert_eq!(
            db.get_at(&key(i), &snap).unwrap(),
            Some(format!("epoch0-{i}").into_bytes()),
            "snapshot read {i}"
        );
    }
    drop(snap);
    // After the snapshot is released, compaction may reclaim old versions.
    while db.compact_once().unwrap() {}
    for i in (0..200).step_by(7) {
        let v = db.get(&key(i)).unwrap().unwrap();
        assert!(v.starts_with(format!("epoch10-{i}").as_bytes()));
    }
    db.close().unwrap();
}

#[test]
fn iterators_pin_files_across_compactions() {
    let db = Db::open(Arc::new(MemEnv::new()) as Arc<dyn Env>, churn_options()).unwrap();
    for i in 0..500 {
        db.put(&key(i), format!("pin-{i}").as_bytes()).unwrap();
    }
    db.flush().unwrap();
    // Open an iterator, then churn the tree underneath it.
    let mut it = db.iter().unwrap();
    it.seek_to_first().unwrap();
    for i in 0..500 {
        db.put(&key(i), format!("new-{i}-{}", "w".repeat(60)).as_bytes()).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    // The iterator still walks the pinned view without errors.
    let rows = it.collect_forward(usize::MAX).unwrap();
    assert_eq!(rows.len(), 500);
    for (i, (_, v)) in rows.iter().enumerate() {
        assert_eq!(v, format!("pin-{i}").as_bytes(), "pinned value {i}");
    }
    db.close().unwrap();
}

#[test]
fn mixed_delete_write_churn_converges() {
    let db = Db::open(Arc::new(MemEnv::new()) as Arc<dyn Env>, churn_options()).unwrap();
    // Interleave writes and deletes across flush boundaries, ending with a
    // known final state.
    for wave in 0..6 {
        for i in 0..300 {
            if (i + wave) % 3 == 0 {
                db.delete(&key(i)).unwrap();
            } else {
                db.put(&key(i), format!("w{wave}-{i}").as_bytes()).unwrap();
            }
        }
        db.flush().unwrap();
    }
    db.wait_for_compactions().unwrap();
    while db.compact_once().unwrap() {}
    for i in 0..300 {
        let expect_deleted = (i + 5) % 3 == 0;
        let got = db.get(&key(i)).unwrap();
        if expect_deleted {
            assert_eq!(got, None, "key {i} should be deleted");
        } else {
            assert_eq!(got, Some(format!("w5-{i}").into_bytes()), "key {i}");
        }
    }
    db.close().unwrap();
}

#[test]
fn compact_range_races_background_compaction_safely() {
    let db = Arc::new(Db::open(Arc::new(MemEnv::new()) as Arc<dyn Env>, churn_options()).unwrap());
    for i in 0..400 {
        db.put(&key(i), b"seed").unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut round = 0;
            while !stop.load(Ordering::Relaxed) {
                for i in 0..400 {
                    db.put(&key(i), format!("w{round}-{}", "q".repeat(50)).as_bytes()).unwrap();
                }
                round += 1;
            }
            round
        })
    };
    // Manual range compactions racing automatic ones and the writer.
    for _ in 0..5 {
        db.compact_range(Some(&key(100)), Some(&key(300))).unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let rounds = writer.join().unwrap();
    assert!(rounds > 0);
    // Everything still readable and newest-wins.
    for i in (0..400).step_by(41) {
        assert!(db.get(&key(i)).unwrap().is_some(), "key {i}");
    }
    db.close().unwrap();
}
