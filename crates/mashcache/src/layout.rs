//! Compaction-aware extent layout.
//!
//! Cache space = `num_extents` extents × `slots_per_extent` slots ×
//! `slot_size` bytes. An extent belongs to at most one SSTable at a time,
//! so the blocks of one table are physically clustered and the table's
//! entire cache footprint can be reclaimed by pushing its extents back on
//! the free list — the O(1)-per-extent invalidation the paper's
//! compaction experiments rely on.

/// Allocates and frees extents; pure bookkeeping, no I/O.
#[derive(Debug)]
pub struct ExtentAllocator {
    free: Vec<u32>,
    num_extents: u32,
    slots_per_extent: u32,
    slot_size: u32,
}

impl ExtentAllocator {
    /// Carve `capacity_bytes` into extents.
    pub fn new(capacity_bytes: u64, slot_size: u32, slots_per_extent: u32) -> Self {
        assert!(slot_size > 0 && slots_per_extent > 0);
        let extent_bytes = slot_size as u64 * slots_per_extent as u64;
        let num_extents = (capacity_bytes / extent_bytes) as u32;
        // LIFO free list: reuse recently-freed extents first (warm pages).
        let free: Vec<u32> = (0..num_extents).rev().collect();
        ExtentAllocator { free, num_extents, slots_per_extent, slot_size }
    }

    /// Total extents in the cache space.
    pub fn num_extents(&self) -> u32 {
        self.num_extents
    }

    /// Extents currently unallocated.
    pub fn free_extents(&self) -> usize {
        self.free.len()
    }

    /// Slots in one extent.
    pub fn slots_per_extent(&self) -> u32 {
        self.slots_per_extent
    }

    /// Bytes in one slot.
    pub fn slot_size(&self) -> u32 {
        self.slot_size
    }

    /// Take one extent, or `None` when the cache space is exhausted.
    pub fn allocate(&mut self) -> Option<u32> {
        self.free.pop()
    }

    /// Return an extent to the free list.
    pub fn free(&mut self, extent: u32) {
        debug_assert!(extent < self.num_extents);
        debug_assert!(!self.free.contains(&extent), "double free of extent {extent}");
        self.free.push(extent);
    }

    /// Global slot number of `slot_in_extent` within `extent`.
    pub fn global_slot(&self, extent: u32, slot_in_extent: u32) -> u32 {
        debug_assert!(slot_in_extent < self.slots_per_extent);
        extent * self.slots_per_extent + slot_in_extent
    }

    /// Extent that owns a global slot.
    pub fn extent_of_slot(&self, global_slot: u32) -> u32 {
        global_slot / self.slots_per_extent
    }

    /// Byte offset of a global slot in the cache space.
    pub fn slot_offset(&self, global_slot: u32) -> u64 {
        global_slot as u64 * self.slot_size as u64
    }
}

/// Per-SSTable cache residency: the extents it owns and the write cursor.
#[derive(Debug, Default)]
pub struct FileExtents {
    /// Extents owned, in allocation order; blocks fill them sequentially.
    pub extents: Vec<u32>,
    /// Next free slot index within the last extent.
    pub cursor: u32,
}

impl FileExtents {
    /// Allocate the next slot for this file, grabbing a new extent from
    /// `alloc` when the current one is full. Returns the global slot.
    pub fn next_slot(&mut self, alloc: &mut ExtentAllocator) -> Option<u32> {
        if self.extents.is_empty() || self.cursor == alloc.slots_per_extent() {
            let extent = alloc.allocate()?;
            self.extents.push(extent);
            self.cursor = 0;
        }
        let extent = *self.extents.last().expect("just ensured");
        let slot = alloc.global_slot(extent, self.cursor);
        self.cursor += 1;
        Some(slot)
    }

    /// Drop the file's oldest extent (its coldest blocks), returning it to
    /// the allocator. Returns the freed extent.
    pub fn evict_oldest_extent(&mut self, alloc: &mut ExtentAllocator) -> Option<u32> {
        if self.extents.is_empty() {
            return None;
        }
        let extent = self.extents.remove(0);
        if self.extents.is_empty() {
            self.cursor = 0;
        }
        alloc.free(extent);
        Some(extent)
    }

    /// Release every extent (compaction invalidated the file).
    pub fn release_all(&mut self, alloc: &mut ExtentAllocator) -> usize {
        let n = self.extents.len();
        for extent in self.extents.drain(..) {
            alloc.free(extent);
        }
        self.cursor = 0;
        n
    }

    /// Number of slots this file currently occupies.
    pub fn used_slots(&self, alloc: &ExtentAllocator) -> u32 {
        match self.extents.len() {
            0 => 0,
            n => (n as u32 - 1) * alloc.slots_per_extent() + self.cursor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carves_capacity_into_extents() {
        let a = ExtentAllocator::new(1 << 20, 4096, 16);
        assert_eq!(a.num_extents(), 16); // 1 MiB / 64 KiB
        assert_eq!(a.free_extents(), 16);
    }

    #[test]
    fn allocate_until_exhaustion() {
        let mut a = ExtentAllocator::new(64 * 1024, 4096, 4);
        let mut got = Vec::new();
        while let Some(e) = a.allocate() {
            got.push(e);
        }
        assert_eq!(got.len(), 4);
        got.sort();
        assert_eq!(got, vec![0, 1, 2, 3]);
        a.free(2);
        assert_eq!(a.allocate(), Some(2));
    }

    #[test]
    fn slot_arithmetic_roundtrips() {
        let a = ExtentAllocator::new(1 << 20, 1024, 8);
        let slot = a.global_slot(5, 3);
        assert_eq!(slot, 43);
        assert_eq!(a.extent_of_slot(slot), 5);
        assert_eq!(a.slot_offset(slot), 43 * 1024);
    }

    #[test]
    fn file_extents_fill_sequentially() {
        let mut a = ExtentAllocator::new(1 << 20, 1024, 4);
        let mut f = FileExtents::default();
        let slots: Vec<u32> = (0..10).map(|_| f.next_slot(&mut a).unwrap()).collect();
        // 10 slots over 3 extents (4+4+2).
        assert_eq!(f.extents.len(), 3);
        assert_eq!(f.used_slots(&a), 10);
        // Slots within one extent are contiguous.
        for w in slots.windows(2) {
            let same_extent = a.extent_of_slot(w[0]) == a.extent_of_slot(w[1]);
            if same_extent {
                assert_eq!(w[1], w[0] + 1);
            }
        }
    }

    #[test]
    fn release_all_returns_extents() {
        let mut a = ExtentAllocator::new(64 * 1024, 4096, 4); // 4 extents
        let mut f = FileExtents::default();
        for _ in 0..12 {
            f.next_slot(&mut a).unwrap();
        }
        assert_eq!(a.free_extents(), 1);
        let released = f.release_all(&mut a);
        assert_eq!(released, 3);
        assert_eq!(a.free_extents(), 4);
        assert_eq!(f.used_slots(&a), 0);
    }

    #[test]
    fn evict_oldest_extent_frees_coldest_blocks() {
        let mut a = ExtentAllocator::new(64 * 1024, 4096, 4);
        let mut f = FileExtents::default();
        for _ in 0..8 {
            f.next_slot(&mut a).unwrap();
        }
        let first_extent = f.extents[0];
        assert_eq!(f.evict_oldest_extent(&mut a), Some(first_extent));
        assert_eq!(f.extents.len(), 1);
        assert_eq!(a.free_extents(), 3);
    }

    #[test]
    fn exhausted_allocator_returns_none() {
        let mut a = ExtentAllocator::new(16 * 1024, 4096, 4); // exactly 1 extent
        let mut f = FileExtents::default();
        for _ in 0..4 {
            assert!(f.next_slot(&mut a).is_some());
        }
        assert_eq!(f.next_slot(&mut a), None);
    }
}
