//! Frequency-based admission.
//!
//! A 4-bit count-min sketch (TinyLFU style) estimates how often each block
//! has been requested. The cache only admits blocks on their second touch
//! within an aging window, so large one-pass scans cannot evict the working
//! set — important for the paper's mixed scan/point-read workloads.

/// 4-bit count-min sketch with periodic halving.
pub struct FrequencySketch {
    counters: Vec<u64>, // 16 counters of 4 bits per u64
    mask: usize,
    additions: usize,
    reset_at: usize,
}

impl FrequencySketch {
    /// Sketch sized for roughly `expected_items` tracked blocks.
    pub fn new(expected_items: usize) -> Self {
        let slots = expected_items.max(64).next_power_of_two();
        let words = slots / 16 + 1;
        FrequencySketch {
            counters: vec![0; words.next_power_of_two()],
            mask: words.next_power_of_two() - 1,
            additions: 0,
            reset_at: slots * 8,
        }
    }

    /// Record one access to `key`.
    pub fn touch(&mut self, key: u64) {
        for i in 0..4 {
            let (word, shift) = self.position(key, i);
            let counter = (self.counters[word] >> shift) & 0xf;
            if counter < 15 {
                self.counters[word] += 1 << shift;
            }
        }
        self.additions += 1;
        if self.additions >= self.reset_at {
            self.age();
        }
    }

    /// Estimated access count of `key` (min over the hash rows).
    pub fn estimate(&self, key: u64) -> u8 {
        (0..4)
            .map(|i| {
                let (word, shift) = self.position(key, i);
                ((self.counters[word] >> shift) & 0xf) as u8
            })
            .min()
            .expect("four rows")
    }

    /// Whether a block with this key should be admitted: it has been seen
    /// before within the aging window.
    pub fn admit(&self, key: u64) -> bool {
        self.estimate(key) >= 1
    }

    fn position(&self, key: u64, row: u64) -> (usize, u32) {
        let h =
            key.wrapping_add(row.wrapping_mul(0x9e3779b97f4a7c15)).wrapping_mul(0xff51afd7ed558ccd);
        let counter_index = (h >> 32) as usize & (self.mask * 16 + 15);
        (counter_index / 16, (counter_index % 16) as u32 * 4)
    }

    fn age(&mut self) {
        for word in &mut self.counters {
            // Halve every 4-bit counter in the word.
            *word = (*word >> 1) & 0x7777_7777_7777_7777;
        }
        self.additions /= 2;
    }
}

/// Stable 64-bit identity for a (file, offset) block.
pub fn block_key(file_number: u64, offset: u64) -> u64 {
    file_number
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(offset.wrapping_mul(0xc2b2ae3d27d4eb4f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unseen_key_is_not_admitted() {
        let sketch = FrequencySketch::new(1024);
        assert!(!sketch.admit(42));
        assert_eq!(sketch.estimate(42), 0);
    }

    #[test]
    fn touched_key_is_admitted() {
        let mut sketch = FrequencySketch::new(1024);
        sketch.touch(42);
        assert!(sketch.admit(42));
        assert!(sketch.estimate(42) >= 1);
    }

    #[test]
    fn estimates_track_relative_frequency() {
        let mut sketch = FrequencySketch::new(4096);
        for _ in 0..10 {
            sketch.touch(1);
        }
        sketch.touch(2);
        assert!(sketch.estimate(1) > sketch.estimate(2));
    }

    #[test]
    fn counters_saturate_at_15() {
        let mut sketch = FrequencySketch::new(64);
        for _ in 0..100 {
            sketch.touch(7);
        }
        assert!(sketch.estimate(7) <= 15);
    }

    #[test]
    fn aging_halves_counts() {
        let mut sketch = FrequencySketch::new(64);
        for _ in 0..8 {
            sketch.touch(7);
        }
        let before = sketch.estimate(7);
        sketch.age();
        let after = sketch.estimate(7);
        assert!(after <= before / 2 + 1, "{before} -> {after}");
    }

    #[test]
    fn block_keys_distinguish_files_and_offsets() {
        assert_ne!(block_key(1, 0), block_key(2, 0));
        assert_ne!(block_key(1, 4096), block_key(1, 8192));
    }
}
