//! Raw cache-space storage: a fixed-size area supporting random-access
//! reads and writes at slot granularity.
//!
//! The persistent cache needs in-place overwrites, which the append-only
//! `storage::Env` abstraction deliberately does not offer, so it gets its
//! own minimal trait with a file-backed and an in-memory implementation.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;

use parking_lot::Mutex;

/// Fixed-size random-access byte array.
pub trait CacheStorage: Send + Sync {
    /// Write `data` at `offset`; the range must lie inside the capacity.
    fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<()>;

    /// Read `buf.len()` bytes at `offset`.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Total capacity in bytes.
    fn capacity(&self) -> u64;
}

/// Heap-backed cache space (tests, benchmarks).
pub struct MemCacheStorage {
    data: Mutex<Vec<u8>>,
}

impl MemCacheStorage {
    /// Allocate `capacity` zeroed bytes.
    pub fn new(capacity: usize) -> Self {
        MemCacheStorage { data: Mutex::new(vec![0u8; capacity]) }
    }
}

impl CacheStorage for MemCacheStorage {
    fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        let mut store = self.data.lock();
        let off = offset as usize;
        if off + data.len() > store.len() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "write past capacity"));
        }
        store[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let store = self.data.lock();
        let off = offset as usize;
        if off + buf.len() > store.len() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "read past capacity"));
        }
        buf.copy_from_slice(&store[off..off + buf.len()]);
        Ok(())
    }

    fn capacity(&self) -> u64 {
        self.data.lock().len() as u64
    }
}

/// File-backed cache space on the local tier.
pub struct FileCacheStorage {
    file: Mutex<File>,
    capacity: u64,
}

impl FileCacheStorage {
    /// Create (or reuse) a cache file of exactly `capacity` bytes.
    pub fn create(path: &Path, capacity: u64) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // Deliberately no truncate: recovery reuses existing cache space.
        let file =
            OpenOptions::new().create(true).truncate(false).read(true).write(true).open(path)?;
        file.set_len(capacity)?;
        Ok(FileCacheStorage { file: Mutex::new(file), capacity })
    }
}

impl CacheStorage for FileCacheStorage {
    fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        if offset + data.len() as u64 > self.capacity {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "write past capacity"));
        }
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(data)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        if offset + buf.len() as u64 > self.capacity {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "read past capacity"));
        }
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(storage: &dyn CacheStorage) {
        storage.write_at(100, b"hello world").unwrap();
        let mut buf = [0u8; 11];
        storage.read_at(100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
        // Overwrite in place.
        storage.write_at(100, b"HELLO").unwrap();
        storage.read_at(100, &mut buf).unwrap();
        assert_eq!(&buf, b"HELLO world");
    }

    #[test]
    fn mem_roundtrip_and_bounds() {
        let s = MemCacheStorage::new(1024);
        roundtrip(&s);
        assert_eq!(s.capacity(), 1024);
        assert!(s.write_at(1020, b"12345").is_err());
        let mut buf = [0u8; 8];
        assert!(s.read_at(1020, &mut buf).is_err());
    }

    #[test]
    fn file_roundtrip_and_bounds() {
        let dir = std::env::temp_dir().join(format!("mashcache-st-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = FileCacheStorage::create(&dir.join("cache.dat"), 4096).unwrap();
        roundtrip(&s);
        assert_eq!(s.capacity(), 4096);
        assert!(s.write_at(4090, b"12345678").is_err());
    }
}
