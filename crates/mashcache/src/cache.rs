//! The RocksMash persistent cache engine.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::admission::{block_key, FrequencySketch};
use crate::layout::{ExtentAllocator, FileExtents};
use crate::meta::PackedIndex;
use crate::storage::CacheStorage;

/// Bytes of slot header: file (8) + offset (8) + len (4) + checksum (4).
pub const SLOT_HEADER: usize = 24;

/// Interface shared by the RocksMash cache and the conventional baseline,
/// so the tiering layer and the benchmarks can swap them freely.
pub trait PersistentBlockCache: Send + Sync {
    /// Fetch the cached block of `file` at `offset`.
    fn get(&self, file: u64, offset: u64) -> Option<Vec<u8>>;

    /// Insert a block read from `file` at `offset`; `level` is the LSM
    /// level the file currently resides at (colder levels evict first).
    fn put(&self, file: u64, offset: u64, data: &[u8], level: usize);

    /// Insert a block fetched by speculative readahead rather than a demand
    /// read. Implementations may admit it at a lower priority — in
    /// particular, without displacing demand-fetched data. The default
    /// treats it as an ordinary [`put`](Self::put).
    fn put_prefetched(&self, file: u64, offset: u64, data: &[u8], level: usize) {
        self.put(file, offset, data, level);
    }

    /// Drop every cached block of `file` (compaction obsoleted it).
    fn invalidate_file(&self, file: u64);

    /// Drop every cached block of each file in `files`. Equivalent to
    /// calling [`invalidate_file`](Self::invalidate_file) per file;
    /// implementations may batch the work under one lock acquisition
    /// (compaction GC retires whole input sets at once).
    fn invalidate_files(&self, files: &[u64]) {
        for &file in files {
            self.invalidate_file(file);
        }
    }

    /// Bytes of DRAM the cache's metadata currently costs.
    fn metadata_bytes(&self) -> usize;

    /// Bytes of SSTable data currently held in cache slots (slot-size
    /// granularity — the residency accounting's "cache-backed" figure).
    /// Defaults to 0 for implementations that don't track occupancy.
    fn data_bytes(&self) -> u64 {
        0
    }

    /// Counter snapshot.
    fn stats(&self) -> CacheStats;
}

/// Tuning knobs for [`MashCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Slot payload+header size; blocks larger than `slot_size -
    /// SLOT_HEADER` are not cacheable.
    pub slot_size: u32,
    /// Slots per extent (the invalidation/eviction granule).
    pub slots_per_extent: u32,
    /// Frequency-gate admissions (TinyLFU); disable to admit everything.
    pub admission: bool,
    /// Verify the payload checksum on every hit. Slots are immutable and
    /// header-validated, so this only defends against device bit rot; the
    /// checksum is always written and always verified during crash
    /// recovery scans.
    pub verify_read_checksums: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            slot_size: 4096 + SLOT_HEADER as u32,
            slots_per_extent: 64,
            admission: true,
            verify_read_checksums: false,
        }
    }
}

/// Counter snapshot for a persistent cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups that returned data.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Blocks written into the cache.
    pub inserts: u64,
    /// Inserts rejected by the admission policy.
    pub admission_rejects: u64,
    /// Inserts rejected because the block exceeds the slot payload.
    pub oversize_rejects: u64,
    /// Extents freed under capacity pressure.
    pub evicted_extents: u64,
    /// Whole-file invalidations served.
    pub invalidations: u64,
    /// Bookkeeping steps spent inside invalidations (the E8 metric: O(1)
    /// per extent for RocksMash vs O(blocks) for the baseline).
    pub invalidation_steps: u64,
}

impl CacheStats {
    /// hits / (hits + misses); 0 when nothing was looked up.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct FileEntry {
    extents: FileExtents,
    index: PackedIndex,
    level: usize,
    last_access: u64,
}

struct Inner {
    alloc: ExtentAllocator,
    files: HashMap<u64, FileEntry>,
    sketch: FrequencySketch,
    tick: u64,
    stats: CacheStats,
}

/// LSM-aware persistent cache: extent layout + packed metadata + admission.
pub struct MashCache {
    storage: Arc<dyn CacheStorage>,
    inner: Mutex<Inner>,
    config: CacheConfig,
    observer: std::sync::OnceLock<Arc<obs::Observer>>,
}

impl MashCache {
    /// Build a cache over `storage` (its capacity defines the cache size).
    pub fn new(storage: Arc<dyn CacheStorage>, config: CacheConfig) -> Self {
        let alloc =
            ExtentAllocator::new(storage.capacity(), config.slot_size, config.slots_per_extent);
        let expected_blocks = (storage.capacity() / config.slot_size as u64) as usize;
        MashCache {
            storage,
            inner: Mutex::new(Inner {
                alloc,
                files: HashMap::new(),
                sketch: FrequencySketch::new(expected_blocks.max(1024)),
                tick: 0,
                stats: CacheStats::default(),
            }),
            config,
            observer: std::sync::OnceLock::new(),
        }
    }

    /// Attach a latency observer: hits and fills are then timed into its
    /// `cache_hit` / `cache_fill` histograms and evictions surface as
    /// `CacheEvict` journal events. The first attach wins.
    pub fn attach_observer(&self, obs: Arc<obs::Observer>) {
        let _ = self.observer.set(obs);
    }

    fn obs_start(&self) -> Option<std::time::Instant> {
        self.observer.get().and_then(|o| o.start())
    }

    fn obs_finish(&self, op: obs::Op, timer: Option<std::time::Instant>) {
        if let Some(o) = self.observer.get() {
            o.finish(op, timer);
        }
    }

    /// Recover a persistent cache from existing cache space: scan every
    /// slot header, validate its checksum, and rebuild the per-file extent
    /// lists and packed indexes.
    ///
    /// This is what makes the cache *persistent* in the paper's sense — a
    /// restart keeps the warmed working set, and the rebuilt metadata costs
    /// the same packed 8 bytes per block as a live insert. Slots whose
    /// contents fail validation (torn writes at crash time) simply come
    /// back as free space.
    pub fn recover(storage: Arc<dyn CacheStorage>, config: CacheConfig) -> std::io::Result<Self> {
        let cache = MashCache::new(Arc::clone(&storage), config.clone());
        let slot_size = config.slot_size as usize;
        let total_slots = (storage.capacity() / config.slot_size as u64) as u32;
        // Pass 1: read every slot header and group valid slots by extent.
        let mut slot_owner: Vec<Option<(u64, u64, u32)>> = Vec::with_capacity(total_slots as usize);
        let mut buf = vec![0u8; slot_size];
        for slot in 0..total_slots {
            storage.read_at(slot as u64 * config.slot_size as u64, &mut buf)?;
            let file = u64::from_le_bytes(buf[0..8].try_into().expect("8"));
            let offset = u64::from_le_bytes(buf[8..16].try_into().expect("8"));
            let len = u32::from_le_bytes(buf[16..20].try_into().expect("4"));
            let check = u32::from_le_bytes(buf[20..24].try_into().expect("4"));
            let valid = len as usize + SLOT_HEADER <= slot_size
                && (file, offset, len) != (0, 0, 0)
                && Self::checksum(&buf[SLOT_HEADER..SLOT_HEADER + len as usize]) == check
                && offset <= crate::meta::MAX_OFFSET;
            slot_owner.push(valid.then_some((file, offset, len)));
        }
        // Pass 2: rebuild extents and indexes. An extent belongs to the
        // file owning its first valid slot (extents are single-file by
        // construction; mixed extents can only arise from corruption and
        // are dropped).
        let mut inner = cache.inner.lock();
        let spe = config.slots_per_extent;
        let num_extents = total_slots / spe;
        let mut free: Vec<u32> = Vec::new();
        for extent in 0..num_extents {
            let slots = (extent * spe..(extent + 1) * spe)
                .map(|s| (s, slot_owner[s as usize]))
                .collect::<Vec<_>>();
            let owner = slots.iter().find_map(|(_, o)| o.map(|(f, _, _)| f));
            let consistent = match owner {
                Some(file) => {
                    slots.iter().all(|(_, o)| o.map(|(f, _, _)| f == file).unwrap_or(true))
                }
                None => false,
            };
            if let (Some(file), true) = (owner, consistent) {
                let tick = inner.tick;
                let Inner { files, stats, .. } = &mut *inner;
                let entry = files.entry(file).or_insert_with(|| FileEntry {
                    extents: FileExtents::default(),
                    index: PackedIndex::new(),
                    level: usize::MAX, // unknown until the router re-registers
                    last_access: tick,
                });
                entry.extents.extents.push(extent);
                // Cursor: one past the last valid slot in this extent.
                let last_valid = slots
                    .iter()
                    .rev()
                    .find(|(_, o)| o.is_some())
                    .map(|(s, _)| s % spe + 1)
                    .unwrap_or(0);
                entry.extents.cursor = last_valid;
                for (slot, owner) in &slots {
                    if let Some((_, offset, _)) = owner {
                        entry.index.insert(*offset, *slot);
                        stats.inserts += 1;
                    }
                }
            } else {
                free.push(extent);
            }
        }
        // Rebuild the allocator's free list (freshest-first like new()).
        while inner.alloc.allocate().is_some() {}
        for extent in free.into_iter().rev() {
            inner.alloc.free(extent);
        }
        drop(inner);
        Ok(cache)
    }

    /// Drop cached blocks of every file not in `live` (used after recovery
    /// to discard blocks of SSTables that no longer exist).
    pub fn retain_files(&self, live: &std::collections::BTreeSet<u64>) {
        let mut inner = self.inner.lock();
        let dead: Vec<u64> = inner.files.keys().copied().filter(|f| !live.contains(f)).collect();
        for file in dead {
            if let Some(mut entry) = inner.files.remove(&file) {
                entry.extents.release_all(&mut inner.alloc);
            }
        }
    }

    /// Number of blocks currently indexed.
    pub fn indexed_blocks(&self) -> u64 {
        self.inner.lock().files.values().map(|f| f.index.len() as u64).sum()
    }

    /// Slots currently holding data.
    pub fn used_slots(&self) -> u64 {
        let inner = self.inner.lock();
        inner.files.values().map(|f| f.extents.used_slots(&inner.alloc) as u64).sum()
    }

    /// Free extents remaining.
    pub fn free_extents(&self) -> usize {
        self.inner.lock().alloc.free_extents()
    }

    /// Evict one extent to make room. Victim selection is LSM-aware:
    /// deepest level first (coldest data), breaking ties by least recent
    /// access. Returns the victim file and the slots freed, or `None` when
    /// nothing can be evicted.
    fn evict_one_extent(inner: &mut Inner) -> Option<(u64, u64)> {
        // Crash site: dying mid-eviction must never corrupt surviving
        // entries; refusing to evict leaves the cache full but consistent
        // (the triggering fill is then skipped, which is always legal).
        if storage::failpoint::fail_point("mashcache_evict").is_err() {
            return None;
        }
        let victim = inner
            .files
            .iter()
            .filter(|(_, f)| !f.extents.extents.is_empty())
            .max_by_key(|(_, f)| (f.level, u64::MAX - f.last_access))
            .map(|(&file, _)| file);
        let file = victim?;
        let entry = inner.files.get_mut(&file).expect("victim exists");
        let extent = entry.extents.evict_oldest_extent(&mut inner.alloc)?;
        let lo = extent * inner.alloc.slots_per_extent();
        let hi = lo + inner.alloc.slots_per_extent();
        entry.index.remove_slots_if(|slot| (lo..hi).contains(&slot));
        inner.stats.evicted_extents += 1;
        Some((file, (hi - lo) as u64))
    }

    /// Word-at-a-time mixing checksum: the slot is read on every cache hit,
    /// so this must cost well under the lookup itself (a byte-wise loop
    /// over a 4 KiB block would dominate hit latency).
    fn checksum(data: &[u8]) -> u32 {
        let mut h: u64 = 0x9e3779b97f4a7c15 ^ data.len() as u64;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let w = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            h = (h ^ w).wrapping_mul(0xff51afd7ed558ccd);
            h ^= h >> 29;
        }
        let mut tail = [0u8; 8];
        let rest = chunks.remainder();
        tail[..rest.len()].copy_from_slice(rest);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(0xc4ceb9fe1a85ec53);
        (h ^ (h >> 32)) as u32
    }
}

impl PersistentBlockCache for MashCache {
    fn get(&self, file: u64, offset: u64) -> Option<Vec<u8>> {
        let timer = self.obs_start();
        let perf = obs::perf::start_stage();
        let key = block_key(file, offset);
        let (slot_offset, slot_size) = {
            let mut inner = self.inner.lock();
            inner.sketch.touch(key);
            inner.tick += 1;
            let tick = inner.tick;
            let slot = match inner.files.get_mut(&file) {
                Some(entry) => {
                    entry.last_access = tick;
                    entry.index.get(offset)
                }
                None => None,
            };
            match slot {
                Some(slot) => {
                    inner.stats.hits += 1;
                    (inner.alloc.slot_offset(slot), inner.alloc.slot_size() as usize)
                }
                None => {
                    inner.stats.misses += 1;
                    return None;
                }
            }
        };
        // Read outside the lock; the header guards against a concurrent
        // eviction recycling the slot underneath us.
        let mut buf = vec![0u8; slot_size];
        self.storage.read_at(slot_offset, &mut buf).ok()?;
        let h_file = u64::from_le_bytes(buf[0..8].try_into().expect("8"));
        let h_offset = u64::from_le_bytes(buf[8..16].try_into().expect("8"));
        let h_len = u32::from_le_bytes(buf[16..20].try_into().expect("4")) as usize;
        let h_check = u32::from_le_bytes(buf[20..24].try_into().expect("4"));
        if h_file != file || h_offset != offset || SLOT_HEADER + h_len > buf.len() {
            return None;
        }
        let data = &buf[SLOT_HEADER..SLOT_HEADER + h_len];
        if self.config.verify_read_checksums && Self::checksum(data) != h_check {
            return None;
        }
        self.obs_finish(obs::Op::CacheHit, timer);
        obs::perf::finish_stage(perf, |c, ns| {
            c.mashcache_hits += 1;
            c.mashcache_hit_ns += ns;
        });
        Some(data.to_vec())
    }

    fn put(&self, file: u64, offset: u64, data: &[u8], level: usize) {
        self.put_inner(file, offset, data, level, false);
    }

    fn put_prefetched(&self, file: u64, offset: u64, data: &[u8], level: usize) {
        self.put_inner(file, offset, data, level, true);
    }

    fn invalidate_file(&self, file: u64) {
        self.invalidate_files(std::slice::from_ref(&file));
    }

    fn invalidate_files(&self, files: &[u64]) {
        let mut inner = self.inner.lock();
        for &file in files {
            if let Some(mut entry) = inner.files.remove(&file) {
                let released = entry.extents.release_all(&mut inner.alloc);
                inner.stats.invalidations += 1;
                // One bookkeeping step per extent — the whole point of the
                // compaction-aware layout.
                inner.stats.invalidation_steps += released as u64;
            }
        }
    }

    fn metadata_bytes(&self) -> usize {
        let inner = self.inner.lock();
        let per_file: usize = inner
            .files
            .values()
            .map(|f| {
                f.index.metadata_bytes()
                    + f.extents.extents.capacity() * 4
                    + std::mem::size_of::<FileEntry>()
            })
            .sum();
        per_file + inner.files.capacity() * (8 + std::mem::size_of::<usize>())
    }

    fn data_bytes(&self) -> u64 {
        self.used_slots() * self.config.slot_size as u64
    }

    fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }
}

impl MashCache {
    /// Shared insert path. Prefetched blocks are strictly lower priority:
    /// they skip the frequency sketch (one speculative fetch is no evidence
    /// of reuse, and polluting the sketch would skew later admission
    /// decisions) and only occupy extents that are already free — they
    /// never evict resident data.
    fn put_inner(&self, file: u64, offset: u64, data: &[u8], level: usize, prefetched: bool) {
        // Crash site: cache fills are best-effort — a fill that dies here
        // simply skips admission; the authoritative copy is unaffected and
        // the next miss refetches.
        if storage::failpoint::fail_point("mashcache_fill").is_err() {
            return;
        }
        let _span = self.observer.get().and_then(|o| o.child_span("cache_fill"));
        let timer = self.obs_start();
        let perf = obs::perf::start_stage();
        let key = block_key(file, offset);
        let payload_max = self.config.slot_size as usize - SLOT_HEADER;
        let mut evicted: Vec<(u64, u64)> = Vec::new();
        let slot = {
            let mut inner = self.inner.lock();
            if data.len() > payload_max {
                inner.stats.oversize_rejects += 1;
                return;
            }
            if !prefetched && self.config.admission && !inner.sketch.admit(key) {
                // First touch: remember it, admit on the next one.
                inner.sketch.touch(key);
                inner.stats.admission_rejects += 1;
                return;
            }
            inner.tick += 1;
            let tick = inner.tick;
            let entry = inner.files.entry(file).or_insert_with(|| FileEntry {
                extents: FileExtents::default(),
                index: PackedIndex::new(),
                level,
                last_access: tick,
            });
            entry.level = level;
            entry.last_access = tick;
            if entry.index.get(offset).is_some() {
                return; // already cached
            }
            let slot = loop {
                // Borrow dance: try allocation, else evict and retry.
                let attempt = {
                    let Inner { files, alloc, .. } = &mut *inner;
                    files.get_mut(&file).expect("just inserted").extents.next_slot(alloc)
                };
                match attempt {
                    Some(slot) => break slot,
                    None if prefetched => return, // never evict for readahead
                    None => match Self::evict_one_extent(&mut inner) {
                        Some(victim) => evicted.push(victim),
                        None => return, // cache smaller than one extent
                    },
                }
            };
            inner.files.get_mut(&file).expect("exists").index.insert(offset, slot);
            inner.stats.inserts += 1;
            slot
        };
        // Write outside the lock. A racing reader of a previous tenant of
        // this slot is rejected by its header check.
        let mut buf = Vec::with_capacity(SLOT_HEADER + data.len());
        buf.extend_from_slice(&file.to_le_bytes());
        buf.extend_from_slice(&offset.to_le_bytes());
        buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
        buf.extend_from_slice(&Self::checksum(data).to_le_bytes());
        buf.extend_from_slice(data);
        let slot_offset = {
            let inner = self.inner.lock();
            inner.alloc.slot_offset(slot)
        };
        let _ = self.storage.write_at(slot_offset, &buf);
        obs::perf::finish_stage(perf, |c, ns| {
            c.mashcache_fills += 1;
            c.mashcache_fill_ns += ns;
        });
        if let Some(o) = self.observer.get() {
            for (victim, slots) in evicted {
                o.event(obs::EventKind::CacheEvict { file: victim, slots });
            }
            o.finish(obs::Op::CacheFill, timer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemCacheStorage;

    fn cache(capacity: usize, admission: bool) -> MashCache {
        let config = CacheConfig {
            slot_size: 256 + SLOT_HEADER as u32,
            slots_per_extent: 4,
            admission,
            verify_read_checksums: true,
        };
        MashCache::new(Arc::new(MemCacheStorage::new(capacity)), config)
    }

    #[test]
    fn put_get_roundtrip() {
        let c = cache(64 * 1024, false);
        c.put(1, 4096, b"block-data", 2);
        assert_eq!(c.get(1, 4096), Some(b"block-data".to_vec()));
        assert_eq!(c.get(1, 8192), None);
        assert_eq!(c.get(2, 4096), None);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.inserts, 1);
    }

    #[test]
    fn prefetched_put_bypasses_admission_sketch() {
        let c = cache(64 * 1024, true);
        c.put_prefetched(1, 0, b"ra-block", 3);
        assert_eq!(c.get(1, 0), Some(b"ra-block".to_vec()));
        assert_eq!(c.stats().admission_rejects, 0);
    }

    #[test]
    fn prefetched_puts_never_evict_resident_data() {
        // Exactly 16 slots (4 extents) of capacity.
        let c = cache(16 * (256 + SLOT_HEADER), false);
        for i in 0..16u64 {
            c.put(1, i * 4096, b"demand", 2);
        }
        // Cache is full: readahead for another file must be refused rather
        // than displace anything.
        for i in 0..8u64 {
            c.put_prefetched(2, i * 4096, b"spec", 6);
        }
        assert_eq!(c.stats().evicted_extents, 0);
        for i in 0..16u64 {
            assert!(c.get(1, i * 4096).is_some(), "demand block {i} was evicted");
        }
        // A demand put under the same pressure DOES evict (control).
        c.put(3, 0, b"demand2", 6);
        assert!(c.stats().evicted_extents >= 1);
    }

    #[test]
    fn admission_requires_second_touch() {
        let c = cache(64 * 1024, true);
        c.put(1, 0, b"data", 1);
        assert_eq!(c.get(1, 0), None, "first put must be rejected");
        assert_eq!(c.stats().admission_rejects, 1);
        // The miss above touched the sketch; this put is admitted.
        c.put(1, 0, b"data", 1);
        assert_eq!(c.get(1, 0), Some(b"data".to_vec()));
    }

    #[test]
    fn oversize_blocks_rejected() {
        let c = cache(64 * 1024, false);
        c.put(1, 0, &vec![0u8; 10_000], 1);
        assert_eq!(c.get(1, 0), None);
        assert_eq!(c.stats().oversize_rejects, 1);
    }

    #[test]
    fn invalidate_file_is_extent_granular() {
        let c = cache(64 * 1024, false);
        for i in 0..20u64 {
            c.put(7, i * 4096, &[i as u8; 64], 3);
        }
        c.put(8, 0, b"other", 3);
        let before = c.free_extents();
        c.invalidate_file(7);
        for i in 0..20u64 {
            assert_eq!(c.get(7, i * 4096), None);
        }
        assert_eq!(c.get(8, 0), Some(b"other".to_vec()));
        assert!(c.free_extents() > before);
        let s = c.stats();
        assert_eq!(s.invalidations, 1);
        // 20 blocks over 4-slot extents = 5 extents → 5 steps, not 20.
        assert_eq!(s.invalidation_steps, 5);
    }

    #[test]
    fn invalidate_files_batches_whole_input_sets() {
        let c = cache(64 * 1024, false);
        for file in [7u64, 8, 9] {
            for i in 0..8u64 {
                c.put(file, i * 4096, &[file as u8; 64], 3);
            }
        }
        c.put(10, 0, b"survivor", 3);
        c.invalidate_files(&[7, 8, 9, 99]);
        for file in [7u64, 8, 9] {
            for i in 0..8u64 {
                assert_eq!(c.get(file, i * 4096), None, "file {file} block {i} survived");
            }
        }
        assert_eq!(c.get(10, 0), Some(b"survivor".to_vec()));
        let s = c.stats();
        // One invalidation per present file; the absent one is a no-op.
        assert_eq!(s.invalidations, 3);
        // 8 blocks over 4-slot extents = 2 extents per file.
        assert_eq!(s.invalidation_steps, 6);
    }

    #[test]
    fn eviction_prefers_deeper_levels() {
        // Cache with exactly 4 extents of 4 slots.
        let c = cache(4 * 4 * (256 + SLOT_HEADER), false);
        // Hot file at level 1 fills 2 extents.
        for i in 0..8u64 {
            c.put(1, i * 4096, &[1u8; 64], 1);
        }
        // Cold file at level 5 fills 2 extents.
        for i in 0..8u64 {
            c.put(5, i * 4096, &[5u8; 64], 5);
        }
        // New insert for a third file forces eviction: level-5 file loses.
        c.put(9, 0, &[9u8; 64], 2);
        assert!(c.stats().evicted_extents >= 1);
        // The level-1 file is untouched.
        for i in 0..8u64 {
            assert_eq!(c.get(1, i * 4096), Some(vec![1u8; 64]), "hot block {i}");
        }
        // The level-5 file lost its oldest extent (blocks 0..4).
        assert_eq!(c.get(5, 0), None);
    }

    #[test]
    fn overwrite_same_offset_is_noop() {
        let c = cache(64 * 1024, false);
        c.put(1, 0, b"first", 1);
        c.put(1, 0, b"second", 1);
        // First value is kept: blocks of immutable SSTs never change, so
        // re-inserting the same block is a no-op.
        assert_eq!(c.get(1, 0), Some(b"first".to_vec()));
        assert_eq!(c.stats().inserts, 1);
    }

    #[test]
    fn metadata_stays_small_per_block() {
        let c = cache(4 << 20, false);
        let n = 10_000u64;
        for i in 0..n {
            c.put(1, i * 4096, &[0u8; 32], 2);
        }
        let per_block = c.metadata_bytes() as f64 / n as f64;
        assert!(per_block < 40.0, "metadata {per_block} bytes/block");
    }

    #[test]
    fn cache_full_of_single_file_recycles_own_extents() {
        let c = cache(2 * 4 * (256 + SLOT_HEADER), false); // 2 extents
        for i in 0..100u64 {
            c.put(1, i * 4096, &[0u8; 32], 1);
        }
        // Newest blocks are present, oldest gone.
        assert!(c.get(1, 99 * 4096).is_some());
        assert_eq!(c.get(1, 0), None);
        assert!(c.stats().evicted_extents > 0);
    }

    #[test]
    fn concurrent_access() {
        let c = Arc::new(cache(1 << 20, false));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    c.put(t, i * 4096, &[t as u8; 100], 2);
                    if let Some(v) = c.get(t, i * 4096) {
                        assert_eq!(v, vec![t as u8; 100]);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn recover_restores_cached_blocks() {
        let storage = Arc::new(MemCacheStorage::new(64 * 1024));
        let config = CacheConfig {
            slot_size: 256 + SLOT_HEADER as u32,
            slots_per_extent: 4,
            admission: false,
            verify_read_checksums: true,
        };
        {
            let c = MashCache::new(Arc::clone(&storage) as Arc<dyn CacheStorage>, config.clone());
            for i in 0..30u64 {
                c.put(5, i * 4096, &[i as u8; 100], 2);
            }
            c.put(9, 0, b"other-file", 3);
        }
        // "Restart": rebuild metadata from the shared cache space.
        let c = MashCache::recover(storage, config).unwrap();
        assert_eq!(c.indexed_blocks(), 31);
        for i in 0..30u64 {
            assert_eq!(c.get(5, i * 4096), Some(vec![i as u8; 100]), "block {i}");
        }
        assert_eq!(c.get(9, 0), Some(b"other-file".to_vec()));
        assert_eq!(c.get(5, 999_999), None);
        // New inserts still work after recovery.
        c.put(11, 0, b"fresh", 1);
        assert_eq!(c.get(11, 0), Some(b"fresh".to_vec()));
    }

    #[test]
    fn recover_drops_corrupt_slots() {
        let storage = Arc::new(MemCacheStorage::new(32 * 1024));
        let config = CacheConfig {
            slot_size: 256 + SLOT_HEADER as u32,
            slots_per_extent: 4,
            admission: false,
            verify_read_checksums: true,
        };
        {
            let c = MashCache::new(Arc::clone(&storage) as Arc<dyn CacheStorage>, config.clone());
            c.put(1, 0, b"will-be-corrupted", 1);
            c.put(1, 4096, b"will-survive", 1);
        }
        // Corrupt the first slot's payload (torn write at crash).
        storage.write_at(SLOT_HEADER as u64 + 2, b"XX").unwrap();
        let c = MashCache::recover(storage, config).unwrap();
        assert_eq!(c.get(1, 0), None, "corrupt slot must not be resurrected");
        assert_eq!(c.get(1, 4096), Some(b"will-survive".to_vec()));
    }

    #[test]
    fn recover_empty_space_is_all_free() {
        let storage = Arc::new(MemCacheStorage::new(64 * 1024));
        let config = CacheConfig {
            slot_size: 256 + SLOT_HEADER as u32,
            slots_per_extent: 4,
            admission: false,
            verify_read_checksums: true,
        };
        let c = MashCache::recover(Arc::clone(&storage) as Arc<dyn CacheStorage>, config.clone())
            .unwrap();
        assert_eq!(c.indexed_blocks(), 0);
        let fresh = MashCache::new(storage, config);
        assert_eq!(c.free_extents(), fresh.free_extents());
    }

    #[test]
    fn retain_files_drops_dead_tables() {
        let c = cache(64 * 1024, false);
        for file in [1u64, 2, 3] {
            for i in 0..5u64 {
                c.put(file, i * 4096, &[file as u8; 64], 2);
            }
        }
        let live: std::collections::BTreeSet<u64> = [2u64].into_iter().collect();
        c.retain_files(&live);
        assert_eq!(c.get(1, 0), None);
        assert_eq!(c.get(3, 0), None);
        assert_eq!(c.get(2, 0), Some(vec![2u8; 64]));
    }

    #[test]
    fn recover_then_eviction_still_bounded() {
        let config = CacheConfig {
            slot_size: 256 + SLOT_HEADER as u32,
            slots_per_extent: 4,
            admission: false,
            verify_read_checksums: true,
        };
        let storage = Arc::new(MemCacheStorage::new(8 * (256 + SLOT_HEADER))); // 2 extents
        {
            let c = MashCache::new(Arc::clone(&storage) as Arc<dyn CacheStorage>, config.clone());
            for i in 0..8u64 {
                c.put(1, i * 4096, &[1u8; 64], 1);
            }
        }
        let c = MashCache::recover(storage, config).unwrap();
        // Cache is full after recovery; inserting a new file must evict.
        for i in 0..8u64 {
            c.put(2, i * 4096, &[2u8; 64], 5);
        }
        assert!(c.stats().evicted_extents > 0);
        assert!(c.get(2, 7 * 4096).is_some());
    }

    #[test]
    fn hit_ratio_computation() {
        let s = CacheStats { hits: 3, misses: 1, ..Default::default() };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }
}
