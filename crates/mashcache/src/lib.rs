//! The LSM-aware persistent cache from the RocksMash paper (pillar 2).
//!
//! Cloud-resident SSTables are slow to read: every block fetch is a billed,
//! high-latency range GET. RocksMash therefore keeps popular data blocks in
//! a persistent cache on local storage. Two properties distinguish it from
//! a conventional persistent block cache:
//!
//! * **Compaction-aware layout** ([`layout`]): cache space is carved into
//!   fixed-size *extents*, and every extent belongs to exactly one SSTable.
//!   When compaction obsoletes an SSTable, the cache invalidates all of its
//!   blocks by returning its extents to the free list — O(extents), not
//!   O(blocks), and with no fragmentation. Blocks of one table are also
//!   physically clustered, so re-reads have locality.
//!
//! * **Space-efficient metadata** ([`meta`]): each cached block costs one
//!   packed 8-byte index entry (block offset + slot, open-addressed). The
//!   conventional design ([`baseline`]) keys a hash map with full string
//!   block keys and per-entry LRU nodes, costing an order of magnitude more
//!   DRAM per cached block — the overhead the paper's metadata experiment
//!   (E5) measures.
//!
//! Admission ([`admission`]) is frequency-based so one-touch scans do not
//! wash the cache out.

pub mod admission;
pub mod baseline;
pub mod cache;
pub mod layout;
pub mod meta;
pub mod storage;

pub use admission::FrequencySketch;
pub use baseline::BaselineCache;
pub use cache::{CacheConfig, CacheStats, MashCache};
pub use storage::{CacheStorage, FileCacheStorage, MemCacheStorage};
