//! Space-efficient packed block index.
//!
//! One cached block costs exactly one 8-byte table word:
//!
//! ```text
//! bit 63        : occupied flag
//! bits 62..22   : block offset within the SSTable (41 bits, up to 2 TiB)
//! bits 21..0    : global slot number (22 bits, 4M slots)
//! ```
//!
//! The table is open-addressed with linear probing and tombstone-free
//! deletion (backward-shift), sized to a power of two, resized at 70% load.
//! Compare with the conventional design in [`crate::baseline`], which keys
//! a `HashMap` with heap-allocated string keys and chains every entry into
//! an LRU list.

const OCCUPIED: u64 = 1 << 63;
const SLOT_BITS: u32 = 22;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;
const OFFSET_BITS: u32 = 41;
const OFFSET_MASK: u64 = (1 << OFFSET_BITS) - 1;

/// Largest encodable block offset.
pub const MAX_OFFSET: u64 = OFFSET_MASK;
/// Largest encodable slot number.
pub const MAX_SLOT: u32 = SLOT_MASK as u32;

/// Packed open-addressed map: block offset → cache slot.
#[derive(Debug, Clone)]
pub struct PackedIndex {
    table: Vec<u64>,
    len: usize,
}

impl PackedIndex {
    /// Empty index with a small initial table.
    pub fn new() -> Self {
        PackedIndex { table: vec![0; 8], len: 0 }
    }

    /// Number of blocks indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no blocks are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of memory this index costs (the E5 metric).
    pub fn metadata_bytes(&self) -> usize {
        self.table.len() * 8 + std::mem::size_of::<Self>()
    }

    /// Map `offset` to `slot`, replacing any previous mapping.
    pub fn insert(&mut self, offset: u64, slot: u32) {
        assert!(offset <= MAX_OFFSET, "offset exceeds packed capacity");
        assert!(slot <= MAX_SLOT, "slot exceeds packed capacity");
        if (self.len + 1) * 10 >= self.table.len() * 7 {
            self.grow();
        }
        let mask = self.table.len() - 1;
        let mut i = Self::hash(offset) & mask;
        loop {
            let word = self.table[i];
            if word & OCCUPIED == 0 {
                self.table[i] = Self::pack(offset, slot);
                self.len += 1;
                return;
            }
            if Self::offset_of(word) == offset {
                self.table[i] = Self::pack(offset, slot);
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Slot holding the block at `offset`, if indexed.
    pub fn get(&self, offset: u64) -> Option<u32> {
        let mask = self.table.len() - 1;
        let mut i = Self::hash(offset) & mask;
        loop {
            let word = self.table[i];
            if word & OCCUPIED == 0 {
                return None;
            }
            if Self::offset_of(word) == offset {
                return Some(Self::slot_of(word));
            }
            i = (i + 1) & mask;
        }
    }

    /// Remove the mapping for `offset`; returns the slot it occupied.
    pub fn remove(&mut self, offset: u64) -> Option<u32> {
        let mask = self.table.len() - 1;
        let mut i = Self::hash(offset) & mask;
        loop {
            let word = self.table[i];
            if word & OCCUPIED == 0 {
                return None;
            }
            if Self::offset_of(word) == offset {
                let slot = Self::slot_of(word);
                self.backward_shift_delete(i);
                self.len -= 1;
                return Some(slot);
            }
            i = (i + 1) & mask;
        }
    }

    /// Remove every mapping whose slot satisfies `pred`, returning how many
    /// were removed. Used when one extent of a file is evicted.
    pub fn remove_slots_if(&mut self, mut pred: impl FnMut(u32) -> bool) -> usize {
        // Rebuild without the victims: simplest correct approach for
        // open addressing, and extent eviction is rare.
        let old = std::mem::replace(&mut self.table, vec![0; 8]);
        let mut removed = 0;
        self.len = 0;
        for word in old {
            if word & OCCUPIED != 0 {
                let slot = Self::slot_of(word);
                if pred(slot) {
                    removed += 1;
                } else {
                    self.insert(Self::offset_of(word), slot);
                }
            }
        }
        removed
    }

    /// Every (offset, slot) pair in the index.
    pub fn entries(&self) -> Vec<(u64, u32)> {
        self.table
            .iter()
            .filter(|&&w| w & OCCUPIED != 0)
            .map(|&w| (Self::offset_of(w), Self::slot_of(w)))
            .collect()
    }

    fn pack(offset: u64, slot: u32) -> u64 {
        OCCUPIED | (offset << SLOT_BITS) | slot as u64
    }

    fn offset_of(word: u64) -> u64 {
        (word >> SLOT_BITS) & OFFSET_MASK
    }

    fn slot_of(word: u64) -> u32 {
        (word & SLOT_MASK) as u32
    }

    fn hash(offset: u64) -> usize {
        // Fibonacci hashing: offsets are structured (block boundaries).
        (offset.wrapping_mul(0x9e3779b97f4a7c15) >> 32) as usize
    }

    fn grow(&mut self) {
        let new_len = (self.table.len() * 2).max(8);
        let old = std::mem::replace(&mut self.table, vec![0; new_len]);
        self.len = 0;
        for word in old {
            if word & OCCUPIED != 0 {
                self.insert(Self::offset_of(word), Self::slot_of(word));
            }
        }
    }

    /// Backward-shift deletion so lookups never need tombstones: walk the
    /// probe chain after the hole and pull back any entry whose home bucket
    /// allows it.
    fn backward_shift_delete(&mut self, mut hole: usize) {
        let mask = self.table.len() - 1;
        let mut i = hole;
        loop {
            i = (i + 1) & mask;
            let word = self.table[i];
            if word & OCCUPIED == 0 {
                self.table[hole] = 0;
                return;
            }
            let home = Self::hash(Self::offset_of(word)) & mask;
            // The entry at `i` may move into `hole` iff its probe distance
            // from home reaches at least as far back as the hole.
            let dist_from_home = i.wrapping_sub(home) & mask;
            let dist_from_hole = i.wrapping_sub(hole) & mask;
            if dist_from_home >= dist_from_hole {
                self.table[hole] = word;
                hole = i;
            }
        }
    }
}

impl Default for PackedIndex {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut idx = PackedIndex::new();
        for i in 0..1000u64 {
            idx.insert(i * 4096, (i % 1000) as u32);
        }
        assert_eq!(idx.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(idx.get(i * 4096), Some((i % 1000) as u32), "offset {i}");
        }
        assert_eq!(idx.get(12345), None);
    }

    #[test]
    fn insert_overwrites() {
        let mut idx = PackedIndex::new();
        idx.insert(4096, 1);
        idx.insert(4096, 99);
        assert_eq!(idx.get(4096), Some(99));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn remove_then_lookup_chain_still_works() {
        let mut idx = PackedIndex::new();
        // Force collisions with a tiny table by inserting many entries.
        for i in 0..200u64 {
            idx.insert(i, (i % 100) as u32);
        }
        for i in (0..200u64).step_by(2) {
            assert_eq!(idx.remove(i), Some((i % 100) as u32));
        }
        assert_eq!(idx.len(), 100);
        for i in 0..200u64 {
            if i % 2 == 0 {
                assert_eq!(idx.get(i), None, "removed offset {i}");
            } else {
                assert_eq!(idx.get(i), Some((i % 100) as u32), "kept offset {i}");
            }
        }
    }

    #[test]
    fn remove_missing_is_none() {
        let mut idx = PackedIndex::new();
        idx.insert(1, 1);
        assert_eq!(idx.remove(2), None);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn remove_slots_if_filters_by_slot() {
        let mut idx = PackedIndex::new();
        for i in 0..100u64 {
            idx.insert(i * 10, i as u32);
        }
        let removed = idx.remove_slots_if(|slot| slot < 50);
        assert_eq!(removed, 50);
        assert_eq!(idx.len(), 50);
        for i in 0..100u64 {
            if i < 50 {
                assert_eq!(idx.get(i * 10), None);
            } else {
                assert_eq!(idx.get(i * 10), Some(i as u32));
            }
        }
    }

    #[test]
    fn metadata_bytes_is_near_8_per_entry() {
        let mut idx = PackedIndex::new();
        let n = 100_000u64;
        for i in 0..n {
            idx.insert(i * 4096, (i % (1 << 20)) as u32);
        }
        let per_entry = idx.metadata_bytes() as f64 / n as f64;
        // Load factor ≥ ~35% right after a resize → ≤ ~23 bytes/entry worst
        // case, typically ~11-16. The conventional cache costs >100.
        assert!(per_entry < 32.0, "packed index costs {per_entry} bytes/entry");
    }

    #[test]
    fn entries_lists_all() {
        let mut idx = PackedIndex::new();
        idx.insert(10, 1);
        idx.insert(20, 2);
        let mut e = idx.entries();
        e.sort();
        assert_eq!(e, vec![(10, 1), (20, 2)]);
    }

    #[test]
    fn randomized_against_hashmap_model() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut idx = PackedIndex::new();
        let mut model = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let offset = rng.gen_range(0..500u64) * 997;
            match rng.gen_range(0..3) {
                0 | 1 => {
                    let slot = rng.gen_range(0..MAX_SLOT);
                    idx.insert(offset, slot);
                    model.insert(offset, slot);
                }
                _ => {
                    assert_eq!(idx.remove(offset), model.remove(&offset), "remove {offset}");
                }
            }
            assert_eq!(idx.len(), model.len());
        }
        for (&offset, &slot) in &model {
            assert_eq!(idx.get(offset), Some(slot));
        }
    }
}
