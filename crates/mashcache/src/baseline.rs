//! Conventional persistent block cache — the comparator.
//!
//! Models the RocksDB persistent-cache / RocksDB-Cloud file-cache design
//! the paper compares against:
//!
//! * **Block-granular global LRU** over individual slots, no notion of
//!   which SSTable a block belongs to, so blocks of one table scatter
//!   across the cache space.
//! * **Full metadata**: the index is a `HashMap` keyed by heap-allocated
//!   string block keys (`"<file>-<offset>"`, as RocksDB's persistent cache
//!   keys blocks), each entry carrying LRU linkage. This is the metadata
//!   overhead experiment E5 quantifies.
//! * **O(blocks) invalidation**: dropping a compacted SSTable's blocks
//!   requires scanning every key (experiment E8).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::cache::{CacheStats, PersistentBlockCache, SLOT_HEADER};
use crate::storage::CacheStorage;

const NIL: u32 = u32::MAX;

struct Entry {
    key: String,
    file: u64,
    len: u32,
    prev: u32,
    next: u32,
}

struct Inner {
    map: HashMap<String, u32>,   // key -> slot
    entries: Vec<Option<Entry>>, // indexed by slot
    free_slots: Vec<u32>,
    lru_head: u32,
    lru_tail: u32,
    stats: CacheStats,
}

/// Conventional block-LRU persistent cache with string-keyed metadata.
pub struct BaselineCache {
    storage: Arc<dyn CacheStorage>,
    slot_size: u32,
    inner: Mutex<Inner>,
}

impl BaselineCache {
    /// Build over `storage` with the given slot size (header included).
    pub fn new(storage: Arc<dyn CacheStorage>, slot_size: u32) -> Self {
        let num_slots = (storage.capacity() / slot_size as u64) as u32;
        let mut entries = Vec::with_capacity(num_slots as usize);
        entries.resize_with(num_slots as usize, || None);
        BaselineCache {
            storage,
            slot_size,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                entries,
                free_slots: (0..num_slots).rev().collect(),
                lru_head: NIL,
                lru_tail: NIL,
                stats: CacheStats::default(),
            }),
        }
    }

    fn block_key(file: u64, offset: u64) -> String {
        format!("{file:016x}-{offset:016x}")
    }

    fn unlink(inner: &mut Inner, slot: u32) {
        let (prev, next) = {
            let e = inner.entries[slot as usize].as_ref().expect("linked entry");
            (e.prev, e.next)
        };
        if prev != NIL {
            inner.entries[prev as usize].as_mut().expect("prev").next = next;
        } else {
            inner.lru_head = next;
        }
        if next != NIL {
            inner.entries[next as usize].as_mut().expect("next").prev = prev;
        } else {
            inner.lru_tail = prev;
        }
    }

    fn push_front(inner: &mut Inner, slot: u32) {
        let old_head = inner.lru_head;
        {
            let e = inner.entries[slot as usize].as_mut().expect("entry");
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            inner.entries[old_head as usize].as_mut().expect("head").prev = slot;
        }
        inner.lru_head = slot;
        if inner.lru_tail == NIL {
            inner.lru_tail = slot;
        }
    }

    fn remove_slot(inner: &mut Inner, slot: u32) {
        Self::unlink(inner, slot);
        let entry = inner.entries[slot as usize].take().expect("entry");
        inner.map.remove(&entry.key);
        inner.free_slots.push(slot);
    }
}

impl PersistentBlockCache for BaselineCache {
    fn get(&self, file: u64, offset: u64) -> Option<Vec<u8>> {
        let key = Self::block_key(file, offset);
        let (slot, len) = {
            let mut inner = self.inner.lock();
            match inner.map.get(&key).copied() {
                Some(slot) => {
                    Self::unlink(&mut inner, slot);
                    Self::push_front(&mut inner, slot);
                    inner.stats.hits += 1;
                    let len = inner.entries[slot as usize].as_ref().expect("entry").len;
                    (slot, len as usize)
                }
                None => {
                    inner.stats.misses += 1;
                    return None;
                }
            }
        };
        let mut buf = vec![0u8; SLOT_HEADER + len];
        self.storage.read_at(slot as u64 * self.slot_size as u64, &mut buf).ok()?;
        let h_file = u64::from_le_bytes(buf[0..8].try_into().expect("8"));
        let h_offset = u64::from_le_bytes(buf[8..16].try_into().expect("8"));
        if h_file != file || h_offset != offset {
            return None;
        }
        Some(buf[SLOT_HEADER..].to_vec())
    }

    fn put(&self, file: u64, offset: u64, data: &[u8], _level: usize) {
        // Conventional cache: no admission policy, no level awareness.
        let key = Self::block_key(file, offset);
        if data.len() + SLOT_HEADER > self.slot_size as usize {
            self.inner.lock().stats.oversize_rejects += 1;
            return;
        }
        let slot = {
            let mut inner = self.inner.lock();
            if inner.map.contains_key(&key) {
                return;
            }
            let slot = loop {
                if let Some(slot) = inner.free_slots.pop() {
                    break slot;
                }
                let victim = inner.lru_tail;
                if victim == NIL {
                    return;
                }
                Self::remove_slot(&mut inner, victim);
            };
            inner.entries[slot as usize] = Some(Entry {
                key: key.clone(),
                file,
                len: data.len() as u32,
                prev: NIL,
                next: NIL,
            });
            inner.map.insert(key, slot);
            Self::push_front(&mut inner, slot);
            inner.stats.inserts += 1;
            slot
        };
        let mut buf = Vec::with_capacity(SLOT_HEADER + data.len());
        buf.extend_from_slice(&file.to_le_bytes());
        buf.extend_from_slice(&offset.to_le_bytes());
        buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(data);
        let _ = self.storage.write_at(slot as u64 * self.slot_size as u64, &buf);
    }

    fn invalidate_file(&self, file: u64) {
        let mut inner = self.inner.lock();
        // No per-file grouping: scan every entry (this is the cost the
        // compaction-aware layout removes).
        let victims: Vec<u32> = inner
            .entries
            .iter()
            .enumerate()
            .filter_map(|(slot, e)| e.as_ref().filter(|e| e.file == file).map(|_| slot as u32))
            .collect();
        inner.stats.invalidation_steps += inner.entries.len() as u64;
        for slot in victims {
            Self::remove_slot(&mut inner, slot);
        }
        inner.stats.invalidations += 1;
    }

    fn metadata_bytes(&self) -> usize {
        let inner = self.inner.lock();
        let per_entry: usize = inner
            .entries
            .iter()
            .flatten()
            .map(|e| {
                // String key stored twice (map key + entry), hash bucket,
                // and the entry struct with LRU links.
                2 * (e.key.capacity() + std::mem::size_of::<String>())
                    + std::mem::size_of::<Entry>()
                    + std::mem::size_of::<u32>()
            })
            .sum();
        per_entry
            + inner.map.capacity() * std::mem::size_of::<usize>()
            + inner.entries.capacity() * std::mem::size_of::<Option<Entry>>()
    }

    fn data_bytes(&self) -> u64 {
        self.inner.lock().map.len() as u64 * self.slot_size as u64
    }

    fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemCacheStorage;

    fn cache(slots: u32) -> BaselineCache {
        let slot_size = 256 + SLOT_HEADER as u32;
        BaselineCache::new(Arc::new(MemCacheStorage::new((slots * slot_size) as usize)), slot_size)
    }

    #[test]
    fn put_get_roundtrip() {
        let c = cache(16);
        c.put(1, 4096, b"hello", 0);
        assert_eq!(c.get(1, 4096), Some(b"hello".to_vec()));
        assert_eq!(c.get(1, 0), None);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let c = cache(4);
        for i in 0..4u64 {
            c.put(1, i, &[i as u8; 16], 0);
        }
        // Touch 0 so it is most recent; inserting a 5th evicts 1.
        assert!(c.get(1, 0).is_some());
        c.put(1, 100, b"new", 0);
        assert!(c.get(1, 0).is_some());
        assert_eq!(c.get(1, 1), None, "LRU victim must be block 1");
        assert!(c.get(1, 100).is_some());
    }

    #[test]
    fn invalidate_scans_all_entries() {
        let c = cache(32);
        for i in 0..10u64 {
            c.put(7, i, &[0u8; 16], 0);
        }
        for i in 0..5u64 {
            c.put(8, i, &[0u8; 16], 0);
        }
        c.invalidate_file(7);
        for i in 0..10u64 {
            assert_eq!(c.get(7, i), None);
        }
        for i in 0..5u64 {
            assert!(c.get(8, i).is_some());
        }
        // Scan cost is the full slot table, not the victim count.
        assert_eq!(c.stats().invalidation_steps, 32);
    }

    #[test]
    fn metadata_costs_dwarf_packed_index() {
        let c = cache(1024);
        for i in 0..1000u64 {
            c.put(1, i * 4096, &[0u8; 64], 0);
        }
        let per_entry = c.metadata_bytes() as f64 / 1000.0;
        assert!(per_entry > 100.0, "baseline metadata {per_entry} bytes/entry");
    }

    #[test]
    fn full_cache_keeps_working() {
        let c = cache(8);
        for i in 0..100u64 {
            c.put(1, i, &[i as u8; 32], 0);
        }
        // Most recent blocks present.
        assert!(c.get(1, 99).is_some());
        assert_eq!(c.get(1, 0), None);
    }

    #[test]
    fn oversize_rejected() {
        let c = cache(8);
        c.put(1, 0, &[0u8; 1024], 0);
        assert_eq!(c.get(1, 0), None);
        assert_eq!(c.stats().oversize_rejects, 1);
    }
}
