//! Background tier promotion: pull hot cloud-resident SSTs back to local
//! storage, demoting the coldest local SSTs when over the byte budget.
//!
//! This is the feedback loop the static level split lacks: a hotspot that
//! lands on cloud-resident tables pays cloud GET latency on every miss
//! until compaction happens to rewrite them. The promotion pass closes the
//! loop using the signals PR 7 built — decayed per-SST heat scores and the
//! residency ledger in `obs::heat` — and the policy trait in
//! [`crate::placement`]:
//!
//! 1. snapshot the live files (number, bytes, tier, score) from the
//!    residency ledger intersected with the current version (the ledger
//!    can transiently carry retired tables awaiting deferred deletion);
//! 2. ask the router's [`TierPolicy`](crate::TierPolicy) for a
//!    [`PlacementPlan`](crate::PlacementPlan);
//! 3. cap the plan to `max_files_per_pass`/`max_bytes_per_pass` (each pass
//!    stays short; the next pass continues where this one stopped);
//! 4. execute demotions first (freeing budget), then promotions.
//!
//! Move semantics match `migrate.rs`: a demotion uploads then deletes the
//! local copy; a promotion downloads and installs the local copy but
//! leaves the cloud object in place for in-flight readers (a local copy is
//! authoritative; the duplicate is swept on the next open). That makes a
//! crash anywhere mid-pass safe — reopen re-seeds residency from what
//! actually exists and sweeps duplicates, so re-running converges. The
//! `promotion_download` and `promotion_commit` failpoints pin the two
//! interesting crash windows for the torture suite.
//!
//! The pass runs on the engine's background worker pool as the
//! lowest-priority [`ExternalJob`] (never ahead of a flush or compaction),
//! or synchronously via [`crate::TieredDb::run_promotion_pass`].

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use lsm::version::sst_name;
use lsm::{BgView, ExternalJob, Result};
use storage::{Env, ObjectStore, StorageError};

use crate::config::PromotionConfig;
use crate::placement::{FileState, Tier};
use crate::router::{cloud_sst_key, TieredRouter};

/// Outcome of one promotion pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PromotionReport {
    /// Files pulled back from the cloud to local storage.
    pub promoted: usize,
    /// Files pushed from local storage to the cloud.
    pub demoted: usize,
    /// Planned moves whose file vanished mid-pass (compaction deleted it).
    pub skipped: usize,
    /// Total bytes moved across tiers (both directions).
    pub bytes_moved: u64,
}

/// The background promotion job: executes the router policy's plan against
/// the store's tiers. Holds only detached handles (env, router, observer)
/// — no reference back into the engine — so installing it on the worker
/// pool cannot create a reference cycle.
pub struct PromotionPass {
    env: Arc<dyn Env>,
    router: Arc<TieredRouter>,
    observer: Arc<obs::Observer>,
    config: PromotionConfig,
}

impl PromotionPass {
    /// Build a pass over the store's detached handles.
    pub fn new(
        env: Arc<dyn Env>,
        router: Arc<TieredRouter>,
        observer: Arc<obs::Observer>,
        config: PromotionConfig,
    ) -> Self {
        PromotionPass { env, router, observer, config }
    }

    /// Execute one bounded pass; returns what moved.
    pub fn run_pass(&self, view: &BgView<'_>) -> Result<PromotionReport> {
        let heat = self.observer.heat();
        // Plan over live tables only: the residency ledger can transiently
        // carry retired tables whose deferred deletion (and ledger forget)
        // has not run yet — moving those would resurrect dead files.
        let live: std::collections::HashSet<u64> =
            view.current_version().levels.iter().flatten().map(|f| f.number).collect();
        let files: Vec<FileState> = heat
            .residency()
            .files()
            .into_iter()
            .filter(|(file, _, _)| live.contains(file))
            .map(|(file, bytes, tier)| FileState {
                file,
                bytes,
                tier: match tier {
                    obs::ResidencyTier::Local => Tier::Local,
                    obs::ResidencyTier::Cloud => Tier::Cloud,
                },
                score: heat.score_of(file),
            })
            .collect();
        let plan = self.router.policy().plan(&files);
        let mut report = PromotionReport::default();
        if plan.is_empty() {
            return Ok(report);
        }

        // Cap the pass. Demotions run first: they free the budget the
        // promotions are about to consume, so a partially executed pass
        // never overshoots the local budget.
        let bytes_of: std::collections::HashMap<u64, u64> =
            files.iter().map(|f| (f.file, f.bytes)).collect();
        let mut demote = Vec::new();
        let mut promote = Vec::new();
        let mut planned_files = 0usize;
        let mut planned_bytes = 0u64;
        let file_cap = self.config.max_files_per_pass;
        let byte_cap = self.config.max_bytes_per_pass;
        for (list, out) in [(&plan.demote, &mut demote), (&plan.promote, &mut promote)] {
            for &file in list {
                let bytes = bytes_of.get(&file).copied().unwrap_or(0);
                if file_cap != 0 && planned_files >= file_cap {
                    break;
                }
                if byte_cap != 0 && planned_files > 0 && planned_bytes + bytes > byte_cap {
                    break;
                }
                planned_files += 1;
                planned_bytes += bytes;
                out.push(file);
            }
        }
        if demote.is_empty() && promote.is_empty() {
            return Ok(report);
        }

        let _span = self.observer.span("promotion");
        self.observer.event(obs::EventKind::PromotionStart {
            promote: promote.len() as u64,
            demote: demote.len() as u64,
        });
        let started = Instant::now();
        let stats = self.router.stats();
        let cloud = self.router.cloud();

        for file in demote {
            let name = sst_name(file);
            let data = match self.env.read_all(&name) {
                Ok(data) => data,
                // The file vanished (or already moved) since planning:
                // compaction owns it now, nothing to demote.
                Err(StorageError::NotFound(_)) => {
                    report.skipped += 1;
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            cloud.put(&cloud_sst_key(file), &data)?;
            self.env.delete(&name)?;
            self.observer.set_residency(file, data.len() as u64, obs::ResidencyTier::Cloud);
            // Cached open handles still point at the deleted local file;
            // the next read must re-open through the cloud path.
            view.evict_table(file);
            stats.demotions.fetch_add(1, Ordering::Relaxed);
            stats.promotion_bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
            report.demoted += 1;
            report.bytes_moved += data.len() as u64;
        }

        for file in promote {
            let name = sst_name(file);
            // Crash site: before the download — dying here changes nothing
            // on either tier.
            storage::failpoint::fail_point("promotion_download")?;
            let data = match cloud.get(&cloud_sst_key(file)) {
                Ok(data) => data,
                Err(StorageError::NotFound(_)) => {
                    // Distinguish "compacted away mid-pass" (fine, skip)
                    // from "live file's object is missing" (data loss —
                    // surface it, never silently under-promote).
                    if heat.residency().tier_of(file).is_none() {
                        report.skipped += 1;
                        continue;
                    }
                    return Err(StorageError::NotFound(format!(
                        "promotion: cloud object for live table {file} is missing"
                    ))
                    .into());
                }
                Err(e) => return Err(e.into()),
            };
            self.env.write_all(&name, &data)?;
            // Crash site: the local copy is installed but residency and
            // the table cache still say cloud. Reopen re-seeds residency
            // from the local copy and sweeps the cloud duplicate, so
            // recovery sees exactly one live copy either way.
            storage::failpoint::fail_point("promotion_commit")?;
            self.observer.set_residency(file, data.len() as u64, obs::ResidencyTier::Local);
            // Drop the cached cloud-backed handle: the local copy now
            // takes priority on the next open.
            view.evict_table(file);
            stats.promotions.fetch_add(1, Ordering::Relaxed);
            stats.promotion_bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
            report.promoted += 1;
            report.bytes_moved += data.len() as u64;
        }

        self.observer.event(obs::EventKind::PromotionDone {
            promoted: report.promoted as u64,
            demoted: report.demoted as u64,
            skipped: report.skipped as u64,
            bytes: report.bytes_moved,
            dur_ns: started.elapsed().as_nanos() as u64,
        });
        Ok(report)
    }
}

impl ExternalJob for PromotionPass {
    fn name(&self) -> &str {
        "promotion"
    }

    fn run(&self, view: &BgView<'_>) -> Result<()> {
        self.run_pass(view).map(|_| ())
    }
}
